//! Property tests of machine recycling: the `MachineBuilder` contract.
//!
//! The fleet's inner loop recycles one machine's allocations across
//! jobs (`MachineBuilder::recycle` + `build`/`restore`), so capacity
//! reuse must be *observationally invisible*. These tests pin that
//! contract from three directions:
//!
//! 1. At the simulation layer: a machine built from a recycled (dirty,
//!    differently-shaped) spare runs bit-identically to a fresh one —
//!    same timeline, same final snapshot bytes.
//! 2. `MachineBuilder::restore` (snapshot restore + capacity grafting)
//!    is indistinguishable from a plain `snapshot::restore`.
//! 3. At the boot layer: a `BootRequest` with a warmed builder attached
//!    replays the fresh boot event for event, across workload seeds,
//!    suffix configurations, and fault plans.

use proptest::prelude::*;

use booting_booster::bb::{fault_targets, BbConfig, BootRequest};
use booting_booster::sim::{
    snapshot, AccessPattern, DeviceProfile, FaultPlan, Machine, MachineBuilder, MachineConfig, Op,
    ProcessSpec, SimDuration, SimTime,
};
use booting_booster::workloads::{profiles, tv_scenario_with, TizenParams};

// ---------------------------------------------------------------------
// Generated op programs (loop-free, always terminate).
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct GenProcess {
    nice: i8,
    ops: Vec<GenOp>,
}

#[derive(Debug, Clone)]
enum GenOp {
    Compute(u64),
    IoRead(u64),
    Sleep(u64),
    RcuSync,
    RcuRead(u64),
    Yield,
}

fn process_strategy() -> impl Strategy<Value = GenProcess> {
    (
        -5i8..=5,
        prop::collection::vec(
            prop_oneof![
                (1u64..15).prop_map(GenOp::Compute),
                (4096u64..262_144).prop_map(GenOp::IoRead),
                (1u64..20).prop_map(GenOp::Sleep),
                Just(GenOp::RcuSync),
                (1u64..4).prop_map(GenOp::RcuRead),
                Just(GenOp::Yield),
            ],
            1..8,
        ),
    )
        .prop_map(|(nice, ops)| GenProcess { nice, ops })
}

/// Spawns the same processes onto any machine (fresh or recycled).
fn populate(m: &mut Machine, programs: &[GenProcess]) {
    let dev = m.add_device("emmc", DeviceProfile::tv_emmc());
    for (i, p) in programs.iter().enumerate() {
        let ops: Vec<Op> = p
            .ops
            .iter()
            .map(|op| match *op {
                GenOp::Compute(ms) => Op::Compute(SimDuration::from_millis(ms)),
                GenOp::IoRead(bytes) => Op::IoRead {
                    device: dev,
                    bytes,
                    pattern: AccessPattern::Random,
                },
                GenOp::Sleep(ms) => Op::Sleep(SimDuration::from_millis(ms)),
                GenOp::RcuSync => Op::RcuSync,
                GenOp::RcuRead(ms) => Op::RcuReadHold(SimDuration::from_millis(ms)),
                GenOp::Yield => Op::Yield,
            })
            .collect();
        m.spawn(ProcessSpec::new(format!("p{i}"), ops).with_nice(p.nice));
    }
}

fn cfg_for(cores: usize) -> MachineConfig {
    MachineConfig {
        cores,
        ..MachineConfig::default()
    }
}

/// A builder whose spare already holds a dirty machine of a *different*
/// shape, so capacity grafting has something non-trivial to transfer.
fn warmed_builder(junk: &[GenProcess], cores: usize) -> MachineBuilder {
    let mut m = Machine::new(cfg_for(cores));
    populate(&mut m, junk);
    m.run();
    let mut builder = MachineBuilder::new();
    builder.recycle(m);
    builder
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A machine built from recycled buffers runs bit-identically to a
    /// fresh one: same timeline, same final snapshot bytes.
    #[test]
    fn recycled_machine_runs_bit_identically(
        programs in prop::collection::vec(process_strategy(), 1..6),
        junk in prop::collection::vec(process_strategy(), 1..6),
        cores in 1usize..4,
        junk_cores in 1usize..4,
    ) {
        let mut fresh = Machine::new(cfg_for(cores));
        populate(&mut fresh, &programs);
        fresh.run();

        let mut builder = warmed_builder(&junk, junk_cores);
        let mut pooled = builder.build(cfg_for(cores));
        populate(&mut pooled, &programs);
        pooled.run();

        prop_assert_eq!(fresh.now(), pooled.now());
        prop_assert_eq!(fresh.rcu_stats(), pooled.rcu_stats());
        let a = fresh.trace().events();
        let b = pooled.trace().events();
        prop_assert_eq!(a.len(), b.len(), "event counts diverge");
        for (x, y) in a.iter().zip(b) {
            prop_assert_eq!(x, y, "trace event diverges");
        }
        prop_assert_eq!(
            snapshot::save(&fresh).expect("snapshot fresh"),
            snapshot::save(&pooled).expect("snapshot pooled"),
            "final machine states diverge"
        );
    }

    /// `MachineBuilder::restore` (restore + capacity grafting) is
    /// indistinguishable from a plain `snapshot::restore`: same bytes
    /// on re-save, same continuation timeline.
    #[test]
    fn builder_restore_matches_plain_restore(
        programs in prop::collection::vec(process_strategy(), 1..6),
        junk in prop::collection::vec(process_strategy(), 1..6),
        cores in 1usize..4,
        cut_percent in 0u64..100,
    ) {
        let mut straight = Machine::new(cfg_for(cores));
        populate(&mut straight, &programs);
        straight.run();

        let cut_us = straight.now().since(SimTime::ZERO).as_micros() * cut_percent / 100;
        let mut before = Machine::new(cfg_for(cores));
        populate(&mut before, &programs);
        before.run_until(SimTime::ZERO + SimDuration::from_micros(cut_us));
        let bytes = snapshot::save(&before).expect("snapshot");

        let mut plain = snapshot::restore(&bytes).expect("plain restore");
        let mut builder = warmed_builder(&junk, cores);
        let mut grafted = builder.restore(&bytes).expect("builder restore");

        // Re-saving either restore reproduces the exact input bytes.
        prop_assert_eq!(&snapshot::save(&plain).expect("re-save"), &bytes);
        prop_assert_eq!(&snapshot::save(&grafted).expect("re-save"), &bytes);

        plain.run();
        grafted.run();
        prop_assert_eq!(plain.now(), grafted.now());
        let a = plain.trace().events();
        let b = grafted.trace().events();
        prop_assert_eq!(a.len(), b.len(), "event counts diverge");
        for (x, y) in a.iter().zip(b) {
            prop_assert_eq!(x, y, "trace event diverges");
        }
        prop_assert_eq!(
            snapshot::save(&plain).expect("snapshot plain"),
            snapshot::save(&grafted).expect("snapshot grafted"),
            "continued states diverge"
        );
    }
}

// ---------------------------------------------------------------------
// Boot layer: seeds × configs × fault plans.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A boot through a warmed builder replays the fresh boot event for
    /// event, for arbitrary workload seeds, feature subsets, and
    /// (possibly empty) fault plans.
    #[test]
    fn recycled_boot_matches_fresh_boot(
        seed in 0u64..1_000_000,
        services in 24usize..36,
        bits in any::<u8>(),
        fault_seed in 0u64..1_000,
    ) {
        let s = tv_scenario_with(
            profiles::ue48h6200(),
            TizenParams { services, seed, ..TizenParams::open_source() },
        );
        let cfg = if bits & 0x80 != 0 {
            BbConfig::conventional()
        } else {
            BbConfig {
                deferred_executor: bits & 0x01 != 0,
                preparser: bits & 0x02 != 0,
                bb_group: bits & 0x04 != 0,
                ..BbConfig::full()
            }
        };
        // Every third case is fault-free; the rest inject a seeded plan.
        let faults = if fault_seed % 3 == 0 {
            FaultPlan::none()
        } else {
            FaultPlan::seeded(fault_seed, &fault_targets(&s))
        };

        // Warm the builder with a boot of a *different* config so the
        // recycled buffers carry another timeline's shape.
        let mut builder = MachineBuilder::new();
        builder.recycle(
            BootRequest::new(&s)
                .config(BbConfig::full())
                .run()
                .expect("warm boot")
                .machine,
        );

        let fresh = BootRequest::new(&s)
            .config(cfg)
            .faults(&faults)
            .run()
            .expect("fresh boot");
        let pooled = BootRequest::new(&s)
            .config(cfg)
            .faults(&faults)
            .machine_builder(&mut builder)
            .run()
            .expect("pooled boot");

        prop_assert_eq!(
            fresh.report.boot.completion_time,
            pooled.report.boot.completion_time
        );
        prop_assert_eq!(fresh.report.quiesce_time, pooled.report.quiesce_time);
        prop_assert_eq!(&fresh.report.rcu, &pooled.report.rcu);
        let a = fresh.machine.trace().events();
        let b = pooled.machine.trace().events();
        prop_assert_eq!(a.len(), b.len(), "event counts diverge");
        for (x, y) in a.iter().zip(b) {
            prop_assert_eq!(x, y, "trace event diverges");
        }
    }
}
