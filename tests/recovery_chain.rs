//! The artifact integrity & recovery chain, end to end.
//!
//! 1. Golden corrupt-blob fixtures: `tests/golden/corrupt_blob_s*.bin`
//!    pin what a seeded [`CorruptionPlan`] does to the scenario's
//!    encoded pre-parse blob, byte for byte — the corruption axis of
//!    the chaos sweep replays these exact bytes. Re-bless deliberately
//!    with `BB_BLESS_GOLDEN=1 cargo test --test recovery_chain`.
//! 2. The acceptance property, for *arbitrary* corruption seeds and
//!    transient-failure counts: a BB boot handed a damaged artifact
//!    always completes — and when the chain rejects the artifact, the
//!    simulated timeline is identical to a boot that never had the
//!    cache (the read and its retries are host-side ledger items, not
//!    simulated events).

use proptest::prelude::*;

use booting_booster::bb::{
    run_with_fallback_recovering, ArtifactRead, BbConfig, BootOutcome, FallbackPolicy, PreParser,
    Scenario,
};
use booting_booster::init::{decode_units, encode_units};
use booting_booster::sim::{CorruptionPlan, FaultPlan};
use booting_booster::workloads::{profiles, tv_scenario_with, TizenParams};

/// The fixture scenario: small, deterministic, and stable (its timing
/// is already pinned by the calibration tests).
fn fixture_scenario() -> Scenario {
    tv_scenario_with(
        profiles::ue48h6200(),
        TizenParams {
            services: 24,
            seed: 7,
            ..TizenParams::open_source()
        },
    )
}

// ---------------------------------------------------------------------
// 1. Golden corrupt-blob fixtures.
// ---------------------------------------------------------------------

const FIXTURE_SEEDS: [u64; 4] = [1, 2, 3, 4];

fn fixture_path(seed: u64) -> String {
    format!(
        "{}/tests/golden/corrupt_blob_s{seed}.bin",
        env!("CARGO_MANIFEST_DIR")
    )
}

/// Each committed fixture is exactly what today's encoder + the seeded
/// corruption plan produce. A diff means either the blob format or the
/// corruption derivation changed — both are sweep-visible and must be
/// re-blessed deliberately.
#[test]
fn golden_corrupt_blobs_are_stable() {
    let scenario = fixture_scenario();
    let pristine = encode_units(&scenario.units);
    for seed in FIXTURE_SEEDS {
        let mut damaged = pristine.clone();
        CorruptionPlan::seeded(seed).apply(&mut damaged);
        let path = fixture_path(seed);
        if std::env::var_os("BB_BLESS_GOLDEN").is_some() {
            std::fs::write(&path, &damaged).expect("bless corrupt-blob fixture");
            eprintln!("blessed {path} ({} bytes)", damaged.len());
            continue;
        }
        let golden = std::fs::read(&path).unwrap_or_else(|_| {
            panic!("{path} missing — run BB_BLESS_GOLDEN=1 cargo test --test recovery_chain")
        });
        assert_eq!(
            golden, damaged,
            "corrupt-blob fixture for seed {seed} drifted; re-bless deliberately"
        );
    }
}

/// The committed fixtures exercise the detection contract: damage that
/// changed bytes is rejected by the decoder, untouched bytes decode to
/// the original units.
#[test]
fn golden_corrupt_blobs_are_detected() {
    if std::env::var_os("BB_BLESS_GOLDEN").is_some() {
        return;
    }
    let scenario = fixture_scenario();
    let pristine = encode_units(&scenario.units);
    let mut rejected = 0;
    for seed in FIXTURE_SEEDS {
        let golden = std::fs::read(fixture_path(seed)).expect("fixture committed");
        if golden == pristine {
            assert_eq!(
                decode_units(&golden).expect("pristine blob decodes"),
                scenario.units
            );
        } else {
            assert!(
                decode_units(&golden).is_err(),
                "damaged fixture for seed {seed} decoded silently"
            );
            rejected += 1;
        }
    }
    assert!(
        rejected > 0,
        "every fixture was a no-op — the corruption seeds are dead"
    );
}

// ---------------------------------------------------------------------
// 2. The acceptance property, for arbitrary seeds.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seeded corruption of the pre-parse blob, with any transient
    /// read flakiness on top: the boot completes (never panics, never
    /// errs), and the simulated timeline is either the cached one (the
    /// artifact survived) or exactly the re-parse one (it was
    /// rejected). Recovery cost is billed on the host-side ledger, not
    /// the timeline.
    #[test]
    fn corrupted_artifacts_always_boot_and_land_on_a_known_timeline(
        corr_seed in any::<u64>(),
        flaky in 0u32..6,
    ) {
        let scenario = fixture_scenario();
        let pre = PreParser::build(&scenario.units);
        let faults = FaultPlan::none();
        let policy = FallbackPolicy::default();

        let artifact = ArtifactRead::corrupted(
            encode_units(&scenario.units),
            &CorruptionPlan::seeded(corr_seed),
        )
        .flaky(flaky);

        let (outcome, events) = run_with_fallback_recovering(
            &scenario,
            &BbConfig::full(),
            Some(&pre),
            Some(&artifact),
            &faults,
            &policy,
        )
        .expect("a damaged artifact must never fail the boot");
        prop_assert!(matches!(outcome, BootOutcome::Completed(_)));

        let rejected = events.iter().any(|e| e.rejected());
        let baseline_cfg = if rejected {
            BbConfig { preparser: false, ..BbConfig::full() }
        } else {
            BbConfig::full()
        };
        let (baseline, baseline_events) = run_with_fallback_recovering(
            &scenario,
            &baseline_cfg,
            Some(&pre),
            None,
            &faults,
            &policy,
        )
        .expect("baseline boot");
        prop_assert!(baseline_events.is_empty(), "no artifact, no recoveries");
        prop_assert_eq!(
            outcome.user_boot_time(),
            baseline.user_boot_time(),
            "recovered boot diverged from the {} timeline",
            if rejected { "re-parse" } else { "cached" }
        );

        // Every rejection is priced, and retries bill backoff.
        for e in &events {
            if e.rejected() {
                prop_assert!(e.total_cost().as_nanos() > 0);
            }
        }
    }
}
