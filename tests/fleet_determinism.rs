//! Fleet acceptance tests: the aggregated sweep output must be
//! byte-identical for any worker count, and one poisoned job must never
//! take the sweep down with it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use booting_booster::bb::BbConfig;
use booting_booster::fleet::{
    parse_json, run_sweep, CellSpec, FleetCache, PoolConfig, ScenarioSource, SweepSpec,
};
use booting_booster::init::UnitName;
use booting_booster::workloads::{profiles, tv_scenario_with, TizenParams};

fn small_params(seed: u64) -> TizenParams {
    TizenParams {
        services: 24,
        seed,
        ..TizenParams::open_source()
    }
}

fn two_cell_spec() -> SweepSpec {
    SweepSpec::new()
        .cell(
            CellSpec::tizen("tv-small", profiles::ue48h6200(), small_params(0))
                .seeds(0..6)
                .conventional_vs_bb(),
        )
        .cell(
            CellSpec::tizen("phone-small", profiles::galaxy_s6(), small_params(0))
                .seeds([40, 41, 42])
                .config("bb", BbConfig::full())
                .config("preparser-only", {
                    let mut cfg = BbConfig::conventional();
                    cfg.preparser = true;
                    cfg
                }),
        )
}

#[test]
fn aggregated_json_is_byte_identical_across_worker_counts() {
    let spec = two_cell_spec();
    let serial = run_sweep(&spec, &PoolConfig::with_workers(1), &FleetCache::fresh());
    let json_serial = serial.report.to_json();
    assert_eq!(serial.report.total_boots, spec.total_boots());
    assert!(serial.report.failures.is_empty());

    for workers in [2, 3, 5] {
        let parallel = run_sweep(
            &spec,
            &PoolConfig::with_workers(workers),
            &FleetCache::fresh(),
        );
        assert_eq!(parallel.report, serial.report, "{workers} workers");
        assert_eq!(
            parallel.report.to_json(),
            json_serial,
            "JSON must be byte-identical with {workers} workers"
        );
    }
    // And the artifact is well-formed.
    parse_json(&json_serial).expect("sweep JSON parses");
}

#[test]
fn span_metrics_json_is_byte_identical_across_worker_counts() {
    let spec = two_cell_spec().with_metrics(true);
    let serial = run_sweep(&spec, &PoolConfig::with_workers(1), &FleetCache::fresh());
    let metrics = serial
        .report
        .metrics
        .as_ref()
        .expect("metrics collection was requested");
    let json_serial = metrics.to_json();
    parse_json(&json_serial).expect("metrics JSON parses");
    // Spans cover every layer: kernel phases, init, and units.
    let spans = &metrics.cells[0].configs[0].spans;
    for prefix in ["kernel/", "init/", "unit/"] {
        assert!(
            spans.iter().any(|s| s.name.starts_with(prefix)),
            "no {prefix} span in {:?}",
            spans.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
    }

    for workers in [2, 4] {
        let parallel = run_sweep(
            &spec,
            &PoolConfig::with_workers(workers),
            &FleetCache::fresh(),
        );
        assert_eq!(
            parallel.report.metrics.as_ref().unwrap().to_json(),
            json_serial,
            "metrics JSON must be byte-identical with {workers} workers"
        );
    }
}

#[test]
fn panicking_job_is_reported_and_sweep_completes() {
    // A scenario whose completion unit does not exist panics inside the
    // booster (identify_bb_group) when bb-group is enabled — the kind of
    // poisoned cell a big sweep must survive.
    let mut poisoned = tv_scenario_with(profiles::ue48h6200(), small_params(0));
    poisoned.completion = vec![UnitName::new("no-such-unit.service")];

    let spec = SweepSpec::new()
        .cell(
            CellSpec::tizen("healthy", profiles::ue48h6200(), small_params(0))
                .seeds([1, 2])
                .conventional_vs_bb(),
        )
        .cell(CellSpec::fixed("poisoned", poisoned).config("bb", BbConfig::full()));

    let outcome = run_sweep(&spec, &PoolConfig::with_workers(2), &FleetCache::fresh());
    // The healthy cell aggregated fully...
    assert_eq!(outcome.report.cells[0].completed, 2);
    assert_eq!(outcome.report.total_boots, 4);
    // ...and the poisoned job is a reported failure, not a crash.
    assert_eq!(outcome.report.failures.len(), 1);
    let failure = &outcome.report.failures[0];
    assert_eq!(failure.cell, "poisoned");
    assert!(
        failure.reason.starts_with("panic:") && failure.reason.contains("no-such-unit"),
        "unexpected reason: {}",
        failure.reason
    );
}

#[test]
fn deadline_exceeded_jobs_are_isolated_failures() {
    let spec = SweepSpec::new()
        .cell(
            CellSpec::tizen("doomed", profiles::ue48h6200(), small_params(0))
                .seeds([7, 8])
                .conventional_vs_bb(),
        )
        .deadline(Duration::ZERO);
    let outcome = run_sweep(&spec, &PoolConfig::with_workers(2), &FleetCache::fresh());
    assert_eq!(outcome.report.total_boots, 0);
    assert_eq!(outcome.report.failures.len(), 2);
    assert!(outcome
        .report
        .failures
        .iter()
        .all(|f| f.reason == "deadline exceeded"));
    // Failure order is (cell, seed) — not scheduling order.
    assert_eq!(outcome.report.failures[0].seed, 7);
    assert_eq!(outcome.report.failures[1].seed, 8);
}

#[test]
fn fixed_cells_reuse_one_template() {
    let scenario = tv_scenario_with(profiles::ue48h6200(), small_params(3));
    let spec = SweepSpec::new().cell(
        CellSpec::fixed("pinned", scenario)
            .seeds(0..4)
            .config("bb", BbConfig::full()),
    );
    match &spec.cells[0].source {
        ScenarioSource::Fixed(s) => assert!(Arc::strong_count(s) >= 1),
        other => panic!("expected fixed source, got {other:?}"),
    }
    let outcome = run_sweep(&spec, &PoolConfig::with_workers(2), &FleetCache::fresh());
    // Identical template => identical boot time in every slot.
    let stats = &outcome.report.cells[0].configs[0];
    assert_eq!(stats.count, 4);
    assert_eq!(stats.min_ns, stats.max_ns);
    assert_eq!(stats.stddev_ns, 0.0);
}

/// The parallel-speedup acceptance target: a ≥200-boot sweep should
/// scale with the worker count. Gated at *runtime* on the hardware the
/// test actually gets: on a single-core host (this repo's CI container)
/// a parallel speedup is physically impossible and the measurement
/// part is skipped — the byte-identity half still runs everywhere. The
/// threshold is conservative to tolerate shared CI hosts: ≥2.5× on 4+
/// cores, ≥1.2× on 2–3 cores.
#[test]
fn multicore_sweep_speedup_scales_with_cores() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // 50 seeds x 2 cells x 2 configs = 200 boots.
    let spec = SweepSpec::new()
        .cell(
            CellSpec::tizen("tv", profiles::ue48h6200(), small_params(0))
                .seeds(0..50)
                .conventional_vs_bb(),
        )
        .cell(
            CellSpec::tizen("phone", profiles::galaxy_s6(), small_params(0))
                .seeds(0..50)
                .conventional_vs_bb(),
        );
    assert_eq!(spec.total_boots(), 200);

    let start = Instant::now();
    let serial = run_sweep(&spec, &PoolConfig::with_workers(1), &FleetCache::fresh());
    let serial_wall = start.elapsed();

    let start = Instant::now();
    let parallel = run_sweep(
        &spec,
        &PoolConfig::with_workers(cores),
        &FleetCache::fresh(),
    );
    let parallel_wall = start.elapsed();

    // The determinism half holds on any hardware.
    assert_eq!(serial.report.to_json(), parallel.report.to_json());

    if cores < 2 {
        eprintln!("single-core host ({cores} core): speedup measurement skipped");
        return;
    }
    let expected = if cores >= 4 { 2.5 } else { 1.2 };
    let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64();
    assert!(
        speedup >= expected,
        "expected >={expected}x speedup on {cores} cores, measured {speedup:.2}x \
         (serial {serial_wall:?}, parallel {parallel_wall:?})"
    );
}
