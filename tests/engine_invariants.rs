//! Property-based tests of the init engines and the booster over
//! randomly generated acyclic service workloads.

use proptest::prelude::*;
use std::collections::HashMap;

use booting_booster::init::{
    run_boot, BootPlan, EngineConfig, EngineMode, LoadModel, ManagerCosts, PlanOverrides,
    ServiceBody, ServiceType, Transaction, Unit, UnitGraph, UnitName, WorkloadMap,
};
use booting_booster::sim::{
    AccessPattern, DeviceProfile, Machine, MachineConfig, OpsBuilder, SimDuration,
};

/// A randomly generated acyclic workload: service i may depend only on
/// services with smaller indices, so the graph is a DAG by construction.
#[derive(Debug, Clone)]
struct RandomWorkload {
    units: Vec<Unit>,
    workloads: WorkloadMap,
    completion: UnitName,
}

fn workload_strategy() -> impl Strategy<Value = RandomWorkload> {
    (2usize..12, any::<u64>()).prop_flat_map(|(n, seed)| {
        let deps = prop::collection::vec(prop::collection::vec(0usize..n.max(1), 0..3), n);
        let costs = prop::collection::vec(1u64..40, n);
        (Just(n), Just(seed), deps, costs).prop_map(|(n, _seed, deps, costs)| {
            let mut units = vec![Unit::new(UnitName::new("boot.target"))];
            let mut workloads = WorkloadMap::new();
            for i in 0..n {
                let name = format!("s{i:02}.service");
                let mut u = Unit::new(UnitName::new(&name))
                    .with_type(ServiceType::Forking)
                    .with_exec(format!("wl:{name}"));
                for &d in deps[i].iter().filter(|&&d| d < i) {
                    u = u.needs(&format!("s{d:02}.service"));
                }
                units.push(u);
                workloads.insert(
                    format!("wl:{name}"),
                    ServiceBody {
                        pre_ready: OpsBuilder::new().compute_ms(costs[i]).build(),
                        post_ready: Vec::new(),
                    },
                );
                units[0] = units[0].clone().requires(&name);
            }
            let completion = UnitName::new(format!("s{:02}.service", n - 1));
            RandomWorkload {
                units,
                workloads,
                completion,
            }
        })
    })
}

fn boot(w: &RandomWorkload, mode: EngineMode, cores: usize) -> booting_booster::init::BootRecord {
    let graph = UnitGraph::build(w.units.clone()).expect("unique names");
    let transaction = Transaction::build(&graph, "boot.target").expect("acyclic");
    let mut machine = Machine::new(MachineConfig {
        cores,
        ..MachineConfig::default()
    });
    let device = machine.add_device("emmc", DeviceProfile::tv_emmc());
    let execution_order = transaction.execution_order(&graph);
    let completion = vec![w.completion.clone()];
    let overrides = PlanOverrides::default();
    let plan = BootPlan {
        graph: &graph,
        transaction: &transaction,
        completion: &completion,
        overrides: &overrides,
        init_tasks: &[],
        service_phase_tasks: &[],
        execution_order: &execution_order,
    };
    let cfg = EngineConfig {
        mode,
        load: LoadModel {
            io_bytes: 4096,
            pattern: AccessPattern::Random,
            cpu: SimDuration::from_millis(1),
        },
        costs: ManagerCosts::default(),
        device,
    };
    run_boot(&mut machine, &plan, &w.workloads, &cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The in-order engine never starts a service before every ordering
    /// predecessor is ready, on any DAG, for any core count.
    #[test]
    fn in_order_respects_dependencies(w in workload_strategy(), cores in 1usize..6) {
        let record = boot(&w, EngineMode::InOrder, cores);
        prop_assert!(record.completion_time.is_some());
        prop_assert!(record.outcome.failed.is_empty());
        let graph = UnitGraph::build(w.units.clone()).expect("valid");
        let ready: HashMap<&str, _> = record
            .services
            .iter()
            .map(|(n, r)| (n.as_str(), r))
            .collect();
        for unit in graph.units() {
            let rec = ready[unit.name.as_str()];
            let (Some(started), Some(_)) = (rec.started, rec.ready) else { continue };
            for dep in &unit.after {
                if let Some(dep_rec) = record.services.get(dep) {
                    if let Some(dep_ready) = dep_rec.ready {
                        prop_assert!(
                            started >= dep_ready,
                            "{} started {} before {} ready {}",
                            unit.name, started, dep, dep_ready
                        );
                    }
                }
            }
        }
    }

    /// The serial engine is never faster than the in-order engine on
    /// multicore machines (it forgoes all parallelism).
    #[test]
    fn serial_never_beats_in_order(w in workload_strategy()) {
        let serial = boot(&w, EngineMode::Serial, 4);
        let inorder = boot(&w, EngineMode::InOrder, 4);
        prop_assert!(serial.completion_time.expect("completes")
            >= inorder.completion_time.expect("completes"));
    }

    /// More cores never slow the in-order boot (the simulator's
    /// scheduler is work-conserving).
    #[test]
    fn more_cores_never_hurt(w in workload_strategy()) {
        let two = boot(&w, EngineMode::InOrder, 2);
        let four = boot(&w, EngineMode::InOrder, 4);
        prop_assert!(four.boot_time() <= two.boot_time());
    }

    /// Out-of-order with path-check always completes correctly (no
    /// failures), merely slower; out-of-order with asserts fails
    /// whenever a true dependency exists.
    #[test]
    fn path_check_is_correct_but_polling(w in workload_strategy()) {
        let polled = boot(
            &w,
            EngineMode::OutOfOrder { path_check: true, assert_deps: false },
            4,
        );
        prop_assert!(polled.completion_time.is_some());
        prop_assert!(polled.outcome.failed.is_empty());
        // Correctness: a service becomes ready only after each of its
        // ordering predecessors (the polling loop enforces this).
        let graph = UnitGraph::build(w.units.clone()).expect("valid");
        for unit in graph.units() {
            let Some(rec) = polled.services.get(&unit.name) else { continue };
            let Some(ready) = rec.ready else { continue };
            for dep in &unit.after {
                if let Some(dep_ready) = polled.services.get(dep).and_then(|r| r.ready) {
                    prop_assert!(ready >= dep_ready, "{} ready before its dep {}", unit.name, dep);
                }
            }
        }
    }

    /// Runs are deterministic: same workload, same record.
    #[test]
    fn engine_is_deterministic(w in workload_strategy()) {
        let a = boot(&w, EngineMode::InOrder, 4);
        let b = boot(&w, EngineMode::InOrder, 4);
        prop_assert_eq!(a.completion_time, b.completion_time);
        let ra: Vec<_> = a.services.values().map(|r| r.ready).collect();
        let rb: Vec<_> = b.services.values().map(|r| r.ready).collect();
        prop_assert_eq!(ra, rb);
    }
}
