//! Property tests of the shared-artifact layer: plan caching and grid
//! dedup must be observationally invisible.
//!
//! 1. At the boot layer: a boot served a cached [`bb::PlanCache`] plan
//!    replays the fresh boot event for event — same timeline, same
//!    final snapshot bytes — across workload seeds, feature subsets,
//!    and fault plans. Planning depends only on (scenario, config), so
//!    a hit *must* be bit-identical to re-planning.
//! 2. At the sweep layer: a deduplicated sweep ([`SweepSpec::dedup`],
//!    the default) emits byte-identical JSON to the undeduplicated
//!    sweep, for any combination of worker counts — grid points served
//!    from the boot-outcome cache replay the exact samples simulation
//!    would produce.

use std::sync::Arc;

use proptest::prelude::*;

use booting_booster::bb::{fault_targets, BbConfig, BootRequest, PlanCache};
use booting_booster::fleet::{run_sweep, CellSpec, FleetCache, PoolConfig, SweepSpec};
use booting_booster::sim::{snapshot, FaultPlan};
use booting_booster::workloads::{profiles, tv_scenario_with, TizenParams};

fn config_from_bits(bits: u8) -> BbConfig {
    if bits & 0x80 != 0 {
        BbConfig::conventional()
    } else {
        BbConfig {
            deferred_executor: bits & 0x01 != 0,
            preparser: bits & 0x02 != 0,
            bb_group: bits & 0x04 != 0,
            ..BbConfig::full()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A cache-hit boot replays the fresh boot event for event, for
    /// arbitrary workload seeds, feature subsets, and (possibly empty)
    /// fault plans.
    #[test]
    fn cached_plan_boot_matches_fresh_boot(
        seed in 0u64..1_000_000,
        services in 24usize..36,
        bits in any::<u8>(),
        fault_seed in 0u64..1_000,
    ) {
        let s = Arc::new(tv_scenario_with(
            profiles::ue48h6200(),
            TizenParams { services, seed, ..TizenParams::open_source() },
        ));
        let cfg = config_from_bits(bits);
        // Every third case is fault-free; the rest inject a seeded plan.
        let faults = if fault_seed % 3 == 0 {
            FaultPlan::none()
        } else {
            FaultPlan::seeded(fault_seed, &fault_targets(&s))
        };

        let fresh = BootRequest::new(&s)
            .config(cfg)
            .faults(&faults)
            .run()
            .expect("fresh boot");

        // First cached boot compiles and inserts; the second is served
        // the Arc'd plan with zero clones.
        let cache = PlanCache::new();
        BootRequest::new(&s)
            .config(cfg)
            .faults(&faults)
            .plan_cache(&cache, &s)
            .run()
            .expect("warming boot");
        prop_assert_eq!(cache.stats().plans_compiled, 1);
        let cached = BootRequest::new(&s)
            .config(cfg)
            .faults(&faults)
            .plan_cache(&cache, &s)
            .run()
            .expect("cached boot");
        prop_assert_eq!(cache.stats().plans_compiled, 1, "hit must not re-plan");
        prop_assert!(cache.stats().hits >= 1);

        prop_assert_eq!(
            fresh.report.boot.completion_time,
            cached.report.boot.completion_time
        );
        prop_assert_eq!(fresh.report.quiesce_time, cached.report.quiesce_time);
        prop_assert_eq!(&fresh.report.rcu, &cached.report.rcu);
        let a = fresh.machine.trace().events();
        let b = cached.machine.trace().events();
        prop_assert_eq!(a.len(), b.len(), "event counts diverge");
        for (x, y) in a.iter().zip(b) {
            prop_assert_eq!(x, y, "trace event diverges");
        }
        prop_assert_eq!(
            snapshot::save(&fresh.machine).expect("snapshot fresh"),
            snapshot::save(&cached.machine).expect("snapshot cached"),
            "final machine states diverge"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Deduplicated and plain sweeps emit byte-identical JSON for any
    /// worker-count combination. The grid deliberately contains
    /// duplicate cells (same source, same seeds) and a fixed cell with
    /// repeated seed slots, so dedup really fires.
    #[test]
    fn deduped_sweep_json_is_byte_identical_to_plain(
        seed_base in 0u64..1_000,
        services in 24usize..30,
        dedup_workers in 1usize..4,
        plain_workers in 1usize..4,
    ) {
        let params = TizenParams { services, ..TizenParams::open_source() };
        let fixed = tv_scenario_with(profiles::ue48h6200(), params);
        let spec = SweepSpec::new()
            .cell(
                CellSpec::tizen("a", profiles::ue48h6200(), params)
                    .seeds(seed_base..seed_base + 2)
                    .conventional_vs_bb(),
            )
            .cell(
                // Duplicates cell "a" under another label.
                CellSpec::tizen("b", profiles::ue48h6200(), params)
                    .seeds(seed_base..seed_base + 2)
                    .conventional_vs_bb(),
            )
            .cell(
                // Seed slots of a fixed cell all boot the same template.
                CellSpec::fixed("pinned", fixed)
                    .seeds([0, 1, 2])
                    .conventional_vs_bb(),
            );

        let deduped = run_sweep(&spec, &PoolConfig::with_workers(dedup_workers), &FleetCache::fresh());
        let plain = run_sweep(
            &spec.clone().with_dedup(false),
            &PoolConfig::with_workers(plain_workers),
            &FleetCache::fresh(),
        );
        prop_assert_eq!(plain.stats.cells_deduped, 0);
        if dedup_workers == 1 {
            // Deterministic with one worker: cell b's 4 boots plus the
            // fixed cell's 2 repeated slots are all served from cache.
            // (With racing workers a duplicate can simulate twice, so
            // the count is only a lower-bound observability signal.)
            prop_assert_eq!(deduped.stats.cells_deduped, 8);
        }
        prop_assert_eq!(
            deduped.report.to_json(),
            plain.report.to_json(),
            "dedup changed the report"
        );
    }
}
