//! Cross-check of the pass pipeline's provenance: the per-pass
//! `PassDelta::estimated_saving` recorded during a *single* full-BB
//! boot must agree, within tolerance, with the per-feature savings the
//! ablation sweep measures by actually re-booting with one mechanism
//! enabled at a time.
//!
//! Passes that share a config flag are compared as a group against the
//! matching solo boot: the two `bb_group` passes (isolation +
//! prioritization) against the `bb_group`-only boot, and the Deferred
//! Executor pass (which owns both task deferral and journal deferral)
//! against a boot with both flags on.

use bb_core::{BbConfig, BootRequest, FullBootReport, Pipeline, Scenario};
use bb_sim::SimDuration;
use bb_workloads::tv_scenario;

fn boost(s: &Scenario, cfg: &BbConfig) -> Result<FullBootReport, bb_core::Error> {
    Ok(BootRequest::new(s).config(*cfg).run()?.report)
}

/// Pass groups with their tolerance bands: estimated saving must land
/// in `[measured * lo - slack, measured * hi + slack]`. Serial plan
/// edits (memory init, load model, manager tasks) are near-exact, so
/// their bands are tight; contention-mediated passes (module loading,
/// RCU, group handling) are analytic approximations with wide bands.
const GROUPS: &[(&[&str], f64, f64, u64)] = &[
    (&["defer-memory-init"], 0.9, 1.1, 10),
    (&["deferred-executor"], 0.5, 1.5, 60),
    (&["pre-parser"], 0.7, 1.3, 40),
    (&["ondemand-modularizer"], 0.25, 4.0, 150),
    (&["rcu-booster"], 0.25, 4.0, 150),
    (&["group-isolator", "bb-manager-priority"], 0.25, 4.0, 150),
];

#[test]
fn delta_attribution_tracks_measured_ablation() {
    let scenario = tv_scenario();
    let pipeline = Pipeline::standard();
    let conv = boost(&scenario, &BbConfig::conventional())
        .unwrap()
        .boot_time();
    let full = boost(&scenario, &BbConfig::full()).unwrap();
    let est = |pass: &str| {
        full.deltas
            .iter()
            .find(|d| d.pass == pass)
            .unwrap_or_else(|| panic!("no delta for {pass}"))
            .estimated_saving
    };

    for &(passes, lo, hi, slack_ms) in GROUPS {
        let cfg = pipeline.config_for(passes).unwrap();
        let solo = boost(&scenario, &cfg).unwrap().boot_time();
        let measured = conv.saturating_since(solo);
        let estimated: SimDuration = passes.iter().map(|p| est(p)).sum();
        let slack = SimDuration::from_millis(slack_ms);
        let lower = measured.scale(lo).saturating_sub(slack);
        let upper = measured.scale(hi) + slack;
        eprintln!("{passes:?}: measured {measured}, estimated {estimated} (band {lower}..{upper})");
        assert!(
            estimated >= lower && estimated <= upper,
            "{passes:?}: estimated {estimated} outside [{lower}, {upper}] (measured {measured})"
        );
    }
}

#[test]
fn delta_total_tracks_full_bb_saving() {
    // The sum of all pass estimates should be the same order of
    // magnitude as the full-BB end-to-end saving. Savings do not
    // compose additively (mechanisms overlap and unblock each other),
    // so only a coarse band is asserted.
    let scenario = tv_scenario();
    let conv = boost(&scenario, &BbConfig::conventional())
        .unwrap()
        .boot_time();
    let full = boost(&scenario, &BbConfig::full()).unwrap();
    let measured = conv.saturating_since(full.boot_time());
    let estimated: SimDuration = full.deltas.iter().map(|d| d.estimated_saving).sum();
    eprintln!("full BB: measured {measured}, estimated sum {estimated}");
    assert!(
        estimated >= measured.scale(0.5) && estimated <= measured.scale(2.0),
        "estimated sum {estimated} vs measured {measured}"
    );
}
