//! Property-based tests on the unit model: parser round-trips, the
//! Pre-parser cache equivalence, and graph invariants, over arbitrary
//! generated unit sets.

use proptest::prelude::*;

use booting_booster::init::{
    decode_units, encode_units, parse_unit, EdgeKind, IoSchedulingClass, ServiceType, Unit,
    UnitGraph, UnitName,
};

/// Strategy: a valid unit name over a closed universe (so references
/// can resolve).
fn name_strategy() -> impl Strategy<Value = UnitName> {
    (
        0usize..12,
        prop_oneof![
            Just("service"),
            Just("mount"),
            Just("socket"),
            Just("target")
        ],
    )
        .prop_map(|(i, suffix)| UnitName::new(format!("u{i:02}.{suffix}")))
}

fn service_type_strategy() -> impl Strategy<Value = ServiceType> {
    prop_oneof![
        Just(ServiceType::Simple),
        Just(ServiceType::Forking),
        Just(ServiceType::Oneshot),
        Just(ServiceType::Notify),
    ]
}

/// Strategy: one unit with arbitrary (possibly weird) fields.
fn unit_strategy() -> impl Strategy<Value = Unit> {
    (
        name_strategy(),
        "[a-zA-Z0-9 _.-]{0,40}",
        prop::collection::vec(name_strategy(), 0..4),
        prop::collection::vec(name_strategy(), 0..4),
        prop::collection::vec(name_strategy(), 0..3),
        prop::collection::vec(name_strategy(), 0..3),
        service_type_strategy(),
        prop::option::of("[a-z/:-]{1,24}"),
        -20i8..=19,
        0u64..10_000,
        any::<bool>(),
    )
        .prop_map(
            |(name, desc, after, before, requires, wants, st, exec, nice, timeout, defdeps)| {
                let mut u = Unit::new(name);
                u.description = desc.trim().to_owned();
                u.after = after;
                u.before = before;
                u.requires = requires;
                u.wants = wants;
                u.exec.service_type = st;
                u.exec.exec_start = exec;
                u.exec.nice = nice;
                u.exec.timeout_ms = timeout;
                u.exec.io_class = if nice < 0 {
                    IoSchedulingClass::Realtime
                } else {
                    IoSchedulingClass::BestEffort
                };
                u.default_dependencies = defdeps;
                u
            },
        )
}

/// Strategy: a set of units with unique names.
fn unit_set_strategy() -> impl Strategy<Value = Vec<Unit>> {
    prop::collection::vec(unit_strategy(), 1..14).prop_map(|mut units| {
        let mut seen = std::collections::BTreeSet::new();
        units.retain(|u| seen.insert(u.name.clone()));
        units
    })
}

proptest! {
    /// Rendering a unit to file syntax and parsing it back reproduces
    /// the unit exactly.
    #[test]
    fn unit_file_roundtrip(unit in unit_strategy()) {
        let text = unit.to_unit_file();
        let parsed = parse_unit(unit.name.as_str(), &text)
            .expect("rendered unit files always parse");
        prop_assert_eq!(parsed.unit, unit);
        prop_assert!(parsed.warnings.is_empty());
    }

    /// The Pre-parser cache is lossless: decode(encode(units)) == units.
    #[test]
    fn preparse_cache_roundtrip(units in unit_set_strategy()) {
        let blob = encode_units(&units);
        let back = decode_units(&blob).expect("cache decodes");
        prop_assert_eq!(back, units);
    }

    /// The cache equals the parse result of the rendered text: the two
    /// load paths (text parse vs cache decode) agree byte-for-byte at
    /// the unit level — the correctness contract of the Pre-parser.
    #[test]
    fn preparse_equals_text_parse(units in unit_set_strategy()) {
        let reparsed: Vec<Unit> = units
            .iter()
            .map(|u| parse_unit(u.name.as_str(), &u.to_unit_file()).expect("parses").unit)
            .collect();
        let decoded = decode_units(&encode_units(&units)).expect("decodes");
        prop_assert_eq!(reparsed, decoded);
    }

    /// Corrupting any single byte of a cache blob never panics — and
    /// with the trailing CRC, any single-byte change is *detected*: the
    /// decode errs rather than returning silently wrong units.
    #[test]
    fn corrupted_cache_never_panics(units in unit_set_strategy(), pos in any::<prop::sample::Index>(), delta in 1u8..255) {
        let mut blob = encode_units(&units);
        let idx = pos.index(blob.len());
        blob[idx] = blob[idx].wrapping_add(delta);
        prop_assert!(
            decode_units(&blob).is_err(),
            "single-byte damage at {idx} decoded silently"
        );
    }

    /// Arbitrary bytes never panic the cache decoder: garbage in,
    /// `Err` (or a valid decode, for the empty-ish prefixes) out.
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..1024),
    ) {
        let _ = decode_units(&bytes);
    }

    /// A seeded [`CorruptionPlan`] applied to a valid blob never panics
    /// the decoder, and if it changed any byte the decode MUST fail —
    /// the boot-time recovery chain depends on damage being detected.
    #[test]
    fn corruption_plans_are_always_detected(units in unit_set_strategy(), seed in any::<u64>()) {
        use booting_booster::sim::CorruptionPlan;

        let pristine = encode_units(&units);
        let mut damaged = pristine.clone();
        CorruptionPlan::seeded(seed).apply(&mut damaged);
        if damaged == pristine {
            prop_assert!(decode_units(&damaged).is_ok());
        } else {
            prop_assert!(
                decode_units(&damaged).is_err(),
                "corruption plan {seed} decoded silently"
            );
        }
    }

    /// Graph construction + topological order: when the ordering graph
    /// is acyclic, every ordering edge is respected by the topo order.
    #[test]
    fn topo_order_respects_edges(units in unit_set_strategy()) {
        let graph = UnitGraph::build(units).expect("unique names");
        if let Ok(order) = graph.topo_order() {
            let pos: std::collections::HashMap<usize, usize> =
                order.iter().enumerate().map(|(p, &i)| (i, p)).collect();
            for e in graph.edges() {
                if e.kind == EdgeKind::Ordering {
                    prop_assert!(pos[&e.src] < pos[&e.dst]);
                }
            }
        } else {
            // Cyclic: the SCC detector must agree.
            prop_assert!(!graph.ordering_cycles().is_empty());
        }
    }

    /// The BB Group closure is sound: it contains its seeds and is
    /// closed under strong requirements and self-declared orderings.
    #[test]
    fn strong_closure_is_closed(units in unit_set_strategy(), seed in any::<prop::sample::Index>()) {
        let graph = UnitGraph::build(units).expect("unique names");
        let seed = seed.index(graph.len());
        let group = graph.strong_closure([seed]);
        prop_assert!(group.contains(&seed));
        for &member in &group {
            for e in graph.requirement_edges(member) {
                if e.kind == EdgeKind::RequiresStrong {
                    prop_assert!(group.contains(&e.src), "missing strong dep");
                }
            }
            for e in graph.ordering_in_edges(member) {
                if e.declared_by == member {
                    prop_assert!(group.contains(&e.src), "missing self-declared After");
                }
            }
        }
    }

    /// SCC members are mutually reachable (verified by brute force on
    /// these small graphs).
    #[test]
    fn sccs_are_mutually_reachable(units in unit_set_strategy()) {
        let graph = UnitGraph::build(units).expect("unique names");
        let reach = |from: usize, to: usize| -> bool {
            let mut seen = vec![false; graph.len()];
            let mut stack = vec![from];
            while let Some(v) = stack.pop() {
                if v == to { return true; }
                if std::mem::replace(&mut seen[v], true) { continue; }
                for e in graph.edges() {
                    if e.kind == EdgeKind::Ordering && e.src == v {
                        stack.push(e.dst);
                    }
                }
            }
            false
        };
        for comp in graph.sccs() {
            if comp.len() > 1 {
                for &a in &comp {
                    for &b in &comp {
                        if a != b {
                            prop_assert!(reach(a, b), "{a} cannot reach {b}");
                        }
                    }
                }
            }
        }
    }
}
