//! Failure-injection tests: hung and crashing services, timeout
//! release, and how the boot degrades (never silently).

use booting_booster::init::{
    run_boot, BootPlan, EngineConfig, EngineMode, LoadModel, ManagerCosts, PlanOverrides,
    ServiceBody, ServiceType, Transaction, Unit, UnitGraph, UnitName, WorkloadMap,
};
use booting_booster::sim::{
    AccessPattern, DeviceProfile, Machine, MachineConfig, Op, OpsBuilder, SimDuration,
};

struct Setup {
    machine: Machine,
    cfg: EngineConfig,
}

fn setup() -> Setup {
    let mut machine = Machine::new(MachineConfig::default());
    let device = machine.add_device("emmc", DeviceProfile::tv_emmc());
    let cfg = EngineConfig {
        mode: EngineMode::InOrder,
        load: LoadModel {
            io_bytes: 1024,
            pattern: AccessPattern::Random,
            cpu: SimDuration::from_millis(1),
        },
        costs: ManagerCosts::default(),
        device,
    };
    Setup { machine, cfg }
}

fn units(timeout_ms: u64) -> Vec<Unit> {
    let mut broken = Unit::new(UnitName::new("broken.service"))
        .with_type(ServiceType::Forking)
        .with_exec("hang");
    broken.exec.timeout_ms = timeout_ms;
    vec![
        Unit::new(UnitName::new("boot.target")).requires("app.service"),
        broken,
        Unit::new(UnitName::new("app.service"))
            .needs("broken.service")
            .with_type(ServiceType::Forking)
            .with_exec("app"),
    ]
}

fn wl(machine: &mut Machine) -> WorkloadMap {
    let never = machine.flag("never-set");
    let mut wl = WorkloadMap::new();
    // The broken service hangs forever waiting on a flag nobody sets.
    wl.insert(
        "hang".into(),
        ServiceBody {
            pre_ready: vec![Op::WaitFlag(never)],
            post_ready: Vec::new(),
        },
    );
    wl.insert(
        "app".into(),
        ServiceBody {
            pre_ready: OpsBuilder::new().compute_ms(5).build(),
            post_ready: Vec::new(),
        },
    );
    wl
}

fn boot(timeout_ms: u64) -> booting_booster::init::BootRecord {
    let graph = UnitGraph::build(units(timeout_ms)).expect("unique");
    let transaction = Transaction::build(&graph, "boot.target").expect("acyclic");
    let mut s = setup();
    let workloads = wl(&mut s.machine);
    let execution_order = transaction.execution_order(&graph);
    let completion = vec![UnitName::new("app.service")];
    let overrides = PlanOverrides::default();
    let plan = BootPlan {
        graph: &graph,
        transaction: &transaction,
        completion: &completion,
        overrides: &overrides,
        init_tasks: &[],
        service_phase_tasks: &[],
        execution_order: &execution_order,
    };
    run_boot(&mut s.machine, &plan, &workloads, &s.cfg)
}

#[test]
fn hung_dependency_without_timeout_blocks_the_boot() {
    let record = boot(0);
    // Boot never completes; the hang is visible, not silent.
    assert!(record.completion_time.is_none());
    assert!(!record.outcome.blocked.is_empty());
    assert!(record.service("broken.service").ready.is_none());
    assert!(record.service("app.service").ready.is_none());
}

#[test]
fn timeout_releases_dependents_and_is_recorded() {
    let record = boot(2_000);
    // The watchdog forces readiness at 2 s; the dependent proceeds and
    // boot completes shortly after.
    let broken = record.service("broken.service");
    assert!(broken.timed_out, "timeout not attributed");
    let ready = broken.ready.expect("released by watchdog");
    assert!(
        (2_000..2_100).contains(&ready.as_millis()),
        "released at {ready}"
    );
    let completion = record.completion_time.expect("boot completes");
    assert!(completion > ready);
    assert!(!record.service("app.service").timed_out);
}

#[test]
fn healthy_service_with_timeout_is_not_marked() {
    // Same topology but the "broken" body completes instantly: the
    // watchdog loses the race and nothing is marked timed out.
    let graph = UnitGraph::build(units(2_000)).expect("unique");
    let transaction = Transaction::build(&graph, "boot.target").expect("acyclic");
    let mut s = setup();
    let mut workloads = wl(&mut s.machine);
    workloads.insert(
        "hang".into(),
        ServiceBody {
            pre_ready: OpsBuilder::new().compute_ms(3).build(),
            post_ready: Vec::new(),
        },
    );
    let execution_order = transaction.execution_order(&graph);
    let completion = vec![UnitName::new("app.service")];
    let overrides = PlanOverrides::default();
    let plan = BootPlan {
        graph: &graph,
        transaction: &transaction,
        completion: &completion,
        overrides: &overrides,
        init_tasks: &[],
        service_phase_tasks: &[],
        execution_order: &execution_order,
    };
    let record = run_boot(&mut s.machine, &plan, &workloads, &s.cfg);
    assert!(!record.service("broken.service").timed_out);
    assert!(record.completion_time.unwrap().as_millis() < 100);
}

#[test]
fn crashing_service_fails_loud_in_out_of_order_mode() {
    // In out-of-order assert mode the dependent crashes on the missing
    // prerequisite instead of hanging — a different loud failure.
    let graph = UnitGraph::build(units(0)).expect("unique");
    let transaction = Transaction::build(&graph, "boot.target").expect("acyclic");
    let mut s = setup();
    s.cfg.mode = EngineMode::OutOfOrder {
        path_check: false,
        assert_deps: true,
    };
    let workloads = wl(&mut s.machine);
    let execution_order = transaction.execution_order(&graph);
    let completion = vec![UnitName::new("app.service")];
    let overrides = PlanOverrides::default();
    let plan = BootPlan {
        graph: &graph,
        transaction: &transaction,
        completion: &completion,
        overrides: &overrides,
        init_tasks: &[],
        service_phase_tasks: &[],
        execution_order: &execution_order,
    };
    let record = run_boot(&mut s.machine, &plan, &workloads, &s.cfg);
    assert!(record.service("app.service").failed);
    assert!(record.completion_time.is_none());
}
