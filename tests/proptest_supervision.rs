//! Property-based tests of the fault-injection + supervision subsystem:
//! arbitrary seeded fault plans against arbitrary start-limit settings
//! must always yield a terminating, bounded, deterministic boot.

use proptest::prelude::*;

use booting_booster::bb::{
    fault_targets, run_with_fallback, with_supervision, BbConfig, BootOutcome, FallbackPolicy,
};
use booting_booster::init::{
    run_boot, BootPlan, EngineConfig, EngineMode, LoadModel, ManagerCosts, PlanOverrides,
    RestartPolicy, ServiceBody, ServiceType, Transaction, Unit, UnitGraph, UnitName, WorkloadMap,
};
use booting_booster::sim::{
    AccessPattern, DeviceProfile, Fault, FaultPlan, Machine, MachineConfig, OpsBuilder,
    SimDuration, SimTime,
};
use booting_booster::workloads::{profiles, tv_scenario_with, TizenParams};

fn restart_policy() -> impl Strategy<Value = RestartPolicy> {
    prop_oneof![
        Just(RestartPolicy::No),
        Just(RestartPolicy::OnFailure),
        Just(RestartPolicy::Always),
    ]
}

fn supervised_outcome(
    scenario_seed: u64,
    plan_seed: u64,
    restart: RestartPolicy,
    restart_sec_ms: u64,
    burst: u32,
) -> (BootOutcome, FallbackPolicy) {
    let base = tv_scenario_with(
        profiles::ue48h6200(),
        TizenParams {
            services: 24,
            seed: scenario_seed,
            ..TizenParams::open_source()
        },
    );
    let scenario = with_supervision(&base, restart, restart_sec_ms, burst);
    let plan = FaultPlan::seeded(plan_seed, &fault_targets(&scenario));
    let policy = FallbackPolicy::default();
    let out = run_with_fallback(&scenario, &BbConfig::full(), None, &plan, &policy)
        .expect("supervised boot returns");
    (out, policy)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seeded fault plan against any supervision settings
    /// terminates: the supervised boot returns, no unit respawns past
    /// its start limit, and the user-visible boot time is bounded by
    /// the fallback policy.
    #[test]
    fn supervised_boots_always_terminate(
        scenario_seed in 0u64..1_000,
        plan_seed in any::<u64>(),
        restart in restart_policy(),
        restart_sec_ms in 0u64..200,
        burst in 1u32..4,
    ) {
        let (out, policy) =
            supervised_outcome(scenario_seed, plan_seed, restart, restart_sec_ms, burst);

        // No infinite restart loops: every unit's respawns are bounded
        // by its start limit.
        let boot = match &out {
            BootOutcome::Completed(r) => &r.boot,
            BootOutcome::Degraded(d) => &d.bb.boot,
        };
        for (name, rec) in &boot.services {
            prop_assert!(
                rec.restarts <= burst,
                "{} respawned {} times with StartLimitBurst={}",
                name, rec.restarts, burst
            );
        }

        // The supervisor bounds the user-visible boot time: a clean
        // boot beat the deadline; a degraded one paid at most the
        // deadline on top of the conventional rescue.
        match &out {
            BootOutcome::Completed(r) => {
                prop_assert!(r.boot_time().since(SimTime::ZERO) <= policy.deadline);
            }
            BootOutcome::Degraded(d) => {
                let bound = d.conventional.boot_time().since(SimTime::ZERO) + policy.deadline;
                prop_assert!(
                    d.total_boot.since(SimTime::ZERO) <= bound,
                    "degraded boot {} exceeds conventional+deadline {}",
                    d.total_boot, SimTime::ZERO + bound
                );
            }
        }
    }

    /// Fault injection preserves determinism: the same scenario, plan,
    /// and supervision settings reproduce the same outcome exactly.
    #[test]
    fn faulted_boots_are_deterministic(
        scenario_seed in 0u64..1_000,
        plan_seed in any::<u64>(),
        restart in restart_policy(),
        burst in 1u32..4,
    ) {
        let (a, _) = supervised_outcome(scenario_seed, plan_seed, restart, 50, burst);
        let (b, _) = supervised_outcome(scenario_seed, plan_seed, restart, 50, burst);
        prop_assert_eq!(a.user_boot_time(), b.user_boot_time());
        prop_assert_eq!(a.restarts(), b.restarts());
        prop_assert_eq!(a.is_degraded(), b.is_degraded());
    }
}

/// A random DAG workload where every unit carries a long `TimeoutSec=`
/// watchdog and one supervised unit crashes once. Mirrors the
/// engine_invariants generator, restricted to what the watchdog
/// property needs.
#[derive(Debug, Clone)]
struct WatchdogWorkload {
    units: Vec<Unit>,
    workloads: WorkloadMap,
    completion: UnitName,
    crash_target: String,
}

const WATCHDOG_MS: u64 = 60_000;

fn watchdog_workload() -> impl Strategy<Value = WatchdogWorkload> {
    (2usize..10).prop_flat_map(|n| {
        let deps = prop::collection::vec(prop::collection::vec(0usize..n.max(1), 0..3), n);
        let costs = prop::collection::vec(1u64..30, n);
        let crash_idx = 0usize..n;
        (Just(n), deps, costs, crash_idx).prop_map(|(n, deps, costs, crash_idx)| {
            let mut units = vec![Unit::new(UnitName::new("boot.target"))];
            let mut workloads = WorkloadMap::new();
            for i in 0..n {
                let name = format!("s{i:02}.service");
                let mut u = Unit::new(UnitName::new(&name))
                    .with_type(ServiceType::Forking)
                    .with_exec(format!("wl:{name}"));
                u.exec.timeout_ms = WATCHDOG_MS;
                u.exec.restart = RestartPolicy::OnFailure;
                u.exec.restart_sec_ms = 10;
                u.exec.start_limit_burst = 3;
                for &d in deps[i].iter().filter(|&&d| d < i) {
                    u = u.needs(&format!("s{d:02}.service"));
                }
                units.push(u);
                workloads.insert(
                    format!("wl:{name}"),
                    ServiceBody {
                        pre_ready: OpsBuilder::new().compute_ms(costs[i]).build(),
                        post_ready: Vec::new(),
                    },
                );
                units[0] = units[0].clone().requires(&name);
            }
            WatchdogWorkload {
                units,
                workloads,
                completion: UnitName::new(format!("s{:02}.service", n - 1)),
                crash_target: format!("s{crash_idx:02}.service"),
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Timeout watchdogs never outlive boot completion: when every unit
    /// carries a long watchdog and a supervised unit crashes once, the
    /// boot still completes and the machine quiesces long before any
    /// watchdog would have expired — the watchdogs were released at
    /// readiness, not left running to their timeout.
    #[test]
    fn watchdogs_never_outlive_completion(w in watchdog_workload(), cores in 1usize..5) {
        let graph = UnitGraph::build(w.units.clone()).expect("unique names");
        let transaction = Transaction::build(&graph, "boot.target").expect("acyclic");
        let mut machine = Machine::new(MachineConfig { cores, ..MachineConfig::default() });
        let device = machine.add_device("emmc", DeviceProfile::tv_emmc());
        machine.install_fault_plan(&FaultPlan {
            faults: vec![Fault::CrashAtReadiness { process: w.crash_target.clone(), hits: 1 }],
            seed: 0,
        });
        let execution_order = transaction.execution_order(&graph);
        let completion = vec![w.completion.clone()];
        let overrides = PlanOverrides::default();
        let plan = BootPlan {
            graph: &graph,
            transaction: &transaction,
            completion: &completion,
            overrides: &overrides,
            init_tasks: &[],
            service_phase_tasks: &[],
            execution_order: &execution_order,
        };
        let cfg = EngineConfig {
            mode: EngineMode::InOrder,
            load: LoadModel {
                io_bytes: 4096,
                pattern: AccessPattern::Random,
                cpu: SimDuration::from_millis(1),
            },
            costs: ManagerCosts::default(),
            device,
        };
        let record = run_boot(&mut machine, &plan, &w.workloads, &cfg);

        prop_assert!(record.completion_time.is_some(), "supervised crash must recover");
        prop_assert!(
            record.outcome.end_time.since(SimTime::ZERO)
                < SimDuration::from_millis(WATCHDOG_MS),
            "machine quiesced at {} — a watchdog ran to its {}ms timeout",
            record.outcome.end_time, WATCHDOG_MS
        );
    }
}
