//! End-to-end integration tests across all crates: the calibrated TV
//! scenario booted conventionally and with the full Booting Booster.

use booting_booster::bb::{BbConfig, BootRequest, Comparison, FullBootReport, Scenario};
use booting_booster::init::{blame, critical_chain, Bootchart, UnitGraph, UnitName};
use booting_booster::workloads::{tv_scenario, tv_scenario_open_source};

fn boost(s: &Scenario, cfg: &BbConfig) -> Result<FullBootReport, booting_booster::bb::Error> {
    Ok(BootRequest::new(s).config(*cfg).run()?.report)
}

#[test]
fn headline_reproduction_bands() {
    let scenario = tv_scenario();
    let conv = boost(&scenario, &BbConfig::conventional()).expect("valid");
    let bb = boost(&scenario, &BbConfig::full()).expect("valid");

    let conv_s = conv.boot_time().as_secs_f64();
    let bb_s = bb.boot_time().as_secs_f64();
    assert!((7.0..9.2).contains(&conv_s), "conventional {conv_s:.3} s");
    assert!((3.0..4.0).contains(&bb_s), "bb {bb_s:.3} s");
    let reduction = 100.0 * (conv_s - bb_s) / conv_s;
    assert!(
        (45.0..70.0).contains(&reduction),
        "reduction {reduction:.1}%"
    );
}

#[test]
fn bb_group_is_the_paper_seven() {
    let scenario = tv_scenario();
    let bb = boost(&scenario, &BbConfig::full()).expect("valid");
    let names: Vec<&str> = bb.bb_group.iter().map(|n| n.as_str()).collect();
    assert_eq!(
        names,
        vec![
            "var.mount",
            "dbus.socket",
            "dbus.service",
            "tuner.service",
            "hdmi.service",
            "demux.service",
            "fasttv.service"
        ]
    );
}

#[test]
fn boots_are_fully_deterministic() {
    let run = || {
        let scenario = tv_scenario();
        let r = boost(&scenario, &BbConfig::full()).expect("valid");
        (
            r.boot_time(),
            r.quiesce_time,
            r.rcu.syncs_completed,
            r.rcu.grace_periods,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn no_service_fails_and_everything_completes() {
    let scenario = tv_scenario();
    for cfg in [BbConfig::conventional(), BbConfig::full()] {
        let r = boost(&scenario, &cfg).expect("valid");
        assert!(r.boot.outcome.failed.is_empty(), "failed processes");
        assert!(
            r.boot.outcome.blocked.is_empty(),
            "blocked processes at quiesce: {:?}",
            r.boot.outcome.blocked
        );
        // Every launched service eventually became ready.
        for (name, rec) in &r.boot.services {
            assert!(rec.ready.is_some(), "{name} never became ready");
        }
    }
}

#[test]
fn kernel_phase_breakdown_matches_figure6a() {
    let scenario = tv_scenario();
    let conv = boost(&scenario, &BbConfig::conventional()).expect("valid");
    let bb = boost(&scenario, &BbConfig::full()).expect("valid");
    let conv_kernel = conv.kernel.kernel_total().as_millis();
    let bb_kernel = bb.kernel.kernel_total().as_millis();
    assert!(
        (660..=740).contains(&conv_kernel),
        "conv kernel {conv_kernel}"
    );
    assert!((370..=440).contains(&bb_kernel), "bb kernel {bb_kernel}");
    // Init-phase timings are the paper's exact task table.
    assert_eq!(
        conv.boot
            .init_done
            .since(conv.boot.userspace_start)
            .as_millis(),
        195
    );
    assert_eq!(
        bb.boot.init_done.since(bb.boot.userspace_start).as_millis(),
        71
    );
}

#[test]
fn comparison_table_is_consistent() {
    let scenario = tv_scenario();
    let conv = boost(&scenario, &BbConfig::conventional()).expect("valid");
    let bb = boost(&scenario, &BbConfig::full()).expect("valid");
    let cmp = Comparison::build(&conv, &bb);
    // Rows partition the boot exactly.
    let conv_sum: u64 = cmp.rows.iter().map(|r| r.conventional.as_nanos()).sum();
    assert_eq!(conv_sum, cmp.conventional_total.as_nanos());
    let bb_sum: u64 = cmp.rows.iter().map(|r| r.boosted.as_nanos()).sum();
    assert_eq!(bb_sum, cmp.boosted_total.as_nanos());
}

#[test]
fn deferred_work_runs_after_completion_without_breaking_it() {
    let scenario = tv_scenario();
    let bb = boost(&scenario, &BbConfig::full()).expect("valid");
    assert!(
        bb.quiesce_time > bb.boot_time(),
        "deferred kernel/init work should continue past completion"
    );
}

#[test]
fn bootchart_and_analysis_tools_work_on_real_runs() {
    let scenario = tv_scenario_open_source();
    let boot = BootRequest::new(&scenario).run().expect("valid");
    let (report, machine) = (boot.report, boot.machine);
    let chart = Bootchart::build(&report.boot, &machine);
    assert!(chart.rows.len() > 100, "chart rows {}", chart.rows.len());
    assert!(chart.to_ascii(80).contains("var.mount"));
    assert!(chart.to_svg().contains("</svg>"));

    let b = blame(&report.boot);
    assert!(!b.is_empty());
    assert!(b.windows(2).all(|w| w[0].1 >= w[1].1));

    let graph = UnitGraph::build(scenario.units.clone()).expect("valid");
    let chain = critical_chain(&report.boot, &graph, &UnitName::new("fasttv.service"));
    assert!(chain.len() >= 3, "chain {chain:?}");
    assert_eq!(chain[0].0.as_str(), "fasttv.service");
    // Ready times decrease walking back the chain.
    assert!(chain.windows(2).all(|w| w[0].1 >= w[1].1));
}

#[test]
fn rcu_booster_control_reverts_after_boot() {
    let scenario = tv_scenario();
    let boot = BootRequest::new(&scenario).run().expect("valid");
    let (report, machine) = (boot.report, boot.machine);
    assert_eq!(
        machine.rcu_mode(),
        booting_booster::sim::RcuMode::ClassicSpin
    );
    assert!(report.rcu.boosted_syncs > 0, "boot-time syncs were boosted");
    assert!(
        report.rcu.grace_periods < report.rcu.syncs_completed,
        "grace periods batch waiters"
    );
}
