//! Calibration pins: exact, deterministic headline numbers.
//!
//! The simulator is bit-for-bit deterministic, so the headline results
//! can be pinned exactly. These tests exist to catch *accidental*
//! calibration drift — if you change a cost model on purpose, update
//! the pins and the tables in EXPERIMENTS.md together.
use booting_booster::bb::{
    run_with_fallback, BbConfig, BootOutcome, BootRequest, FallbackPolicy, FullBootReport, Scenario,
};
use booting_booster::sim::FaultPlan;
use booting_booster::workloads::tv_scenario;

fn boost(s: &Scenario, cfg: &BbConfig) -> Result<FullBootReport, booting_booster::bb::Error> {
    BootRequest::new(s).config(*cfg).run().map(|b| b.report)
}

#[test]
fn headline_numbers_are_pinned() {
    let scenario = tv_scenario();
    let conv = boost(&scenario, &BbConfig::conventional()).expect("valid");
    let bb = boost(&scenario, &BbConfig::full()).expect("valid");

    let conv_ms = conv.boot_time().as_millis();
    let bb_ms = bb.boot_time().as_millis();
    // Paper: 8100 ms -> 3500 ms. Pinned measured values:
    assert_eq!(
        conv_ms, 8614,
        "conventional drifted (update EXPERIMENTS.md)"
    );
    assert_eq!(bb_ms, 3200, "bb drifted (update EXPERIMENTS.md)");
    // Sub-millisecond pins, in the `{:.3}` ms formatting every JSON
    // report uses: the fault-injection machinery sits on the hot path
    // (timed waits, fault hooks), so even nanosecond-level drift on the
    // no-fault boot is a regression.
    let ms3 = |t: booting_booster::sim::SimTime| format!("{:.3}", t.as_nanos() as f64 / 1e6);
    assert_eq!(ms3(conv.boot_time()), "8614.474");
    assert_eq!(ms3(bb.boot_time()), "3200.077");
}

#[test]
fn fault_free_supervised_boot_matches_plain_boost_exactly() {
    // The supervised entry point with an empty fault plan must be
    // byte-for-byte the plain boost: installing the supervisor may not
    // perturb the calibrated timeline.
    let scenario = tv_scenario();
    for cfg in [BbConfig::conventional(), BbConfig::full()] {
        let plain = boost(&scenario, &cfg).expect("valid");
        let supervised = run_with_fallback(
            &scenario,
            &cfg,
            None,
            &FaultPlan::none(),
            &FallbackPolicy::default(),
        )
        .expect("valid");
        let BootOutcome::Completed(report) = supervised else {
            panic!("fault-free boot must not degrade");
        };
        assert_eq!(report.boot_time(), plain.boot_time());
        assert_eq!(report.quiesce_time, plain.quiesce_time);
        assert_eq!(report.boot.init_done, plain.boot.init_done);
        assert_eq!(report.boot.load_done, plain.boot.load_done);
    }
}

#[test]
fn kernel_and_init_phases_are_pinned() {
    let scenario = tv_scenario();
    let conv = boost(&scenario, &BbConfig::conventional()).expect("valid");
    let bb = boost(&scenario, &BbConfig::full()).expect("valid");
    // Paper: kernel 698 -> 403 ms; init 195 -> 71 ms.
    assert_eq!(conv.kernel.kernel_total().as_millis(), 696);
    assert_eq!(bb.kernel.kernel_total().as_millis(), 401);
    assert_eq!(
        conv.boot
            .init_done
            .since(conv.boot.userspace_start)
            .as_millis(),
        195
    );
    assert_eq!(
        bb.boot.init_done.since(bb.boot.userspace_start).as_millis(),
        71
    );
}

#[test]
fn rcu_sync_counts_are_pinned() {
    let scenario = tv_scenario();
    let conv = boost(&scenario, &BbConfig::conventional()).expect("valid");
    let bb = boost(&scenario, &BbConfig::full()).expect("valid");
    // Same generated workload → identical sync counts in both modes.
    assert_eq!(conv.rcu.syncs_completed, bb.rcu.syncs_completed);
    // Batching merges grace periods; both stay well below sync count.
    assert!(conv.rcu.grace_periods < conv.rcu.syncs_completed);
    assert!(bb.rcu.grace_periods < bb.rcu.syncs_completed);
}
