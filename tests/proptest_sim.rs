//! Property-based tests of the simulation substrate: scheduling,
//! accounting, and causality invariants over random op programs.

use proptest::prelude::*;

use booting_booster::sim::{
    DeviceProfile, IoPriority, Machine, MachineConfig, Op, ProcessSpec, RcuMode, SimDuration,
    SimTime, TraceKind,
};

/// A closed-universe flag space so waits can always be satisfied.
const FLAGS: usize = 4;

#[derive(Debug, Clone)]
enum GenOp {
    Compute(u64),
    IoRead(u64),
    Sleep(u64),
    RcuSync,
    RcuRead(u64),
    SetFlag(usize),
    WaitFlag(usize),
    Yield,
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (1u64..20).prop_map(GenOp::Compute),
        (512u64..262_144).prop_map(GenOp::IoRead),
        (1u64..30).prop_map(GenOp::Sleep),
        Just(GenOp::RcuSync),
        (1u64..5).prop_map(GenOp::RcuRead),
        (0usize..FLAGS).prop_map(GenOp::SetFlag),
        (0usize..FLAGS).prop_map(GenOp::WaitFlag),
        Just(GenOp::Yield),
    ]
}

#[derive(Debug, Clone)]
struct GenProgram {
    nice: i8,
    io_priority: IoPriority,
    ops: Vec<GenOp>,
}

fn program_strategy() -> impl Strategy<Value = GenProgram> {
    (
        -20i8..=19,
        prop_oneof![
            Just(IoPriority::Realtime),
            Just(IoPriority::BestEffort),
            Just(IoPriority::Idle)
        ],
        prop::collection::vec(op_strategy(), 1..10),
    )
        .prop_map(|(nice, io_priority, ops)| GenProgram {
            nice,
            io_priority,
            ops,
        })
}

/// Builds a machine where every flag is eventually set (a dedicated
/// setter process guarantees waits terminate).
fn build(programs: &[GenProgram], cores: usize, mode: RcuMode) -> Machine {
    let mut m = Machine::new(MachineConfig {
        cores,
        rcu_mode: mode,
        ..MachineConfig::default()
    });
    let dev = m.add_device("emmc", DeviceProfile::tv_emmc());
    let flags: Vec<_> = (0..FLAGS).map(|i| m.flag(format!("f{i}"))).collect();
    // Setter guarantees liveness: after 100 ms every flag is set.
    let mut setter_ops = vec![Op::Sleep(SimDuration::from_millis(100))];
    setter_ops.extend(flags.iter().map(|&f| Op::SetFlag(f)));
    m.spawn(ProcessSpec::new("setter", setter_ops));
    for (i, p) in programs.iter().enumerate() {
        let ops: Vec<Op> = p
            .ops
            .iter()
            .map(|op| match *op {
                GenOp::Compute(ms) => Op::Compute(SimDuration::from_millis(ms)),
                GenOp::IoRead(bytes) => Op::IoRead {
                    device: dev,
                    bytes,
                    pattern: booting_booster::sim::AccessPattern::Random,
                },
                GenOp::Sleep(ms) => Op::Sleep(SimDuration::from_millis(ms)),
                GenOp::RcuSync => Op::RcuSync,
                GenOp::RcuRead(ms) => Op::RcuReadHold(SimDuration::from_millis(ms)),
                GenOp::SetFlag(f) => Op::SetFlag(flags[f]),
                GenOp::WaitFlag(f) => Op::WaitFlag(flags[f]),
                GenOp::Yield => Op::Yield,
            })
            .collect();
        m.spawn(
            ProcessSpec::new(format!("p{i}"), ops)
                .with_nice(p.nice)
                .with_io_priority(p.io_priority),
        );
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every process finishes (liveness), the clock never runs
    /// backwards, and total charged CPU never exceeds cores × wall time
    /// (conservation).
    #[test]
    fn liveness_and_cpu_conservation(
        programs in prop::collection::vec(program_strategy(), 1..8),
        cores in 1usize..5,
        boosted in any::<bool>(),
    ) {
        let mode = if boosted { RcuMode::Boosted } else { RcuMode::ClassicSpin };
        let mut m = build(&programs, cores, mode);
        let out = m.run();
        prop_assert!(out.blocked.is_empty(), "deadlocked: {:?}", out.blocked);
        prop_assert!(out.failed.is_empty());
        // Clock monotonicity over the trace.
        let times: Vec<SimTime> = m.trace().events().iter().map(|e| e.time).collect();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // CPU conservation.
        let total_cpu: u64 = m.processes().iter().map(|p| p.cpu_time.as_nanos()).sum();
        let budget = out.end_time.as_nanos().saturating_mul(cores as u64);
        prop_assert!(
            total_cpu <= budget,
            "cpu {total_cpu} exceeds {cores}-core budget {budget}"
        );
    }

    /// Core busy spans never overlap on the same core.
    #[test]
    fn core_spans_never_overlap(
        programs in prop::collection::vec(program_strategy(), 1..6),
        cores in 1usize..4,
    ) {
        let mut m = build(&programs, cores, RcuMode::ClassicSpin);
        m.run();
        let mut per_core: std::collections::HashMap<u32, Vec<(u64, u64)>> =
            std::collections::HashMap::new();
        for s in m.trace().spans() {
            per_core
                .entry(s.core.as_raw())
                .or_default()
                .push((s.start.as_nanos(), s.end.as_nanos()));
        }
        for (_core, mut spans) in per_core {
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlap: {:?} then {:?}", w[0], w[1]);
            }
        }
    }

    /// Identical inputs give identical traces (bitwise determinism).
    #[test]
    fn determinism(
        programs in prop::collection::vec(program_strategy(), 1..6),
        cores in 1usize..4,
    ) {
        let run = || {
            let mut m = build(&programs, cores, RcuMode::Boosted);
            let out = m.run();
            let sig: Vec<(u64, u32)> = m
                .trace()
                .events()
                .iter()
                .map(|e| (e.time.as_nanos(), e.pid.as_raw()))
                .collect();
            (out.end_time, sig)
        };
        prop_assert_eq!(run(), run());
    }

    /// Flag causality: a waiter never proceeds past a wait before the
    /// flag's recorded set time.
    #[test]
    fn flag_causality(
        programs in prop::collection::vec(program_strategy(), 1..6),
    ) {
        let mut m = build(&programs, 2, RcuMode::ClassicSpin);
        m.run();
        // Every FlagSet trace time matches flag_set_at, and finished
        // processes that waited on a flag finished at or after it.
        for e in m.trace().events() {
            if let TraceKind::FlagSet { flag } = e.kind {
                prop_assert_eq!(m.flag_set_at(flag), Some(e.time));
            }
        }
    }

    /// RCU accounting: completed syncs equal submissions, and grace
    /// periods never exceed syncs (batching only merges).
    #[test]
    fn rcu_accounting(
        programs in prop::collection::vec(program_strategy(), 1..8),
        boosted in any::<bool>(),
    ) {
        let mode = if boosted { RcuMode::Boosted } else { RcuMode::ClassicSpin };
        let expected_syncs: u64 = programs
            .iter()
            .flat_map(|p| &p.ops)
            .filter(|op| matches!(op, GenOp::RcuSync))
            .count() as u64;
        let mut m = build(&programs, 4, mode);
        m.run();
        let stats = m.rcu_stats();
        prop_assert_eq!(stats.syncs_completed, expected_syncs);
        prop_assert!(stats.grace_periods <= expected_syncs.max(1));
        prop_assert_eq!(stats.classic_syncs + stats.boosted_syncs, expected_syncs);
    }
}
