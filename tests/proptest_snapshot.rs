//! Property tests of the snapshot subsystem and a pinned golden
//! snapshot guarding the on-disk format.
//!
//! 1. At the simulation layer: cutting an arbitrary machine mid-run
//!    with [`snapshot::save`]/[`snapshot::restore`] and continuing is
//!    invisible — the finished timeline is bit-identical, event for
//!    event, to the uninterrupted run.
//! 2. At the boot layer: splitting an arbitrary TV boot with
//!    [`BootRequest::checkpoint_at`] + [`BootRequest::resume`] matches
//!    the uninterrupted [`BootRequest::run`] for arbitrary workload
//!    seeds, service counts, and suffix configurations.
//! 3. The golden file `tests/golden/snapshot_v2.bin` pins the current
//!    format byte for byte, and `tests/golden/snapshot_v1.bin` pins
//!    backward compatibility: the committed v1 image (no trailing
//!    checksum) must keep restoring. Any codec change — field order,
//!    widths, new sections — fails the test until the format version is
//!    bumped and the golden is deliberately re-blessed with
//!    `BB_BLESS_GOLDEN=1 cargo test --test proptest_snapshot`.
//! 4. Integrity: [`snapshot::restore`] never panics on arbitrary or
//!    corrupted bytes, and any byte-level damage to a v2 image is
//!    *detected* (the restore errs rather than returning a silently
//!    wrong machine).

use proptest::prelude::*;

use booting_booster::bb::{BbConfig, BootRequest, CheckpointPhase};
use booting_booster::sim::{
    snapshot, AccessPattern, DeviceProfile, Machine, MachineConfig, Op, ProcessSpec, SimDuration,
    SimTime,
};
use booting_booster::workloads::{profiles, tv_scenario_with, TizenParams};

// ---------------------------------------------------------------------
// 1. Simulation layer: save/restore mid-run is invisible.
// ---------------------------------------------------------------------

/// A generated process: a loop-free op program that always terminates
/// (no flag waits), so every machine runs to quiescence.
#[derive(Debug, Clone)]
struct GenProcess {
    nice: i8,
    ops: Vec<GenOp>,
}

#[derive(Debug, Clone)]
enum GenOp {
    Compute(u64),
    IoRead(u64),
    Sleep(u64),
    RcuSync,
    RcuRead(u64),
    Yield,
}

fn process_strategy() -> impl Strategy<Value = GenProcess> {
    (
        -5i8..=5,
        prop::collection::vec(
            prop_oneof![
                (1u64..15).prop_map(GenOp::Compute),
                (4096u64..262_144).prop_map(GenOp::IoRead),
                (1u64..20).prop_map(GenOp::Sleep),
                Just(GenOp::RcuSync),
                (1u64..4).prop_map(GenOp::RcuRead),
                Just(GenOp::Yield),
            ],
            1..8,
        ),
    )
        .prop_map(|(nice, ops)| GenProcess { nice, ops })
}

/// Deterministically builds the same machine from the same programs.
fn build(programs: &[GenProcess], cores: usize) -> Machine {
    let mut m = Machine::new(MachineConfig {
        cores,
        ..MachineConfig::default()
    });
    let dev = m.add_device("emmc", DeviceProfile::tv_emmc());
    for (i, p) in programs.iter().enumerate() {
        let ops: Vec<Op> = p
            .ops
            .iter()
            .map(|op| match *op {
                GenOp::Compute(ms) => Op::Compute(SimDuration::from_millis(ms)),
                GenOp::IoRead(bytes) => Op::IoRead {
                    device: dev,
                    bytes,
                    pattern: AccessPattern::Random,
                },
                GenOp::Sleep(ms) => Op::Sleep(SimDuration::from_millis(ms)),
                GenOp::RcuSync => Op::RcuSync,
                GenOp::RcuRead(ms) => Op::RcuReadHold(SimDuration::from_millis(ms)),
                GenOp::Yield => Op::Yield,
            })
            .collect();
        m.spawn(ProcessSpec::new(format!("p{i}"), ops).with_nice(p.nice));
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Run straight through vs. cut at an arbitrary time, round-trip
    /// through the snapshot codec, and continue: identical timelines.
    #[test]
    fn mid_run_snapshot_is_invisible(
        programs in prop::collection::vec(process_strategy(), 1..6),
        cores in 1usize..4,
        cut_percent in 0u64..100,
    ) {
        let mut straight = build(&programs, cores);
        straight.run();

        // Cut strictly inside the run — `run_until` past quiescence
        // would legitimately advance the idle clock beyond the straight
        // run's end time.
        let cut_us = straight.now().since(SimTime::ZERO).as_micros() * cut_percent / 100;
        let mut before = build(&programs, cores);
        before.run_until(SimTime::ZERO + SimDuration::from_micros(cut_us));
        let bytes = snapshot::save(&before).expect("snapshot");
        let mut after = snapshot::restore(&bytes).expect("restore");
        after.run();

        prop_assert_eq!(straight.now(), after.now());
        prop_assert_eq!(straight.rcu_stats(), after.rcu_stats());
        let a = straight.trace().events();
        let b = after.trace().events();
        prop_assert_eq!(a.len(), b.len(), "event counts diverge");
        for (x, y) in a.iter().zip(b) {
            prop_assert_eq!(x, y, "trace event diverges");
        }
    }

    /// The codec itself is a bijection on reachable states: restoring
    /// a snapshot and saving again reproduces the exact bytes.
    #[test]
    fn save_restore_save_is_identity(
        programs in prop::collection::vec(process_strategy(), 1..6),
        cores in 1usize..4,
        cut_us in 0u64..40_000,
    ) {
        let mut m = build(&programs, cores);
        m.run_until(SimTime::ZERO + SimDuration::from_micros(cut_us));
        let bytes = snapshot::save(&m).expect("snapshot");
        let restored = snapshot::restore(&bytes).expect("restore");
        let again = snapshot::save(&restored).expect("re-snapshot");
        prop_assert_eq!(bytes, again);
    }
}

// ---------------------------------------------------------------------
// 2. Boot layer: checkpoint + resume matches the uninterrupted run.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For arbitrary workload seeds, service counts, and suffix
    /// configurations: checkpoint the full-BB prefix at every phase,
    /// resume under a (possibly different) suffix config, and the
    /// timeline matches that config's uninterrupted run exactly.
    #[test]
    fn checkpointed_boot_matches_uninterrupted_boot(
        seed in 0u64..1_000_000,
        services in 24usize..40,
        bits in any::<u8>(),
    ) {
        let s = tv_scenario_with(
            profiles::ue48h6200(),
            TizenParams { services, seed, ..TizenParams::open_source() },
        );
        // Same prefix key as the checkpoint config (full), arbitrary
        // suffix features — the resumable family of one checkpoint.
        let cfg = BbConfig {
            deferred_executor: bits & 0x01 != 0,
            preparser: bits & 0x02 != 0,
            bb_group: bits & 0x04 != 0,
            ..BbConfig::full()
        };
        for phase in [CheckpointPhase::KernelHandoff] {
            let ckpt = BootRequest::new(&s)
                .config(BbConfig::full())
                .checkpoint_at(phase)
                .expect("checkpoint");
            let resumed = BootRequest::new(&s).config(cfg).resume(&ckpt).expect("resume");
            let straight = BootRequest::new(&s).config(cfg).run().expect("run");
            prop_assert_eq!(
                straight.report.boot.completion_time,
                resumed.report.boot.completion_time
            );
            prop_assert_eq!(straight.report.quiesce_time, resumed.report.quiesce_time);
            prop_assert_eq!(straight.report.rcu, resumed.report.rcu);
            let a = straight.machine.trace().events();
            let b = resumed.machine.trace().events();
            prop_assert_eq!(a.len(), b.len(), "event counts diverge");
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x, y, "trace event diverges");
            }
        }
    }
}

// ---------------------------------------------------------------------
// 3. Golden snapshot: the v1 format, pinned byte for byte.
// ---------------------------------------------------------------------

/// A small but section-complete machine: multiple processes in distinct
/// states, pending I/O, RCU activity, flags, and a cut mid-run so the
/// event queue and scheduler state are non-trivial.
fn golden_machine() -> Machine {
    let mut m = Machine::new(MachineConfig {
        cores: 2,
        ..MachineConfig::default()
    });
    let dev = m.add_device("emmc", DeviceProfile::tv_emmc());
    let gate = m.flag("golden-gate");
    m.spawn(ProcessSpec::new(
        "reader",
        vec![
            Op::Compute(SimDuration::from_millis(2)),
            Op::IoRead {
                device: dev,
                bytes: 64 * 1024,
                pattern: AccessPattern::Sequential,
            },
            Op::SetFlag(gate),
            Op::RcuSync,
        ],
    ));
    m.spawn(ProcessSpec::new(
        "waiter",
        vec![
            Op::WaitFlag(gate),
            Op::RcuReadHold(SimDuration::from_millis(1)),
            Op::Compute(SimDuration::from_millis(3)),
        ],
    ));
    m.spawn(ProcessSpec::new(
        "sleeper",
        vec![
            Op::Sleep(SimDuration::from_millis(4)),
            Op::Compute(SimDuration::from_millis(1)),
        ],
    ));
    m.run_until(SimTime::ZERO + SimDuration::from_millis(3));
    m
}

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/snapshot_v2.bin");
const LEGACY_V1_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/snapshot_v1.bin");

/// The committed golden bytes are exactly what today's codec produces,
/// and they still restore to a machine that finishes the run the same
/// way. A diff here means the format changed: bump
/// [`snapshot::FORMAT_VERSION`] and re-bless deliberately.
#[test]
fn golden_snapshot_format_is_stable() {
    let bytes = snapshot::save(&golden_machine()).expect("snapshot");
    if std::env::var_os("BB_BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &bytes).expect("bless golden");
        eprintln!("blessed {} ({} bytes)", GOLDEN_PATH, bytes.len());
        return;
    }
    let golden = std::fs::read(GOLDEN_PATH).expect(
        "tests/golden/snapshot_v2.bin missing — run \
         BB_BLESS_GOLDEN=1 cargo test --test proptest_snapshot",
    );
    assert_eq!(
        golden.len(),
        bytes.len(),
        "snapshot format drifted (length changed); bump FORMAT_VERSION and re-bless"
    );
    assert_eq!(
        golden, bytes,
        "snapshot format drifted; bump FORMAT_VERSION and re-bless"
    );

    // The pinned bytes parse, restore, and finish the boot exactly like
    // a freshly built machine.
    let header = snapshot::read_header(&golden).expect("header");
    assert_eq!(header.version, snapshot::FORMAT_VERSION);
    assert_eq!(
        header.calibration,
        (
            snapshot::CALIBRATION_PIN_CONVENTIONAL_US,
            snapshot::CALIBRATION_PIN_BB_US
        )
    );
    let mut restored = snapshot::restore(&golden).expect("restore golden");
    let mut fresh = golden_machine();
    restored.run();
    fresh.run();
    assert_eq!(restored.now(), fresh.now());
    assert_eq!(
        restored.trace().events().len(),
        fresh.trace().events().len()
    );
}

/// The committed v1 image (written before the trailing payload
/// checksum existed) must keep restoring: devices in the field hold
/// old suspend images, and a format bump must never strand them.
#[test]
fn legacy_v1_snapshot_still_restores() {
    let golden = std::fs::read(LEGACY_V1_PATH)
        .expect("tests/golden/snapshot_v1.bin missing — the committed legacy fixture was removed");
    let header = snapshot::read_header(&golden).expect("v1 header");
    assert_eq!(header.version, 1);
    assert!(header.version >= snapshot::MIN_SUPPORTED_VERSION);
    let mut restored = snapshot::restore(&golden).expect("v1 image must keep restoring");
    let mut fresh = golden_machine();
    restored.run();
    fresh.run();
    assert_eq!(restored.now(), fresh.now());
    assert_eq!(
        restored.trace().events().len(),
        fresh.trace().events().len()
    );
}

// ---------------------------------------------------------------------
// 4. Integrity: restore never panics, and damage is always detected.
// ---------------------------------------------------------------------

proptest! {
    /// Arbitrary bytes never panic the decoder: garbage in, `Err` out.
    #[test]
    fn restore_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let _ = snapshot::restore(&bytes);
        let _ = snapshot::read_header(&bytes);
    }

    /// A seeded [`CorruptionPlan`] applied to a valid v2 image never
    /// panics the decoder, and if it changed any byte the restore MUST
    /// fail — the whole-payload checksum makes silent damage
    /// impossible.
    #[test]
    fn corrupted_snapshots_are_always_detected(seed in any::<u64>()) {
        use booting_booster::sim::CorruptionPlan;

        let pristine = snapshot::save(&golden_machine()).expect("snapshot");
        let mut damaged = pristine.clone();
        CorruptionPlan::seeded(seed).apply(&mut damaged);
        if damaged == pristine {
            // The plan was a no-op on these bytes (e.g. zeroing an
            // already-zero page): the image must still restore.
            prop_assert!(snapshot::restore(&damaged).is_ok());
        } else {
            prop_assert!(
                snapshot::restore(&damaged).is_err(),
                "byte-level damage restored silently"
            );
        }
    }

    /// Single bit-flips anywhere in the image — header, payload, or the
    /// checksum itself — are detected.
    #[test]
    fn single_bit_flips_are_always_detected(
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let pristine = snapshot::save(&golden_machine()).expect("snapshot");
        let mut damaged = pristine.clone();
        let idx = pos.index(damaged.len());
        damaged[idx] ^= 1 << bit;
        prop_assert!(
            snapshot::restore(&damaged).is_err(),
            "bit flip at byte {idx} restored silently"
        );
    }
}
