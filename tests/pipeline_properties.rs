//! Properties of the boot-plan pass pipeline.
//!
//! 1. Every [`PlanPass`] is idempotent: once the pipeline has run,
//!    applying any enabled pass a second time must not change the plan.
//!    The executor replays the IR verbatim, so idempotence is what makes
//!    a pass safe to re-run (and the deltas trustworthy as provenance).
//! 2. The pipeline refactor is behavior-preserving: `Pipeline::run`
//!    reproduces the pre-refactor TV-scenario boot times exactly, for
//!    both the conventional and the full-BB configuration.
//!
//! [`PlanPass`]: booting_booster::bb::PlanPass

use proptest::prelude::*;

use booting_booster::bb::{BbConfig, BootPlanIr, Pipeline};
use booting_booster::workloads::{camera_scenario, tv_scenario};

/// The plan state passes are allowed to mutate, as one comparable
/// snapshot. (The graph, transaction, and workload tables are
/// pass-invariant inputs.)
fn snapshot(ir: &BootPlanIr) -> String {
    format!(
        "kernel={:?} modules={:?} overrides={:?} init={:?} service={:?} load={:?} rcu={:?}",
        ir.kernel,
        ir.module_strategy,
        ir.overrides,
        ir.init_tasks,
        ir.service_phase_tasks,
        ir.load,
        ir.boost_rcu,
    )
}

fn config_from_bits(bits: u8) -> BbConfig {
    BbConfig {
        rcu_booster: bits & 0x01 != 0,
        defer_memory: bits & 0x02 != 0,
        ondemand_modularizer: bits & 0x04 != 0,
        defer_journal: bits & 0x08 != 0,
        deferred_executor: bits & 0x10 != 0,
        preparser: bits & 0x20 != 0,
        bb_group: bits & 0x40 != 0,
    }
}

proptest! {
    #[test]
    fn every_enabled_pass_is_idempotent(bits in any::<u8>()) {
        let cfg = config_from_bits(bits);
        let scenario = camera_scenario();
        let pipeline = Pipeline::standard();
        let (mut ir, _) = pipeline.plan(&scenario, &cfg, None).unwrap();
        let once = snapshot(&ir);
        for pass in pipeline.enabled(&cfg) {
            pass.apply(&mut ir);
            prop_assert_eq!(
                &once,
                &snapshot(&ir),
                "pass {} is not idempotent under config {:?}",
                pass.name(),
                cfg
            );
        }
    }
}

#[test]
fn pipeline_reproduces_pre_refactor_tv_boot_times() {
    // The pass pipeline replaced the hand-threaded `boost_inner`; the
    // machine-op programs it emits are identical, so the calibrated
    // headline times must not move by a nanosecond.
    let scenario = tv_scenario();
    let pipeline = Pipeline::standard();
    let conv = pipeline
        .run(&scenario, &BbConfig::conventional())
        .expect("valid");
    let bb = pipeline.run(&scenario, &BbConfig::full()).expect("valid");
    assert_eq!(conv.boot_time().to_string(), "8614.474ms");
    assert_eq!(bb.boot_time().to_string(), "3200.077ms");
    // Conventional boots run zero passes; full BB runs all seven.
    assert!(conv.deltas.is_empty());
    assert_eq!(bb.deltas.len(), 7);
}
