//! Parses the on-disk unit corpus (`examples/units/`) end to end:
//! text → parser → graph → analyzer → pre-parse cache → boot.

use std::collections::BTreeSet;

use booting_booster::bb::service_engine::{analyze, identify_bb_group, Finding};
use booting_booster::init::{
    decode_units, encode_units, parse_unit, run_boot, BootPlan, EngineConfig, EngineMode,
    IoSchedulingClass, LoadModel, ManagerCosts, PlanOverrides, ServiceType, Transaction, UnitGraph,
    UnitName, WorkloadMap,
};
use booting_booster::sim::{AccessPattern, DeviceProfile, Machine, MachineConfig, SimDuration};

fn corpus() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/units");
    let mut files: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|e| {
            let path = e.expect("dir entry").path();
            let name = path.file_name().unwrap().to_str().unwrap().to_owned();
            (name, std::fs::read_to_string(&path).expect("readable"))
        })
        .collect();
    files.sort();
    files
}

fn parse_corpus() -> Vec<booting_booster::init::Unit> {
    corpus()
        .iter()
        .map(|(name, text)| {
            let parsed =
                parse_unit(name, text).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
            assert!(
                parsed.warnings.is_empty(),
                "{name} produced warnings: {:?}",
                parsed.warnings
            );
            parsed.unit
        })
        .collect()
}

#[test]
fn corpus_parses_with_expected_details() {
    let units = parse_corpus();
    assert_eq!(units.len(), 15);
    let by_name = |n: &str| {
        units
            .iter()
            .find(|u| u.name.as_str() == n)
            .unwrap_or_else(|| panic!("{n} missing"))
    };
    let dbus = by_name("dbus.service");
    assert_eq!(dbus.exec.service_type, ServiceType::Notify);
    assert_eq!(dbus.exec.nice, -10);
    assert_eq!(dbus.requires.len(), 2);
    assert_eq!(dbus.documentation, vec!["man:dbus-daemon(1)".to_string()]);
    let tuner = by_name("tuner.service");
    assert_eq!(tuner.exec.timeout_ms, 5000);
    let fasttv = by_name("fasttv.service");
    assert_eq!(fasttv.exec.io_class, IoSchedulingClass::Realtime);
    let store = by_name("store.service");
    assert_eq!(store.condition_path_exists.as_deref(), Some("/opt/store"));
    assert_eq!(store.exec.io_class, IoSchedulingClass::Idle);
    let mount = by_name("var.mount");
    assert!(!mount.default_dependencies);
    assert_eq!(mount.exec.service_type, ServiceType::Oneshot);
}

#[test]
fn corpus_graph_is_clean_and_bb_group_matches() {
    let units = parse_corpus();
    let graph = UnitGraph::build(units).expect("unique names");
    let findings = analyze(&graph);
    // The corpus is intentionally clean apart from the §4.2 abuser
    // (which is not a cycle/contradiction, just an early-bird ordering).
    assert!(
        findings
            .iter()
            .all(|f| !matches!(f, Finding::OrderingCycle(_))),
        "unexpected cycle: {findings:?}"
    );
    let group = identify_bb_group(&graph, &[UnitName::new("fasttv.service")]);
    let names: BTreeSet<&str> = group.iter().map(|&i| graph.unit(i).name.as_str()).collect();
    let expected: BTreeSet<&str> = [
        "var.mount",
        "dbus.socket",
        "dbus.service",
        "tuner.service",
        "hdmi.service",
        "demux.service",
        "fasttv.service",
    ]
    .into();
    assert_eq!(names, expected);
}

#[test]
fn corpus_roundtrips_through_the_preparse_cache() {
    let units = parse_corpus();
    let blob = encode_units(&units);
    let back = decode_units(&blob).expect("cache decodes");
    assert_eq!(back, units);
}

#[test]
fn corpus_boots_on_the_simulator() {
    let units = parse_corpus();
    let graph = UnitGraph::build(units).expect("unique names");
    let transaction = Transaction::build(&graph, "tv-boot.target").expect("acyclic");
    let mut machine = Machine::new(MachineConfig::default());
    let device = machine.add_device("emmc", DeviceProfile::tv_emmc());
    let execution_order = transaction.execution_order(&graph);
    let completion = vec![UnitName::new("fasttv.service")];
    let overrides = PlanOverrides::default();
    let plan = BootPlan {
        graph: &graph,
        transaction: &transaction,
        completion: &completion,
        overrides: &overrides,
        init_tasks: &[],
        service_phase_tasks: &[],
        execution_order: &execution_order,
    };
    let cfg = EngineConfig {
        mode: EngineMode::InOrder,
        load: LoadModel {
            io_bytes: 16 * 1024,
            pattern: AccessPattern::Random,
            cpu: SimDuration::from_millis(4),
        },
        costs: ManagerCosts::default(),
        device,
    };
    // Default bodies for every exec (none are in a workload map).
    let record = run_boot(&mut machine, &plan, &WorkloadMap::new(), &cfg);
    assert!(record.completion_time.is_some());
    assert!(record.outcome.failed.is_empty());
    // The Listing-1 ordering held: myapp before socket.service... those
    // are under multi-user.target, not pulled in by tv-boot.target.
    assert!(!record
        .services
        .contains_key(&UnitName::new("myapp.service")));
    // The §4.2 abuser delayed var.mount behind itself.
    let var = record.service("var.mount").ready.expect("mounted");
    let messenger = record.service("messenger.service").ready.expect("ran");
    assert!(messenger <= var, "Before=var.mount was not honoured");
}
