//! Serving acceptance tests: N concurrent clients against one
//! [`FleetService`] must each get a report byte-identical to a
//! one-shot in-process sweep, the shared cache must dedup *across*
//! clients, and the socket server must round-trip the same bytes over
//! the `bb-serve-v1` wire protocol and shut down cleanly.

use std::sync::Arc;
use std::thread;

use booting_booster::fleet::{
    run_sweep, FleetCache, FleetService, PoolConfig, ServiceConfig, ServiceReport, TicketStatus,
};
use booting_booster::serve::{BindAddr, Client, JobKind, Server, SweepArgs};

/// The small grid every test submits: 1 cell × 3 seeds × 2 configs.
fn small_job() -> SweepArgs {
    let mut job = SweepArgs::new(JobKind::Sweep);
    job.services = Some(24);
    job.seeds = 3;
    job
}

/// What `bbsim sweep` would print for the same grid, computed
/// in-process with a fresh cache.
fn reference_report(job: &SweepArgs) -> String {
    let spec = job.sweep_spec().expect("reference spec");
    run_sweep(&spec, &PoolConfig::with_workers(2), &FleetCache::fresh())
        .report
        .to_json()
}

#[test]
fn concurrent_clients_get_byte_identical_reports() {
    let reference = reference_report(&small_job());
    let service = Arc::new(FleetService::start(ServiceConfig::with_workers(3)));

    let run_ticket = |service: &FleetService, client| {
        let item = small_job().to_work_item().expect("work item");
        let ticket = service.submit(client, item).expect("submit");
        match service.wait(ticket).expect("wait") {
            ServiceReport::Sweep(outcome) => outcome.report.to_json(),
            other => panic!("expected a sweep report, got {other:?}"),
        }
    };

    // Client 1 warms the shared cache so the later, fully concurrent
    // clients hit it deterministically.
    assert_eq!(run_ticket(&service, 1), reference);

    let mut handles = Vec::new();
    for client in 2..=4 {
        let service = Arc::clone(&service);
        handles.push(thread::spawn(move || run_ticket(&service, client)));
    }
    for handle in handles {
        let report = handle.join().expect("client thread");
        assert_eq!(
            report, reference,
            "every client's report must match the one-shot sweep byte for byte"
        );
    }

    // All four clients booted the same grid through one shared cache:
    // the first ticket ran its 6 boots for real, the other three were
    // served entirely from the dedup cache — a *cross-client* effect
    // the one-shot pool could never produce.
    let stats = service.stats();
    assert_eq!(stats.clients, 4);
    assert_eq!(stats.tickets_completed, 4);
    assert_eq!(
        stats.cells_deduped, 18,
        "3 of 4 identical tickets (6 boots each) must hit the shared dedup cache"
    );
}

#[test]
fn tickets_poll_through_to_done() {
    let service = FleetService::start(ServiceConfig::with_workers(2));
    let ticket = service
        .submit(1, small_job().to_work_item().expect("work item"))
        .expect("submit");
    // The ticket reaches Done before anyone collects the report...
    loop {
        match service.poll(ticket) {
            Some(TicketStatus::Done) => break,
            Some(_) => thread::sleep(std::time::Duration::from_millis(5)),
            None => panic!("ticket vanished before the report was collected"),
        }
    }
    // ...and collecting it is a one-shot operation.
    let report = service.wait(ticket).expect("wait");
    assert!(matches!(report, ServiceReport::Sweep(_)));
    assert!(
        service.poll(ticket).is_none(),
        "report collected exactly once"
    );
    service.shutdown();
}

#[test]
fn socket_server_round_trips_the_same_bytes() {
    let reference = reference_report(&small_job());
    let server = Server::bind(
        &BindAddr::Tcp("127.0.0.1:0".into()),
        ServiceConfig::with_workers(2),
    )
    .expect("bind");
    let addr = BindAddr::Tcp(server.tcp_addr().expect("tcp addr").to_string());
    let server_thread = thread::spawn(move || server.run().expect("serve loop"));

    // One client warms the shared cache, then two fully concurrent
    // clients replay the same grid over the wire.
    {
        let mut warm = Client::connect(&addr).expect("connect warm");
        let result = warm.run(&small_job()).expect("warm job");
        assert_eq!(result.report, reference);
    }
    let mut handles = Vec::new();
    for _ in 0..2 {
        let addr = addr.clone();
        handles.push(thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.run(&small_job()).expect("run job")
        }));
    }
    for handle in handles {
        let result = handle.join().expect("wire client");
        assert_eq!(result.kind, JobKind::Sweep);
        assert_eq!(result.failures, 0);
        assert_eq!(
            result.report, reference,
            "the report document that crossed the wire must match the in-process sweep"
        );
        assert!(result.summary.contains("UE48H6200-s24"));
        assert!(result.metrics.is_none(), "metrics were not requested");
    }

    // The stats document is live and schema-stamped.
    let mut client = Client::connect(&addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    assert!(stats.starts_with("{\n  \"schema\": \"bb-serve-stats-v1\""));
    assert!(
        stats.contains("\"cells_deduped\": 12"),
        "both replay tickets (6 boots each) dedup against the warm cache: {stats}"
    );

    // A clean shutdown drains the accept loop and joins the workers.
    client.shutdown().expect("shutdown");
    server_thread.join().expect("server thread");
}

#[test]
fn wire_errors_are_reported_not_fatal() {
    let server = Server::bind(
        &BindAddr::Tcp("127.0.0.1:0".into()),
        ServiceConfig::with_workers(1),
    )
    .expect("bind");
    let addr = BindAddr::Tcp(server.tcp_addr().expect("tcp addr").to_string());
    let server_thread = thread::spawn(move || server.run().expect("serve loop"));

    let mut client = Client::connect(&addr).expect("connect");
    // A grid below the 24-service floor is rejected at submit, but the
    // connection (and the server) stays up for the next request.
    let mut bad = small_job();
    bad.services = Some(3);
    let err = client.submit(&bad).expect_err("tiny grid must be rejected");
    assert!(
        err.to_string().contains("24"),
        "error names the floor: {err}"
    );

    let good = small_job();
    let result = client.run(&good).expect("recovered after the error");
    assert_eq!(result.failures, 0);

    client.shutdown().expect("shutdown");
    server_thread.join().expect("server thread");
}
