//! Telemetry is observation, not participation: enabling the span and
//! metric sink on a boot must not move the simulated timeline by a
//! single nanosecond. For arbitrary feature subsets the telemetry-on
//! and telemetry-off boots must produce identical headline times and a
//! bit-identical event trace.

use proptest::prelude::*;

use booting_booster::bb::{BbConfig, BootRequest};
use booting_booster::workloads::tv_scenario;

fn config_from_bits(bits: u8) -> BbConfig {
    BbConfig {
        rcu_booster: bits & 0x01 != 0,
        defer_memory: bits & 0x02 != 0,
        ondemand_modularizer: bits & 0x04 != 0,
        defer_journal: bits & 0x08 != 0,
        deferred_executor: bits & 0x10 != 0,
        preparser: bits & 0x20 != 0,
        bb_group: bits & 0x40 != 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn telemetry_does_not_perturb_the_timeline(bits in any::<u8>()) {
        let cfg = config_from_bits(bits);
        let scenario = tv_scenario();
        let on = BootRequest::new(&scenario)
            .config(cfg)
            .telemetry(true)
            .run()
            .expect("valid scenario");
        let off = BootRequest::new(&scenario)
            .config(cfg)
            .telemetry(false)
            .run()
            .expect("valid scenario");

        prop_assert_eq!(on.report.boot_time(), off.report.boot_time());
        prop_assert_eq!(on.report.quiesce_time, off.report.quiesce_time);
        prop_assert_eq!(on.report.boot.init_done, off.report.boot.init_done);
        prop_assert_eq!(on.report.boot.load_done, off.report.boot.load_done);
        prop_assert_eq!(
            on.report.rcu.syncs_completed,
            off.report.rcu.syncs_completed
        );
        prop_assert_eq!(
            on.machine.trace().events(),
            off.machine.trace().events(),
            "trace diverged under config {:?}",
            cfg
        );
        // And the instrumented boot actually recorded something.
        prop_assert!(!booting_booster::bb::boot_spans(&on.report).is_empty());
    }
}
