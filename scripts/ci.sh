#!/bin/sh
# Local CI gate: everything .github/workflows/ci.yml runs, in order.
# Usage: scripts/ci.sh   (from anywhere inside the repo)
set -eu

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace
run cargo test -q --workspace
run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
echo "==> RUSTDOCFLAGS=-Dwarnings cargo doc --no-deps --workspace"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
run ./scripts/api_surface.sh

# Deterministic chaos smoke: the fault-injection sweep must emit
# byte-identical JSON regardless of worker count.
chaos_tmp="$(mktemp -d)"
trap 'rm -rf "$chaos_tmp"' EXIT
run ./target/release/bbsim chaos --services 24 --seeds 2 --plans 2 \
    --workers 1 --json "$chaos_tmp/w1.json"
run ./target/release/bbsim chaos --services 24 --seeds 2 --plans 2 \
    --workers 3 --json "$chaos_tmp/w3.json"
run cmp "$chaos_tmp/w1.json" "$chaos_tmp/w3.json"

# Corruption-determinism smoke: with the artifact-corruption axis armed
# the sweep must still be byte-identical for any worker count, and the
# damaged slots must actually exercise the recovery chain (grep for the
# artifact-rejected events in the report).
run ./target/release/bbsim chaos --services 24 --seeds 2 --plans 1 \
    --corruption 2 --workers 1 --json "$chaos_tmp/c1.json"
run ./target/release/bbsim chaos --services 24 --seeds 2 --plans 1 \
    --corruption 2 --workers 4 --json "$chaos_tmp/c4.json"
run cmp "$chaos_tmp/c1.json" "$chaos_tmp/c4.json"
run grep -q '"schema": "bb-fleet-chaos-v2"' "$chaos_tmp/c1.json"
run grep -q 'artifact rejected' "$chaos_tmp/c1.json"

# Integrity & recovery gates: the never-panic/always-detected proptests
# over the checksummed artifacts, and the golden corrupt-blob fixtures
# plus the recovered-timeline equivalence property.
run cargo test -q --test proptest_units
run cargo test -q --test recovery_chain

# Snapshot gates: checkpoint-forked sweeps must be byte-identical to
# unforked ones, the snapshot round-trip must stay deterministic
# (proptests), and the goldens must pin the v2 format byte-for-byte
# while the committed v1 image keeps restoring.
run cargo test -q --test proptest_snapshot
run ./target/release/bbsim sweep --services 24 --seeds 3 \
    --workers 2 --json "$chaos_tmp/plain.json"
run ./target/release/bbsim sweep --services 24 --seeds 3 \
    --workers 2 --fork-from kernel-handoff --json "$chaos_tmp/forked.json"
run cmp "$chaos_tmp/plain.json" "$chaos_tmp/forked.json"

# Shared-artifact gate: grid dedup + plan caching (the sweep defaults)
# must emit byte-identical JSON to a --no-dedup sweep on any worker
# count, and the cached/fresh boot equivalence proptests must hold.
run cargo test -q --test proptest_plan_cache
run ./target/release/bbsim sweep --services 24 --seeds 3 \
    --workers 1 --no-dedup --json "$chaos_tmp/nodedup.json"
run cmp "$chaos_tmp/plain.json" "$chaos_tmp/nodedup.json"

# Serve smoke: a live server on a temp socket must hand two concurrent
# clients reports byte-identical to the in-process sweep, publish the
# bb-serve-stats-v1 document, and shut down cleanly on request.
run ./target/release/bbsim sweep --services 24 --seeds 2 \
    --workers 2 --json "$chaos_tmp/serve-ref.json"
echo "==> bbsim serve --socket $chaos_tmp/bb.sock --workers 2 &"
./target/release/bbsim serve --socket "$chaos_tmp/bb.sock" --workers 2 &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -S "$chaos_tmp/bb.sock" ] && break
    sleep 0.1
done
[ -S "$chaos_tmp/bb.sock" ] || { echo "serve socket never appeared"; exit 1; }
./target/release/bbsim submit --socket "$chaos_tmp/bb.sock" \
    --services 24 --seeds 2 --json "$chaos_tmp/serve-a.json" >/dev/null &
client_a=$!
./target/release/bbsim submit --socket "$chaos_tmp/bb.sock" \
    --services 24 --seeds 2 --json "$chaos_tmp/serve-b.json" >/dev/null &
client_b=$!
wait "$client_a" "$client_b"
run cmp "$chaos_tmp/serve-a.json" "$chaos_tmp/serve-ref.json"
run cmp "$chaos_tmp/serve-b.json" "$chaos_tmp/serve-ref.json"
echo "==> bbsim submit --stats | grep bb-serve-stats-v1"
./target/release/bbsim submit --socket "$chaos_tmp/bb.sock" --stats \
    | grep -q '"schema": "bb-serve-stats-v1"'
run ./target/release/bbsim submit --socket "$chaos_tmp/bb.sock" --shutdown
wait "$serve_pid"
run cargo test -q --test serve_service

# Instant-on smoke: suspend must emit a valid bb-snapshot-v1 document.
echo "==> bbsim suspend --services 24 --json | grep schema"
./target/release/bbsim suspend --services 24 --json >"$chaos_tmp/suspend.json"
run grep -q '"schema": "bb-snapshot-v1"' "$chaos_tmp/suspend.json"

# Perf smoke: quick bench runs gated against the committed
# BENCH_hotpath.json and BENCH_sweep.json (loose tolerance; catches
# gross regressions only), then the perf-trajectory report.
run ./scripts/bench_smoke.sh
run ./scripts/perf_report.sh

echo "CI gate passed."
