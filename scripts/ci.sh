#!/bin/sh
# Local CI gate: everything .github/workflows/ci.yml runs, in order.
# Usage: scripts/ci.sh   (from anywhere inside the repo)
set -eu

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace
run cargo test -q --workspace
run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
echo "==> RUSTDOCFLAGS=-Dwarnings cargo doc --no-deps --workspace"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "CI gate passed."
