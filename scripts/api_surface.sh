#!/bin/sh
# Public-API surface gate.
#
# Snapshots every `pub` item declared in the workspace's library crates
# (one line per item: `path: declaration`) and diffs the result against
# the checked-in snapshot, so accidental API changes fail CI while
# intentional ones show up as a reviewable diff.
#
# Usage:
#   scripts/api_surface.sh            # diff against tests/api_surface.txt
#   scripts/api_surface.sh --bless    # regenerate the snapshot
set -eu

cd "$(dirname "$0")/.."

SNAPSHOT=tests/api_surface.txt

# Library sources only: bins, examples, benches, integration tests, and
# vendored crates are not API surface. `pub(crate)`/`pub(super)` items
# are excluded by requiring a space after `pub`. Line numbers are
# dropped and `{`-bodies trimmed so moves and formatting don't read as
# API changes; multi-line signatures contribute their first line, which
# is enough for a drift detector.
surface() {
    grep -rnE '^[[:space:]]*pub (fn|struct|enum|trait|type|const|static|mod|use|union) ' \
        src crates/*/src --include='*.rs' |
        grep -v '^src/bin/' |
        sed -e 's/:[0-9]*:[[:space:]]*/: /' -e 's/[[:space:]]*{[[:space:]]*$//' |
        LC_ALL=C sort
}

if [ "${1:-}" = "--bless" ]; then
    surface >"$SNAPSHOT"
    echo "blessed: $(wc -l <"$SNAPSHOT") public items -> $SNAPSHOT"
    exit 0
fi

current="$(mktemp)"
trap 'rm -f "$current"' EXIT
surface >"$current"

if ! diff -u "$SNAPSHOT" "$current"; then
    echo ""
    echo "public API surface changed. If intentional, regenerate with:"
    echo "    scripts/api_surface.sh --bless"
    exit 1
fi
echo "API surface unchanged ($(wc -l <"$SNAPSHOT") public items)."
