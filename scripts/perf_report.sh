#!/bin/sh
# Performance trajectory report over the committed BENCH_*.json
# baselines. Read-only: prints every committed perf document, its
# headline throughputs, and the speedup each records against its
# parent-commit baseline — the repo's perf history at a glance.
#
# Usage: scripts/perf_report.sh
set -eu

cd "$(dirname "$0")/.."

field() {
    sed -n "s/^.*\"$1\": *\([0-9.]*\).*$/\1/p" "$2" | head -n 1
}
strfield() {
    sed -n "s/^.*\"$1\": *\"\([^\"]*\)\".*$/\1/p" "$2" | head -n 1
}

# row LABEL VALUE UNIT [SPEEDUP]
row() {
    if [ -n "${4:-}" ]; then
        printf '    %-28s %14s %-10s %sx vs parent\n' "$1" "$2" "$3" "$4"
    else
        printf '    %-28s %14s %-10s\n' "$1" "$2" "$3"
    fi
}

found=0
for f in BENCH_*.json; do
    [ -f "$f" ] || continue
    found=1
    schema="$(strfield schema "$f")"
    echo "$f ($schema)"
    case "$schema" in
    bb-hotpath-v1)
        row "event storm" "$(field events_per_sec "$f")" events/s
        row "full BB boot" "$(field full_boots_per_sec "$f")" boots/s \
            "$(field speedup_full "$f")"
        row "hot-path boot (resume)" "$(field hotpath_boots_per_sec "$f")" boots/s \
            "$(field speedup_hotpath "$f")"
        ;;
    bb-snapshot-v1)
        row "full boot" "$(field full_boots_per_sec "$f")" boots/s
        row "checkpoint-forked boot" "$(field forked_boots_per_sec "$f")" boots/s \
            "$(field speedup "$f")"
        ;;
    bb-sweep-v1)
        row "sweep (fork+cache+dedup)" "$(field cells_per_sec "$f")" cells/s \
            "$(field speedup "$f")"
        row "sweep (plan cache only)" "$(field cells_per_sec_no_dedup "$f")" cells/s \
            "$(field speedup_no_dedup "$f")"
        row "kernel sims / 60 boots" "$(field kernel_sims "$f")" sims
        row "boots deduplicated" "$(field cells_deduped "$f")" boots
        row "plans compiled / hits" \
            "$(field plans_compiled "$f")/$(field plan_cache_hits "$f")" plans
        ;;
    *)
        echo "    (unknown schema — fields not summarized)"
        ;;
    esac
    # Integrity-chain counters, printed whenever a document carries
    # them (chaos sweeps with the corruption axis armed).
    rec="$(field recoveries "$f")"
    rej="$(field artifacts_rejected "$f")"
    if [ -n "$rec" ] || [ -n "$rej" ]; then
        row "artifact recoveries/rejected" "${rec:-0}/${rej:-0}" events
    fi
done

[ "$found" = 1 ] || {
    echo "perf_report: no BENCH_*.json committed at the repo root" >&2
    exit 1
}
