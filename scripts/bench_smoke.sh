#!/bin/sh
# Perf smoke gate over the committed bench baselines.
#
# Runs the hotpath and sweep criterion benches with a reduced iteration
# count (quick, not publication-grade), checks that each regenerated
# BENCH_*.json carries its schema and every field the committed baseline
# promises, and fails if a freshly measured throughput regressed more
# than the tolerance against the committed numbers. CI hosts are noisy
# and shared, so the tolerance is deliberately loose: this gate catches
# "someone made the engine 2x slower", not single-digit drift.
# Deterministic counters (storm events, kernel sims, dedup and
# plan-cache counts) are gated exactly — they move only when the
# simulation or the sharing layer itself changes.
#
# Usage:
#   scripts/bench_smoke.sh            # 20% tolerance, 50 iters
#   BB_BENCH_ITERS=200 BB_BENCH_TOLERANCE=10 scripts/bench_smoke.sh
set -eu

cd "$(dirname "$0")/.."

TOLERANCE="${BB_BENCH_TOLERANCE:-20}"
ITERS="${BB_BENCH_ITERS:-50}"

# Field extractor for the flat one-value-per-key JSON our emitters
# write (no jq dependency).
field() {
    sed -n "s/^.*\"$1\": *\([0-9.]*\).*$/\1/p" "$2" | head -n 1
}

# check_schema FILE SCHEMA FIELD...
check_schema() {
    f="$1" schema="$2"
    shift 2
    grep -q "\"schema\": \"$schema\"" "$f" || {
        echo "bench_smoke: $f lacks the $schema schema stamp" >&2
        exit 1
    }
    for key in "$@"; do
        v="$(field "$key" "$f")"
        [ -n "$v" ] || {
            echo "bench_smoke: $f is missing field \"$key\"" >&2
            exit 1
        }
    done
}

# fresh >= committed * (100 - TOLERANCE)%, in awk (sh has no floats).
gate() {
    name="$1" fresh="$2" committed="$3"
    awk -v f="$fresh" -v c="$committed" -v tol="$TOLERANCE" -v n="$name" 'BEGIN {
        floor = c * (100 - tol) / 100
        if (f < floor) {
            printf "bench_smoke: %s regressed: %.1f vs committed %.1f (floor %.1f, tolerance %d%%)\n",
                n, f, c, floor, tol
            exit 1
        }
        printf "    %s: %.1f vs committed %.1f (floor %.1f) ok\n", n, f, c, floor
    }' || exit 1
}

# exact NAME FRESH COMMITTED HINT — deterministic counters must not move.
exact() {
    name="$1" fresh="$2" committed="$3" hint="$4"
    [ "$fresh" = "$committed" ] || {
        echo "bench_smoke: $name changed ($committed -> $fresh); $hint" >&2
        exit 1
    }
}

HOTPATH_FIELDS="storm_events events_per_sec full_boots_per_sec \
    hotpath_boots_per_sec baseline_events_per_sec \
    baseline_full_boots_per_sec baseline_hotpath_boots_per_sec \
    speedup_full speedup_hotpath"
SWEEP_FIELDS="cells boots cells_per_sec cells_per_sec_no_dedup \
    baseline_plain_cells_per_sec baseline_forked_cells_per_sec \
    speedup speedup_no_dedup kernel_sims cells_deduped \
    plans_compiled plan_cache_hits"

for b in hotpath sweep; do
    [ -f "BENCH_$b.json" ] || {
        echo "bench_smoke: BENCH_$b.json missing — run 'cargo bench -p bb-bench --bench $b' and commit it" >&2
        exit 1
    }
done

# ---------------------------------------------------------------- hotpath
BASELINE=BENCH_hotpath.json
echo "==> validating committed $BASELINE"
# shellcheck disable=SC2086
check_schema "$BASELINE" bb-hotpath-v1 $HOTPATH_FIELDS

committed_full="$(field full_boots_per_sec "$BASELINE")"
committed_hot="$(field hotpath_boots_per_sec "$BASELINE")"
committed_events="$(field storm_events "$BASELINE")"

echo "==> running hotpath bench ($ITERS iters)"
BB_BENCH_ITERS="$ITERS" cargo bench -p bb-bench --bench hotpath

echo "==> validating regenerated $BASELINE"
# shellcheck disable=SC2086
check_schema "$BASELINE" bb-hotpath-v1 $HOTPATH_FIELDS

fresh_full="$(field full_boots_per_sec "$BASELINE")"
fresh_hot="$(field hotpath_boots_per_sec "$BASELINE")"
fresh_events="$(field storm_events "$BASELINE")"

# The bench rewrites BENCH_hotpath.json in place; restore the committed
# copy so a smoke run never dirties the tree.
git checkout -- "$BASELINE" 2>/dev/null || true

# The storm is deterministic: its event count must not move at all.
exact storm_events "$fresh_events" "$committed_events" \
    "the simulation itself changed, re-bless BENCH_hotpath.json deliberately"

echo "==> hotpath regression gate (${TOLERANCE}% tolerance)"
gate full_boots_per_sec "$fresh_full" "$committed_full"
gate hotpath_boots_per_sec "$fresh_hot" "$committed_hot"

# ------------------------------------------------------------------ sweep
BASELINE=BENCH_sweep.json
echo "==> validating committed $BASELINE"
# shellcheck disable=SC2086
check_schema "$BASELINE" bb-sweep-v1 $SWEEP_FIELDS

committed_cells="$(field cells_per_sec "$BASELINE")"
committed_nodedup="$(field cells_per_sec_no_dedup "$BASELINE")"
committed_sims="$(field kernel_sims "$BASELINE")"
committed_deduped="$(field cells_deduped "$BASELINE")"
committed_plans="$(field plans_compiled "$BASELINE")"
committed_hits="$(field plan_cache_hits "$BASELINE")"

echo "==> running sweep bench ($ITERS iters)"
BB_BENCH_ITERS="$ITERS" cargo bench -p bb-bench --bench sweep

echo "==> validating regenerated $BASELINE"
# shellcheck disable=SC2086
check_schema "$BASELINE" bb-sweep-v1 $SWEEP_FIELDS

fresh_cells="$(field cells_per_sec "$BASELINE")"
fresh_nodedup="$(field cells_per_sec_no_dedup "$BASELINE")"
fresh_sims="$(field kernel_sims "$BASELINE")"
fresh_deduped="$(field cells_deduped "$BASELINE")"
fresh_plans="$(field plans_compiled "$BASELINE")"
fresh_hits="$(field plan_cache_hits "$BASELINE")"

git checkout -- "$BASELINE" 2>/dev/null || true

# The sharing layer is deterministic on a 1-worker pool: the work
# counters must not move at all.
blesshint="the sharing layer changed, re-bless BENCH_sweep.json deliberately"
exact kernel_sims "$fresh_sims" "$committed_sims" "$blesshint"
exact cells_deduped "$fresh_deduped" "$committed_deduped" "$blesshint"
exact plans_compiled "$fresh_plans" "$committed_plans" "$blesshint"
exact plan_cache_hits "$fresh_hits" "$committed_hits" "$blesshint"

echo "==> sweep regression gate (${TOLERANCE}% tolerance)"
gate cells_per_sec "$fresh_cells" "$committed_cells"
gate cells_per_sec_no_dedup "$fresh_nodedup" "$committed_nodedup"

echo "bench smoke passed."
