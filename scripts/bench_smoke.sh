#!/bin/sh
# Hot-path perf smoke gate.
#
# Runs the hotpath criterion bench with a reduced iteration count
# (quick, not publication-grade), checks that the regenerated
# BENCH_hotpath.json carries the bb-hotpath-v1 schema and every field
# the committed baseline promises, and fails if the freshly measured
# boots/sec regressed more than the tolerance against the committed
# numbers. CI hosts are noisy and shared, so the tolerance is
# deliberately loose: this gate catches "someone made the scheduler 2x
# slower", not single-digit drift.
#
# Usage:
#   scripts/bench_smoke.sh            # 20% tolerance, 50 iters
#   BB_BENCH_ITERS=200 BB_BENCH_TOLERANCE=10 scripts/bench_smoke.sh
set -eu

cd "$(dirname "$0")/.."

BASELINE=BENCH_hotpath.json
TOLERANCE="${BB_BENCH_TOLERANCE:-20}"
ITERS="${BB_BENCH_ITERS:-50}"

[ -f "$BASELINE" ] || {
    echo "bench_smoke: $BASELINE missing — run 'cargo bench --bench hotpath' and commit it" >&2
    exit 1
}

# Field extractor for the flat one-value-per-key JSON our emitters
# write (no jq dependency).
field() {
    sed -n "s/^.*\"$1\": *\([0-9.]*\).*$/\1/p" "$2" | head -n 1
}

check_schema() {
    grep -q '"schema": "bb-hotpath-v1"' "$1" || {
        echo "bench_smoke: $1 lacks the bb-hotpath-v1 schema stamp" >&2
        exit 1
    }
    for key in storm_events events_per_sec full_boots_per_sec \
        hotpath_boots_per_sec baseline_events_per_sec \
        baseline_full_boots_per_sec baseline_hotpath_boots_per_sec \
        speedup_full speedup_hotpath; do
        v="$(field "$key" "$1")"
        [ -n "$v" ] || {
            echo "bench_smoke: $1 is missing field \"$key\"" >&2
            exit 1
        }
    done
}

echo "==> validating committed $BASELINE"
check_schema "$BASELINE"

committed_full="$(field full_boots_per_sec "$BASELINE")"
committed_hot="$(field hotpath_boots_per_sec "$BASELINE")"
committed_events="$(field storm_events "$BASELINE")"

echo "==> running hotpath bench ($ITERS iters)"
BB_BENCH_ITERS="$ITERS" cargo bench -p bb-bench --bench hotpath

echo "==> validating regenerated $BASELINE"
check_schema "$BASELINE"

fresh_full="$(field full_boots_per_sec "$BASELINE")"
fresh_hot="$(field hotpath_boots_per_sec "$BASELINE")"
fresh_events="$(field storm_events "$BASELINE")"

# The bench rewrites BENCH_hotpath.json in place; restore the committed
# copy so a smoke run never dirties the tree.
git checkout -- "$BASELINE" 2>/dev/null || true

# The storm is deterministic: its event count must not move at all.
[ "$fresh_events" = "$committed_events" ] || {
    echo "bench_smoke: storm event count changed ($committed_events -> $fresh_events);" \
        "the simulation itself changed, re-bless BENCH_hotpath.json deliberately" >&2
    exit 1
}

# fresh >= committed * (100 - TOLERANCE)%, in awk (sh has no floats).
gate() {
    name="$1" fresh="$2" committed="$3"
    awk -v f="$fresh" -v c="$committed" -v tol="$TOLERANCE" -v n="$name" 'BEGIN {
        floor = c * (100 - tol) / 100
        if (f < floor) {
            printf "bench_smoke: %s regressed: %.1f boots/s vs committed %.1f (floor %.1f, tolerance %d%%)\n",
                n, f, c, floor, tol
            exit 1
        }
        printf "    %s: %.1f vs committed %.1f (floor %.1f) ok\n", n, f, c, floor
    }' || exit 1
}

echo "==> regression gate (${TOLERANCE}% tolerance)"
gate full_boots_per_sec "$fresh_full" "$committed_full"
gate hotpath_boots_per_sec "$fresh_hot" "$committed_hot"

echo "bench smoke passed."
