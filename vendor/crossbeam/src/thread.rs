//! Scoped threads over `std::thread::scope`, with crossbeam's API:
//! the closure receives a [`Scope`] handle, spawned closures receive
//! the scope again (so they can spawn), and panics in any spawned
//! thread surface as an `Err` from [`scope`] instead of unwinding.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Payload of a panicked scope.
pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// Handle for spawning threads tied to the enclosing [`scope`] call.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Join handle for a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread; the closure receives the scope so it can spawn
    /// further threads (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread and returns its result, or the panic
    /// payload if it panicked.
    pub fn join(self) -> ScopeResult<T> {
        self.inner.join()
    }
}

/// Runs `f` with a thread scope. All spawned threads are joined before
/// this returns; if any panicked (or `f` itself did), the first panic
/// payload is returned as `Err`.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}
