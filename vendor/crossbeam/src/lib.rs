//! Offline stand-in for `crossbeam`.
//!
//! Implements the three facilities this workspace uses, on std
//! primitives:
//!
//! * [`scope`] — scoped threads (over `std::thread::scope`), with
//!   crossbeam's `Result`-returning panic containment;
//! * [`channel`] — unbounded MPMC channels (mutex + condvar queue);
//! * [`deque`] — `Injector`/`Worker`/`Stealer` work-distribution
//!   queues with crossbeam's `Steal` protocol.
//!
//! The implementations favour simplicity over raw throughput: the
//! consumers here are boot *simulations* that run for milliseconds per
//! job, so lock-based queues are nowhere near the bottleneck (the
//! fleet pool measures queue wait explicitly; see `bb-fleet`).

pub mod thread;

pub use thread::{scope, Scope, ScopedJoinHandle};

pub mod channel {
    //! Unbounded MPMC channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Inner<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Sending half; clonable (multi-producer).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clonable (multi-consumer).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error: all receivers dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error: channel empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Nonblocking receive outcomes.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if q.receivers == 0 {
                return Err(SendError(value));
            }
            q.items.push_back(value);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            q.senders -= 1;
            let none_left = q.senders == 0;
            drop(q);
            if none_left {
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues, blocking while the channel is empty and senders
        /// remain.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.items.pop_front() {
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self
                    .inner
                    .ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match q.items.pop_front() {
                Some(v) => Ok(v),
                None if q.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator draining the channel until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers -= 1;
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

pub mod deque {
    //! Work-distribution queues: a shared [`Injector`] plus per-worker
    //! [`Worker`] deques whose [`Stealer`] handles let idle workers
    //! take work from busy ones.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Global FIFO job queue shared by all workers.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// Queue observed empty.
        Empty,
        /// One task taken.
        Success(T),
        /// Transient conflict; try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(task);
        }

        /// Takes one task from the front.
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Moves a batch of tasks into `dest`'s local deque and returns
        /// one of them.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
            let first = match q.pop_front() {
                Some(t) => t,
                None => return Steal::Empty,
            };
            // Take up to half of what remains (crossbeam's heuristic),
            // capped so one worker cannot hoard the queue.
            let extra = (q.len() / 2).min(16);
            if extra > 0 {
                let mut local = dest.queue.lock().unwrap_or_else(PoisonError::into_inner);
                for _ in 0..extra {
                    match q.pop_front() {
                        Some(t) => local.push_back(t),
                        None => break,
                    }
                }
            }
            Steal::Success(first)
        }

        /// Current queue depth.
        pub fn len(&self) -> usize {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    /// A worker's local deque.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a FIFO worker queue.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the local queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(task);
        }

        /// Pops the next local task.
        pub fn pop(&self) -> Option<T> {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }

        /// Whether the local queue is empty.
        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
        }

        /// A handle other workers can steal through.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// Steals from another worker's deque (from the opposite end of the
    /// owner, in spirit; this implementation is a plain FIFO).
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Attempts to take one task.
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_back()
            {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn scope_reports_panics_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn channel_is_mpmc_and_disconnects() {
        let (tx, rx) = channel::unbounded::<usize>();
        let tx2 = tx.clone();
        scope(|s| {
            s.spawn(move |_| {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            s.spawn(move |_| {
                for i in 100..200 {
                    tx2.send(i).unwrap();
                }
            });
        })
        .unwrap();
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..200).collect::<Vec<_>>());
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn deque_distributes_all_tasks() {
        let injector = deque::Injector::new();
        for i in 0..500 {
            injector.push(i);
        }
        let done = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..3 {
                let injector = &injector;
                let done = &done;
                s.spawn(move |_| {
                    let local = deque::Worker::new_fifo();
                    loop {
                        let task = local
                            .pop()
                            .or_else(|| injector.steal_batch_and_pop(&local).success());
                        match task {
                            Some(_) => {
                                done.fetch_add(1, Ordering::SeqCst);
                            }
                            None => break,
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn stealer_takes_from_worker() {
        let w = deque::Worker::new_fifo();
        w.push(1);
        w.push(2);
        let s = w.stealer();
        assert_eq!(s.steal().success(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert!(s.steal().is_empty());
    }
}
