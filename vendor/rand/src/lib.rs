//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates-io mirror, so the workspace
//! vendors the *exact API subset* it consumes: `SmallRng`,
//! `SeedableRng::{seed_from_u64, from_seed}`, `Rng::{gen_range,
//! gen_bool, gen}`, and uniform sampling over integer ranges. The
//! generator is xoshiro256++ seeded through SplitMix64 — the same
//! family rand 0.8's 64-bit `SmallRng` uses — so quality is adequate
//! for workload jitter, and everything is deterministic by
//! construction (no entropy source exists here; `from_entropy` is
//! deliberately absent).
//!
//! The sampling arithmetic is *not* bit-compatible with upstream rand;
//! calibration pins in `tests/calibration_pin.rs` and the tables in
//! EXPERIMENTS.md are pinned against this implementation.

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64`, expanding it with SplitMix64 (the
    /// expansion rand documents for this method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (empty ranges panic).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniformly random value of a small standard type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = uniform_u128(rng, span);
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = uniform_u128(rng, span);
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire); span
/// never exceeds `u64::MAX + 1` for the implemented integer types.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span > u64::MAX as u128 {
        return rng.next_u64() as u128; // span == 2^64: the full word.
    }
    let span64 = span as u64;
    // One widening multiply is bias-free enough for workload jitter
    // (bias < 2^-64 per draw), and keeps the sampler branch-free.
    ((rng.next_u64() as u128) * (span64 as u128)) >> 64
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, deterministic; the stand-in for
    /// rand 0.8's 64-bit `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..=1_000_000), b.gen_range(0u64..=1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(13..=36);
            assert!((13..=36).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
            let s = rng.gen_range(-20i8..=19);
            assert!((-20..=19).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.27..0.33).contains(&rate), "rate {rate}");
    }

    #[test]
    fn full_range_and_extremes_work() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _: u64 = rng.gen_range(0..u64::MAX);
        assert_eq!(rng.gen_range(5u32..6), 5);
        assert_eq!(rng.gen_range(7i64..=7), 7);
    }
}
