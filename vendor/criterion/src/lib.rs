//! Offline stand-in for [criterion.rs](https://github.com/bheisler/criterion.rs).
//!
//! The container build has no registry access, so this crate provides
//! just enough of criterion's surface for the workspace benches to
//! compile and produce readable wall-clock numbers. There is no
//! statistical analysis, outlier rejection, or HTML report — each
//! benchmark body is warmed up once and then timed over a fixed number
//! of iterations, and the mean is printed to stdout.

use std::fmt;
use std::time::{Duration, Instant};

/// Number of timed iterations per benchmark (after one warm-up batch).
/// Override with the `BB_BENCH_ITERS` environment variable.
fn timed_iters(sample_size: usize) -> u64 {
    std::env::var("BB_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(sample_size as u64)
}

/// Top-level benchmark context, handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Throughput annotation; printed alongside the mean time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Records a throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no external input.
    pub fn bench_function<ID: fmt::Display, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.to_string(), |b| f(b));
        self
    }

    /// Runs a benchmark with a borrowed input value.
    pub fn bench_with_input<ID: fmt::Display, I: ?Sized, F>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}

    fn run_one(&self, id: &str, mut body: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters: timed_iters(self.sample_size),
            elapsed: Duration::ZERO,
        };
        body(&mut bencher);
        let mean = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iters as u32
        };
        let mut line = format!(
            "{}/{id}: mean {mean:?} over {} iters",
            self.name, bencher.iters
        );
        if let Some(tp) = self.throughput {
            let per_sec = |count: u64| {
                let secs = mean.as_secs_f64();
                if secs > 0.0 {
                    count as f64 / secs
                } else {
                    f64::INFINITY
                }
            };
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!(" ({:.0} elem/s)", per_sec(n)));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(" ({:.0} B/s)", per_sec(n)));
                }
            }
        }
        println!("{line}");
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations,
    /// after one untimed warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export so `criterion::black_box` callers work; benches here use
/// `std::hint::black_box` directly but upstream exposes its own.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function like upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // warm-up + 3 timed iterations
        assert_eq!(calls, 4);
        group.finish();
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(1);
        group.throughput(Throughput::Elements(7));
        group.bench_with_input(BenchmarkId::new("double", 21), &21u32, |b, &n| {
            b.iter(|| assert_eq!(n * 2, 42))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
