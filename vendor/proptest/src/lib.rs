//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's property tests
//! use: the [`proptest!`] macro with `#![proptest_config]`, strategies
//! over integer ranges / tuples / `Just` / unions (`prop_oneof!`) /
//! vectors / options / simple `[class]{m,n}` regex strings,
//! `any::<T>()` for primitives and [`sample::Index`], `prop_map` /
//! `prop_flat_map`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the generated values and
//!   the case number; cases are deterministic (seeded from the test
//!   name and case index), so failures reproduce exactly on rerun.
//! * **No persistence.** `*.proptest-regressions` files are ignored.
//! * The default case count is 64 (override with `PROPTEST_CASES`).

pub mod strategy;

pub mod test_runner {
    //! Deterministic case runner.

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-case random source.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Seeded from the test name and case index, so every case is
        /// reproducible without any persisted state.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(SmallRng::seed_from_u64(
                h ^ ((case as u64) << 32) ^ case as u64,
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// A failed property (from `prop_assert!`).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Case outcome delivered to [`run`]: the rendered inputs plus the
    /// body result (`Err` string for `prop_assert!`, panic payload for
    /// plain panics).
    pub type CaseOutcome = (
        String,
        Result<Result<(), TestCaseError>, Box<dyn std::any::Any + Send + 'static>>,
    );

    /// Drives `body` for `config.cases` deterministic cases, panicking
    /// with full context on the first failure.
    pub fn run(
        config: &ProptestConfig,
        test_name: &str,
        mut body: impl FnMut(&mut TestRng) -> CaseOutcome,
    ) {
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(test_name, case);
            let (inputs, outcome) = body(&mut rng);
            let failure = match outcome {
                Ok(Ok(())) => continue,
                Ok(Err(e)) => e.to_string(),
                Err(payload) => payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_owned()),
            };
            panic!(
                "proptest: {test_name} failed at case {case}/{}\n  inputs: {inputs}\n  failure: {failure}\n  (cases are deterministic; rerun reproduces this)",
                config.cases
            );
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Length bounds for [`vec()`]. Built from `usize`, `Range<usize>`,
    /// or `RangeInclusive<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    use crate::arbitrary::{any_fn, Arbitrary, FnStrategy};
    use rand::Rng;

    /// An index into a collection of not-yet-known size: holds raw
    /// randomness, scaled by [`Index::index`] at use.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Maps onto `0..size`.
        ///
        /// # Panics
        ///
        /// Panics when `size` is zero, as upstream does.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (((self.0 as u128) * (size as u128)) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        type Strategy = FnStrategy<Index>;
        fn arbitrary() -> Self::Strategy {
            any_fn(|rng| Index(rng.gen_range(0..u64::MAX)))
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Option<S::Value>`, `Some` three times out of four.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy { element }
    }

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.element.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// That strategy's type.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// A strategy backed by a plain function.
    #[derive(Debug, Clone, Copy)]
    pub struct FnStrategy<T> {
        f: fn(&mut TestRng) -> T,
    }

    /// Wraps a generation function as a strategy.
    pub fn any_fn<T: std::fmt::Debug>(f: fn(&mut TestRng) -> T) -> FnStrategy<T> {
        FnStrategy { f }
    }

    impl<T: std::fmt::Debug> Strategy for FnStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = FnStrategy<$t>;
                fn arbitrary() -> Self::Strategy {
                    any_fn(|rng| {
                        let v: u64 = rng.gen_range(0..u64::MAX);
                        v as $t
                    })
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        type Strategy = FnStrategy<bool>;
        fn arbitrary() -> Self::Strategy {
            any_fn(|rng| rng.gen_bool(0.5))
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Module-path aliases (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// The property-test macro. Parses an optional
/// `#![proptest_config(...)]` header followed by `fn name(arg in
/// strategy, ...) { body }` items (attributes, including `#[test]` and
/// doc comments, are forwarded).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] items.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run(&config, stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}  "),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::core::result::Result::Ok(())
                        }),
                    );
                    (inputs, outcome)
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate() {
        let s = (0usize..10, -5i8..=5).prop_map(|(a, b)| (a, b));
        let mut rng = crate::test_runner::TestRng::for_case("t", 0);
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 10 && (-5..=5).contains(&b));
        }
    }

    #[test]
    fn regex_class_strategy_matches_shape() {
        let s = "[a-z/:-]{1,24}";
        let mut rng = crate::test_runner::TestRng::for_case("r", 1);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((1..=24).contains(&v.len()), "{v:?}");
            assert!(v
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '/' || c == ':' || c == '-'));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = crate::test_runner::TestRng::for_case("o", 2);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_and_option_strategies() {
        let s = prop::collection::vec(prop::option::of(0u32..5), 2..6);
        let mut rng = crate::test_runner::TestRng::for_case("v", 3);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn index_scales_without_overflow() {
        let strat = any::<prop::sample::Index>();
        let mut rng = crate::test_runner::TestRng::for_case("i", 4);
        for _ in 0..100 {
            let idx = strat.generate(&mut rng);
            assert!(idx.index(7) < 7);
            assert!(idx.index(1) == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn the_macro_itself_works(a in 0u64..100, b in prop::collection::vec(0u8..10, 0..4)) {
            prop_assert!(a < 100);
            prop_assert_eq!(b.len(), b.len());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        crate::test_runner::run(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            ("x = 1".to_owned(), Ok(Err(TestCaseError::fail("nope"))))
        });
    }

    #[test]
    fn flat_map_composes() {
        let s = (2usize..5).prop_flat_map(|n| prop::collection::vec(Just(n), n..n + 1));
        let mut rng = crate::test_runner::TestRng::for_case("f", 5);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert_eq!(v.len(), v[0]);
        }
    }
}
