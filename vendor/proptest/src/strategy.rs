//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree or shrinking: a
/// strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!` arms, which
    /// have distinct concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds from already-boxed arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.gen_range(0..self.arms.len());
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

// ---------------------------------------------------------------------
// Regex-shaped string strategies
// ---------------------------------------------------------------------

/// `&str` patterns act as string strategies, as in upstream proptest.
/// Supported shape: a sequence of atoms, each a literal character or a
/// character class `[...]` (with `a-z` ranges; a trailing `-` is
/// literal), optionally followed by `{n}`, `{m,n}`, `?`, `*`, or `+`
/// (`*`/`+` cap at 8 repetitions).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"));
        let mut out = String::new();
        for atom in &atoms {
            let reps = rng.gen_range(atom.min..=atom.max);
            for _ in 0..reps {
                let c = atom.chars[rng.gen_range(0..atom.chars.len())];
                out.push(c);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Result<Vec<Atom>, String> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match it.next() {
                        None => return Err("unterminated character class".into()),
                        Some(']') => break,
                        Some('-') => {
                            // Range if bounded on both sides, else literal.
                            match (prev, it.peek()) {
                                (Some(lo), Some(&hi)) if hi != ']' => {
                                    it.next();
                                    if lo > hi {
                                        return Err(format!("bad range {lo}-{hi}"));
                                    }
                                    set.extend((lo..=hi).skip(1));
                                    prev = None;
                                }
                                _ => {
                                    set.push('-');
                                    prev = Some('-');
                                }
                            }
                        }
                        Some('\\') => {
                            let esc = it.next().ok_or("dangling escape")?;
                            set.push(esc);
                            prev = Some(esc);
                        }
                        Some(ch) => {
                            set.push(ch);
                            prev = Some(ch);
                        }
                    }
                }
                if set.is_empty() {
                    return Err("empty character class".into());
                }
                set
            }
            '\\' => vec![it.next().ok_or("dangling escape")?],
            '{' | '}' | '?' | '*' | '+' => {
                return Err(format!("quantifier {c:?} without preceding atom"))
            }
            other => vec![other],
        };
        let (min, max) = match it.peek() {
            Some('{') => {
                it.next();
                let mut spec = String::new();
                for q in it.by_ref() {
                    if q == '}' {
                        break;
                    }
                    spec.push(q);
                }
                match spec.split_once(',') {
                    Some((m, n)) => {
                        let m: usize = m.trim().parse().map_err(|_| "bad {m,n}")?;
                        let n: usize = n.trim().parse().map_err(|_| "bad {m,n}")?;
                        if m > n {
                            return Err(format!("bad quantifier {{{spec}}}"));
                        }
                        (m, n)
                    }
                    None => {
                        let n: usize = spec.trim().parse().map_err(|_| "bad {n}")?;
                        (n, n)
                    }
                }
            }
            Some('?') => {
                it.next();
                (0, 1)
            }
            Some('*') => {
                it.next();
                (0, 8)
            }
            Some('+') => {
                it.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        atoms.push(Atom { chars, min, max });
    }
    Ok(atoms)
}
