//! Offline stand-in for the `smallvec` crate (DESIGN.md §4): a vector
//! that stores up to `N` elements inline and spills to the heap only
//! beyond that, so short lists (flag waiter lists, listener lists) stay
//! allocation-free on the simulator hot path.
//!
//! API differences from the real crate, forced by stable Rust: the type
//! is `SmallVec<T, N>` with a const-generic capacity rather than
//! `SmallVec<[T; N]>` (the `Array`-trait encoding needs unstable
//! features to reproduce), inline slots are `Option<T>` (safe code
//! only, no `MaybeUninit`), and `retain` passes `&T` like `Vec::retain`
//! instead of `&mut T`. Only the subset the workspace uses is
//! implemented.

/// A vector with inline storage for the first `N` elements.
///
/// Invariant: before the first spill, elements live in
/// `inline[..len]` (each `Some`) and `spill` is empty; after spilling,
/// all elements live in `spill`, every inline slot is `None`, and the
/// collection never moves back inline (mirrors the real crate).
pub struct SmallVec<T, const N: usize> {
    inline: [Option<T>; N],
    len: usize,
    spill: Vec<T>,
    spilled: bool,
}

impl<T, const N: usize> SmallVec<T, N> {
    /// An empty small-vector using inline storage.
    pub fn new() -> Self {
        SmallVec {
            inline: std::array::from_fn(|_| None),
            len: 0,
            spill: Vec::new(),
            spilled: false,
        }
    }

    /// An empty small-vector that can hold `cap` elements without
    /// further allocation (spills up front when `cap > N`).
    pub fn with_capacity(cap: usize) -> Self {
        let mut v = Self::new();
        if cap > N {
            v.spill = Vec::with_capacity(cap);
            v.spilled = true;
        }
        v
    }

    pub fn len(&self) -> usize {
        if self.spilled {
            self.spill.len()
        } else {
            self.len
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the elements have moved to the heap.
    pub fn spilled(&self) -> bool {
        self.spilled
    }

    pub fn push(&mut self, value: T) {
        if !self.spilled {
            if self.len < N {
                self.inline[self.len] = Some(value);
                self.len += 1;
                return;
            }
            // Spill: move the inline elements to the heap.
            self.spill.reserve(N + 1);
            for slot in &mut self.inline {
                self.spill.push(slot.take().expect("full inline slot"));
            }
            self.len = 0;
            self.spilled = true;
        }
        self.spill.push(value);
    }

    pub fn pop(&mut self) -> Option<T> {
        if self.spilled {
            self.spill.pop()
        } else if self.len > 0 {
            self.len -= 1;
            self.inline[self.len].take()
        } else {
            None
        }
    }

    pub fn clear(&mut self) {
        if self.spilled {
            self.spill.clear();
        } else {
            for slot in &mut self.inline[..self.len] {
                *slot = None;
            }
            self.len = 0;
        }
    }

    /// Keeps only the elements for which `keep` returns true,
    /// preserving order. Passes `&T` (like `Vec::retain`), not `&mut T`
    /// as the real crate does.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        if self.spilled {
            self.spill.retain(|x| keep(x));
            return;
        }
        let mut kept = 0;
        for i in 0..self.len {
            let x = self.inline[i].take().expect("full inline slot");
            if keep(&x) {
                self.inline[kept] = Some(x);
                kept += 1;
            }
        }
        self.len = kept;
    }

    pub fn iter(&self) -> Iter<'_, T> {
        let (inline, spill) = if self.spilled {
            (&self.inline[..0], &self.spill[..])
        } else {
            (&self.inline[..self.len], &[][..])
        };
        Iter {
            inline: inline.iter(),
            spill: spill.iter(),
        }
    }

    pub fn as_slice_vec(&self) -> Vec<&T> {
        self.iter().collect()
    }
}

impl<T, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone, const N: usize> Clone for SmallVec<T, N> {
    fn clone(&self) -> Self {
        let mut v = Self::new();
        for x in self.iter() {
            v.push(x.clone());
        }
        v
    }
}

impl<T: std::fmt::Debug, const N: usize> std::fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for x in iter {
            v.push(x);
        }
        v
    }
}

impl<T, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Borrowing iterator over a [`SmallVec`].
pub struct Iter<'a, T> {
    inline: std::slice::Iter<'a, Option<T>>,
    spill: std::slice::Iter<'a, T>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        match self.inline.next() {
            Some(slot) => Some(slot.as_ref().expect("full inline slot")),
            None => self.spill.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.inline.len() + self.spill.len();
        (n, Some(n))
    }
}

impl<'a, T> ExactSizeIterator for Iter<'a, T> {}

impl<'a, T, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Owning iterator over a [`SmallVec`]. Inline elements are yielded
/// without touching the heap.
pub struct IntoIter<T, const N: usize> {
    inline: [Option<T>; N],
    pos: usize,
    len: usize,
    spill: std::vec::IntoIter<T>,
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.pos < self.len {
            let x = self.inline[self.pos].take();
            self.pos += 1;
            debug_assert!(x.is_some(), "full inline slot");
            x
        } else {
            self.spill.next()
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.len - self.pos) + self.spill.len();
        (n, Some(n))
    }
}

impl<T, const N: usize> ExactSizeIterator for IntoIter<T, N> {}

impl<T, const N: usize> IntoIterator for SmallVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;

    fn into_iter(self) -> IntoIter<T, N> {
        IntoIter {
            inline: self.inline,
            pos: 0,
            len: self.len,
            spill: self.spill.into_iter(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.spilled());
        assert_eq!(v.len(), 4);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn spills_beyond_capacity_and_preserves_order() {
        let mut v: SmallVec<u32, 2> = SmallVec::new();
        for i in 0..7 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.len(), 7);
        assert_eq!(
            v.into_iter().collect::<Vec<_>>(),
            (0..7).collect::<Vec<_>>()
        );
    }

    #[test]
    fn retain_filters_in_place_inline_and_spilled() {
        let mut v: SmallVec<u32, 4> = (0..4).collect();
        v.retain(|&x| x % 2 == 0);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 2]);
        assert!(!v.spilled());

        let mut v: SmallVec<u32, 2> = (0..8).collect();
        v.retain(|&x| x % 2 == 1);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![1, 3, 5, 7]);
    }

    #[test]
    fn pop_and_clear_cover_both_reprs() {
        let mut v: SmallVec<u32, 2> = (0..3).collect();
        assert_eq!(v.pop(), Some(2));
        v.clear();
        assert!(v.is_empty());

        let mut v: SmallVec<u32, 4> = (0..2).collect();
        assert_eq!(v.pop(), Some(1));
        assert_eq!(v.pop(), Some(0));
        assert_eq!(v.pop(), None);
    }

    #[test]
    fn mem_take_leaves_a_fresh_empty_vector() {
        let mut v: SmallVec<u32, 2> = (0..5).collect();
        let taken = std::mem::take(&mut v);
        assert_eq!(taken.len(), 5);
        assert!(v.is_empty());
        v.push(42);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![42]);
    }

    #[test]
    fn owned_iteration_yields_all_elements() {
        let v: SmallVec<String, 3> = ["a", "b", "c", "d"].into_iter().map(String::from).collect();
        let joined: String = v.into_iter().collect();
        assert_eq!(joined, "abcd");
    }
}
