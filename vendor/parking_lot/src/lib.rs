//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's API shape:
//! `lock()` returns the guard directly (no `Result`), poisoning is
//! transparently ignored (parking_lot has no poisoning), and `Condvar`
//! waits take the guard by `&mut`. Performance is std's, which is fine
//! for this workspace — bb-rcu's benches measure *algorithmic*
//! contention behaviour (spin vs block), not lock implementation
//! micro-costs.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// Mutual exclusion, parking_lot-shaped.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable operating on [`MutexGuard`]s.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

/// Result of a timed wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(&mut guard.0, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(&mut guard.0, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Applies a guard-consuming wait to a guard held behind `&mut`.
///
/// std's `Condvar::wait` takes the guard by value; parking_lot's takes
/// `&mut`. Bridging needs a brief take/replace, which is safe here
/// because the closure always returns a live guard for the same mutex.
fn replace_guard<'a, T: ?Sized>(
    slot: &mut sync::MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    // SAFETY: `slot` is forgotten before being overwritten, never
    // double-dropped, and `f` returns a guard of the same lifetime.
    unsafe {
        let guard = std::ptr::read(slot);
        let new = f(guard);
        std::ptr::write(slot, new);
    }
}

/// Reader-writer lock, parking_lot-shaped.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}
