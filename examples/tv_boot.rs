//! The paper's headline scenario: a Samsung UE48H6200 running the
//! commercialized (250-service) Tizen TV stack — Figure 6 end to end.
//!
//! ```text
//! cargo run --release --example tv_boot
//! ```

use booting_booster::bb::{BbConfig, BootRequest, Comparison};
use booting_booster::init::blame;
use booting_booster::workloads::tv_scenario;

fn main() {
    let scenario = tv_scenario();
    println!(
        "scenario: {} ({} units, {} kernel modules)\n",
        scenario.name,
        scenario.units.len(),
        scenario.modules.len()
    );

    let conventional = BootRequest::new(&scenario)
        .config(BbConfig::conventional())
        .run()
        .expect("valid scenario")
        .report;
    let boosted = BootRequest::new(&scenario)
        .run()
        .expect("valid scenario")
        .report;

    println!("{}", Comparison::build(&conventional, &boosted).to_table());
    println!("paper reference: 8.1 s conventional -> 3.5 s with BB (-57%)\n");

    println!("automatically identified BB Group (paper: the seven of §3.3):");
    for name in &boosted.bb_group {
        println!("  {name}");
    }

    println!("\nRCU during boot:");
    for (label, r) in [("conventional", &conventional), ("bb", &boosted)] {
        println!(
            "  {label:>12}: {} synchronize_rcu calls over {} grace periods, \
             max wait {}, {} spinning",
            r.rcu.syncs_completed, r.rcu.grace_periods, r.rcu.max_wait, r.rcu.spinning_syncs
        );
    }

    println!("\nslowest services by activation time (conventional, top 10):");
    for (name, d) in blame(&conventional.boot).into_iter().take(10) {
        println!("  {d:>12} {name}");
    }
}
