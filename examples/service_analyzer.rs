//! The Service Engine's offline analyzer (§3.3): parse a directory of
//! unit files, report incorrect relations (cycles, contradictions,
//! duplicates, dangling references), and emit a Graphviz dot rendering
//! with the BB Group highlighted.
//!
//! ```text
//! cargo run --release --example service_analyzer [unit-dir]
//! ```
//!
//! Without an argument, analyzes a built-in demo set containing the
//! §4.2 pathologies.

use std::collections::BTreeSet;

use booting_booster::bb::service_engine::{analyze, analyze_directives, identify_bb_group};
use booting_booster::init::{parse_unit, parse_unit_dir_with_warnings, Unit, UnitGraph, UnitName};

/// A demo unit set exhibiting the pathologies the analyzer reports.
fn demo_units() -> Vec<(String, String)> {
    let files = [
        ("var.mount", "[Unit]\nDescription=Mount /var\n[Service]\nType=oneshot\nExecStart=mount /var\n"),
        ("dbus.service", "[Unit]\nDescription=D-Bus\nRequires=var.mount\nAfter=var.mount\n[Service]\nType=notify\nExecStart=dbus-daemon\n"),
        ("fasttv.service", "[Unit]\nRequires=dbus.service\nAfter=dbus.service\n[Service]\nExecStart=fasttv\n"),
        // A §4.2 abuser: wants to launch before the mount. Also carries
        // a real-systemd directive this model drops (lint demo).
        ("messenger.service", "[Unit]\nBefore=var.mount\n[Service]\nExecStart=messenger\nRestart=always\n"),
        // A contradiction: both before and after dbus.
        ("confused.service", "[Unit]\nBefore=dbus.service\nAfter=dbus.service\n[Service]\nExecStart=confused\n"),
        // A cycle pair.
        ("alpha.service", "[Unit]\nAfter=beta.service\n[Service]\nExecStart=alpha\n"),
        ("beta.service", "[Unit]\nAfter=alpha.service\n[Service]\nExecStart=beta\n"),
        // Dangling reference.
        ("lonely.service", "[Unit]\nRequires=ghost.service\n[Service]\nExecStart=lonely\n"),
    ];
    files
        .iter()
        .map(|(n, t)| (n.to_string(), t.to_string()))
        .collect()
}

fn main() {
    let mut warnings = Vec::new();
    let units: Vec<Unit> = match std::env::args().nth(1) {
        Some(dir) => {
            let (units, dir_warnings) = parse_unit_dir_with_warnings(std::path::Path::new(&dir))
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                });
            warnings = dir_warnings;
            units
        }
        None => {
            println!("(no directory given; analyzing the built-in demo set)\n");
            demo_units()
                .into_iter()
                .map(|(name, text)| {
                    let parsed = parse_unit(&name, &text).expect("demo set parses");
                    warnings.extend(parsed.warnings.into_iter().map(|w| (name.clone(), w)));
                    parsed.unit
                })
                .collect()
        }
    };
    println!("parsed {} units", units.len());

    let graph = UnitGraph::build(units).expect("unique unit names");
    let stats = graph.stats();
    println!(
        "edges: {} ordering, {} strong, {} weak, {} dangling refs\n",
        stats.ordering_edges, stats.strong_edges, stats.weak_edges, stats.dangling_refs
    );

    let mut findings = analyze(&graph);
    findings.extend(analyze_directives(&warnings));
    if findings.is_empty() {
        println!("no incorrect relations found");
    } else {
        println!("findings ({}):", findings.len());
        for f in &findings {
            println!("  - {f}");
        }
    }

    // Highlight the BB Group if a completion-defining app is present.
    let completion = UnitName::new("fasttv.service");
    let group: BTreeSet<usize> = if graph.idx(&completion).is_some() {
        let g = identify_bb_group(&graph, std::slice::from_ref(&completion));
        println!("\nBB Group from {completion}:");
        for &i in &g {
            println!("  {}", graph.unit(i).name);
        }
        g
    } else {
        BTreeSet::new()
    };

    let dot_path = "service-graph.dot";
    std::fs::write(dot_path, graph.to_dot(Some(&group))).expect("write dot");
    println!("\ndependency graph written to {dot_path} (render with graphviz)");
}
