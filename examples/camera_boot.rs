//! Camera boot analysis: cold boot with BB versus the snapshot-boot
//! alternative the paper discusses in §2.1.
//!
//! The NX300-class camera has no third-party app store, so a factory
//! snapshot is viable there — but the example also shows why snapshots
//! stop working for devices with mutable state and larger DRAM.
//!
//! ```text
//! cargo run --release --example camera_boot
//! ```

use booting_booster::bb::{BbConfig, BootRequest};
use booting_booster::kernel::SnapshotModel;
use booting_booster::sim::{DeviceProfile, SimDuration};
use booting_booster::workloads::camera_scenario;

fn main() {
    let scenario = camera_scenario();
    let conventional = BootRequest::new(&scenario)
        .config(BbConfig::conventional())
        .run()
        .expect("valid scenario")
        .report;
    let boosted = BootRequest::new(&scenario)
        .run()
        .expect("valid scenario")
        .report;

    println!("NX300-class camera cold boot:");
    println!(
        "  conventional: {:.3} s",
        conventional.boot_time().as_secs_f64()
    );
    println!(
        "  with BB:      {:.3} s\n",
        boosted.boot_time().as_secs_f64()
    );

    println!("snapshot-boot alternative (restore a DRAM image from flash):");
    for (label, image_mib, storage) in [
        (
            "camera, 256 MiB image, eMMC",
            256u64,
            DeviceProfile::tv_emmc(),
        ),
        (
            "phone, 3 GiB image, UFS 2.0",
            3 * 1024,
            DeviceProfile::ufs20(),
        ),
    ] {
        let model = SnapshotModel {
            image_mib,
            storage,
            fixed_overhead: SimDuration::from_millis(300),
        };
        println!(
            "  {label}: restore {:.2} s, create-at-shutdown {:.2} s",
            model.restore_time().as_secs_f64(),
            model.create_time(0.5).as_secs_f64()
        );
    }
    println!(
        "\n(§2.1: snapshots work for fixed-function cameras, but restore time\n\
         scales with DRAM — ~10 s for 3 GiB — and image creation blocks\n\
         shutdown, so smart TVs need a fast cold boot instead)"
    );
}
