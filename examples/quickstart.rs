//! Quickstart: boot a small TV-like device with and without the
//! Booting Booster and print the comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use booting_booster::bb::{attribution_table, BbConfig, BootRequest, Comparison};
use booting_booster::workloads::camera_scenario;

fn main() {
    // The camera scenario is the smallest full scenario: 40 services on
    // a two-core NX300-class device.
    let scenario = camera_scenario();
    println!("scenario: {}\n", scenario.name);

    let conventional = BootRequest::new(&scenario)
        .config(BbConfig::conventional())
        .run()
        .expect("scenario is well-formed")
        .report;
    let boosted = BootRequest::new(&scenario)
        .run()
        .expect("scenario is well-formed")
        .report;

    println!(
        "conventional boot: {:.3} s",
        conventional.boot_time().as_secs_f64()
    );
    println!(
        "booting booster:   {:.3} s (BB group: {})\n",
        boosted.boot_time().as_secs_f64(),
        boosted
            .bb_group
            .iter()
            .map(|n| n.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("{}", Comparison::build(&conventional, &boosted).to_table());

    // Every BB mechanism ran as a pass over the boot plan; the deltas
    // recorded by each pass attribute the saving without re-booting
    // once per feature (also available as `bbsim --explain`).
    println!("\n{}", attribution_table(&boosted.deltas));
}
