//! Renders systemd-bootchart-style charts (Figure 5(a)/Figure 7) for
//! the TV scenario: ASCII to stdout, SVG files next to the binary.
//!
//! ```text
//! cargo run --release --example bootchart [conventional|bb]
//! ```

use booting_booster::bb::{BbConfig, BootRequest};
use booting_booster::init::Bootchart;
use booting_booster::workloads::tv_scenario_open_source;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "bb".into());
    let cfg = match which.as_str() {
        "conventional" => BbConfig::conventional(),
        "bb" => BbConfig::full(),
        other => {
            eprintln!("unknown mode {other:?}; use conventional|bb");
            std::process::exit(2);
        }
    };
    // The 136-service open-source graph keeps the chart readable.
    let scenario = tv_scenario_open_source();
    let boot = BootRequest::new(&scenario)
        .config(cfg)
        .run()
        .expect("valid scenario");
    let (report, machine) = (boot.report, boot.machine);
    let chart = Bootchart::build(&report.boot, &machine);

    println!(
        "boot completed at {:.3} s ({} services)\n",
        report.boot_time().as_secs_f64(),
        chart.rows.len()
    );
    // Print the first 40 rows to keep the terminal readable.
    let ascii = chart.to_ascii(100);
    for line in ascii.lines().take(42) {
        println!("{line}");
    }
    if chart.rows.len() > 40 {
        println!("  … ({} more rows)", chart.rows.len() - 40);
    }

    let svg_path = format!("bootchart-{which}.svg");
    std::fs::write(&svg_path, chart.to_svg()).expect("write svg");
    println!("\nfull chart written to {svg_path}");
}
