//! Runs the dependency miner (§5's proposed automated dependency
//! verification) against the commercial TV workload: observes which
//! ordering declarations ever gated anything, verifies removal
//! candidates by re-running the boot, and prints the prunable set.
//!
//! ```text
//! cargo run --release --example dependency_miner [max-candidates]
//! ```

use booting_booster::bb::{mine, BbConfig};
use booting_booster::workloads::tv_scenario;

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .map(|v| v.parse().expect("max-candidates is a number"))
        .unwrap_or(12);

    println!("mining the conventional 250-service TV boot (this re-runs the");
    println!("simulation once per candidate; {max} candidates max)...\n");

    let report = mine(&tv_scenario(), &BbConfig::conventional(), max).expect("valid scenario");
    println!("{}", report.render(max));

    println!("binding edges (the dependencies that actually shaped this boot):");
    for e in report.binding_edges().take(15) {
        println!("  {} gates {}", e.src, e.dst);
    }
    println!(
        "\n(§5: \"some developers tend to declare excessive dependencies to\n\
         feel safer\" — the miner is the experiment loop the paper says a\n\
         growing BB Group will eventually need)"
    );
}
