//! Scheduler/event-loop hot-path baseline: raw events/sec on a
//! synthetic event storm and end-to-end boots/sec for full-BB TV boots.
//!
//! The event storm exercises every hot structure of the simulator inner
//! loop — compute slices (quantum preemption), sleeps, flag waiter
//! lists, timed waits (stale-timeout drops), and priority I/O — without
//! the planning/kernel layers on top, so it isolates the scheduler and
//! event queue. The boot benchmarks measure the fleet inner loop on the
//! calibration TV scenario two ways: a cold boot (plan + kernel + user
//! space, fresh machine) and the hot-path boot a `bb-fleet` forked
//! sweep actually runs per job — plan reuse from a checkpoint, snapshot
//! restore into a recycled machine (`MachineBuilder`), suffix
//! simulation only.
//!
//! Besides the criterion timings this bench writes `BENCH_hotpath.json`
//! at the repo root — the committed scheduler-level perf baseline that
//! `scripts/bench_smoke.sh` gates against. The `baseline_*` constants
//! below were measured with this same harness (ported to the
//! pre-refactor API) at the parent commit, so the committed speedups
//! compare like with like. Iteration count: `BB_BENCH_ITERS`
//! (default 200).
//!
//! `cargo bench --bench hotpath`

use std::hint::black_box;
use std::time::{Duration, Instant};

use bb_core::{BbConfig, BootRequest, CheckpointPhase, PreParser, Scenario};
use bb_fleet::json;
use bb_sim::{
    DeviceProfile, Machine, MachineBuilder, MachineConfig, OpsBuilder, ProcessSpec, SimDuration,
};
use bb_workloads::{profiles, tv_scenario_with, TizenParams};
use criterion::{criterion_group, criterion_main, Criterion};

/// Pre-refactor numbers, measured at the parent commit with this same
/// harness (same storm, same scenario, same median-of-200 loops) ported
/// to the old API: tuple-keyed event heap, per-boot allocation, resume
/// re-planning every boot. The committed JSON reports today's numbers
/// against these.
const BASELINE_EVENTS_PER_SEC: f64 = 9_074_826.0;
const BASELINE_FULL_BOOTS_PER_SEC: f64 = 331.641;
const BASELINE_HOTPATH_BOOTS_PER_SEC: f64 = 383.305;

fn scenario() -> Scenario {
    tv_scenario_with(
        profiles::ue48h6200(),
        TizenParams {
            services: 136,
            ..TizenParams::open_source()
        },
    )
}

const STORM_PROCS: u64 = 64;
const STORM_ROUNDS: u64 = 40;

/// A synthetic event storm: `procs` processes ping-ponging between
/// compute slices (longer than the quantum, so they preempt), sleeps,
/// flag waits, stale timed waits, and random reads on one device.
/// Deterministic: the event count is identical across runs and across
/// internal scheduler representations (the refactor invariant).
fn storm_machine(procs: u64, rounds: u64) -> Machine {
    let mut m = Machine::new(MachineConfig {
        cores: 4,
        ..MachineConfig::default()
    });
    let dev = m.add_device("emmc", DeviceProfile::tv_emmc());
    let gate = m.flag("storm-gate");
    for i in 0..procs {
        let mut b = OpsBuilder::new();
        if i % 8 == 7 {
            // Timed waiters whose timeouts go stale (the gate is set
            // long before 500 ms), exercising the stale-drop path.
            b = b.timed_wait_flag(gate, SimDuration::from_millis(500));
        } else if i % 8 == 3 {
            b = b.wait_flag(gate);
        }
        for r in 0..rounds {
            b = b
                .compute(SimDuration::from_micros(1_100 + (i * 37 + r * 13) % 900))
                .sleep(SimDuration::from_micros(200 + (i * 11 + r * 7) % 300));
            if (i + r) % 5 == 0 {
                b = b.read_rand(dev, 4096 + 512 * ((i + r) % 7));
            }
        }
        let spec = ProcessSpec::new(format!("storm-{i}"), b.build()).with_nice((i % 5) as i8 - 2);
        m.spawn(spec);
    }
    // The gate setter: releases the waiters early in the run.
    m.spawn(ProcessSpec::new(
        "gate-setter",
        OpsBuilder::new().compute_ms(2).set_flag(gate).build(),
    ));
    m
}

fn bench_hotpath(c: &mut Criterion) {
    let s = scenario();
    let cfg = BbConfig::full();
    let pre = PreParser::build(&s.units);
    let ckpt = BootRequest::new(&s)
        .config(cfg)
        .prepared(&pre)
        .checkpoint_at(CheckpointPhase::KernelHandoff)
        .expect("checkpoint");

    let mut group = c.benchmark_group("hotpath");
    group.sample_size(10);
    group.bench_function("event-storm", |b| {
        b.iter(|| {
            let mut m = storm_machine(STORM_PROCS, STORM_ROUNDS);
            let out = m.run();
            black_box(out.end_time)
        })
    });
    group.bench_function("full-bb-boot", |b| {
        b.iter(|| {
            let boot = BootRequest::new(&s)
                .config(cfg)
                .prepared(&pre)
                .run()
                .expect("boots");
            black_box(boot.report.quiesce_time)
        })
    });
    group.bench_function("hotpath-boot", |b| {
        let mut builder = MachineBuilder::new();
        b.iter(|| {
            let boot = BootRequest::new(&s)
                .config(cfg)
                .prepared(&pre)
                .machine_builder(&mut builder)
                .resume(&ckpt)
                .expect("resumes");
            black_box(boot.report.quiesce_time);
            builder.recycle(boot.machine);
        })
    });
    group.finish();

    // The committed baseline numbers come from plain `Instant` loops
    // (the vendored criterion keeps its timings private). Medians, not
    // means: one descheduled iteration on a shared host would otherwise
    // swamp the result.
    let iters: u64 = std::env::var("BB_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let median = |mut v: Vec<Duration>| -> Duration {
        v.sort_unstable();
        v[v.len() / 2]
    };

    // Raw event throughput on the storm. The event count is the total
    // the queue scheduled over the run — the number of heap operations
    // the inner loop performed, the thing the arena rewrite targets.
    let mut storm_events = 0u64;
    let mut storm_times = Vec::with_capacity(iters as usize);
    for i in 0..iters + 20 {
        let mut m = storm_machine(STORM_PROCS, STORM_ROUNDS);
        let t0 = Instant::now();
        let out = m.run();
        let dt = t0.elapsed();
        black_box(out.end_time);
        storm_events = m.event_queue_stats().scheduled;
        if i >= 20 {
            storm_times.push(dt);
        }
    }
    let events_per_sec = storm_events as f64 / median(storm_times).as_secs_f64();

    // Cold boots and hot-path boots, interleaved so slow host drift
    // (thermal, scheduler) cancels out of the ratio.
    let mut builder = MachineBuilder::new();
    let mut pairs: Vec<(Duration, Duration)> = Vec::with_capacity(iters as usize);
    for i in 0..iters + 20 {
        let t0 = Instant::now();
        let boot = BootRequest::new(&s)
            .config(cfg)
            .prepared(&pre)
            .run()
            .expect("boots");
        black_box(boot.report.quiesce_time);
        let d_full = t0.elapsed();
        drop(boot);
        let t0 = Instant::now();
        let boot = BootRequest::new(&s)
            .config(cfg)
            .prepared(&pre)
            .machine_builder(&mut builder)
            .resume(&ckpt)
            .expect("resumes");
        black_box(boot.report.quiesce_time);
        let d_hot = t0.elapsed();
        builder.recycle(boot.machine);
        if i >= 20 {
            pairs.push((d_full, d_hot));
        }
    }
    let full = 1.0 / median(pairs.iter().map(|p| p.0).collect()).as_secs_f64();
    let hotpath = 1.0 / median(pairs.iter().map(|p| p.1).collect()).as_secs_f64();

    let mut out = json::open_document(json::SCHEMA_HOTPATH);
    out.push_str(&format!("  \"scenario\": \"{}\",\n", json::escape(&s.name)));
    out.push_str(&format!(
        "  \"iters\": {iters}, \"storm_procs\": {STORM_PROCS}, \"storm_rounds\": {STORM_ROUNDS},\n"
    ));
    out.push_str(&format!("  \"storm_events\": {storm_events},\n"));
    out.push_str(&format!("  \"events_per_sec\": {events_per_sec:.0},\n"));
    out.push_str(&format!("  \"full_boots_per_sec\": {full:.3},\n"));
    out.push_str(&format!("  \"hotpath_boots_per_sec\": {hotpath:.3},\n"));
    out.push_str(&format!(
        "  \"baseline_events_per_sec\": {BASELINE_EVENTS_PER_SEC:.0},\n"
    ));
    out.push_str(&format!(
        "  \"baseline_full_boots_per_sec\": {BASELINE_FULL_BOOTS_PER_SEC:.3},\n"
    ));
    out.push_str(&format!(
        "  \"baseline_hotpath_boots_per_sec\": {BASELINE_HOTPATH_BOOTS_PER_SEC:.3},\n"
    ));
    out.push_str(&format!(
        "  \"speedup_full\": {:.3},\n",
        full / BASELINE_FULL_BOOTS_PER_SEC
    ));
    out.push_str(&format!(
        "  \"speedup_hotpath\": {:.3}\n",
        hotpath / BASELINE_HOTPATH_BOOTS_PER_SEC
    ));
    out.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    std::fs::write(path, &out).expect("write BENCH_hotpath.json");
    println!(
        "[baseline] storm {events_per_sec:.0} events/s ({storm_events} events), \
         full {full:.1} boots/s, hotpath {hotpath:.1} boots/s -> BENCH_hotpath.json"
    );
}

criterion_group!(benches, bench_hotpath);
criterion_main!(benches);
