//! Real-thread RCU benchmark: the §4.3 crossover measured on the host.
//!
//! Drives the *actual* `bb-rcu` implementation (real atomics, real
//! threads) with varying writer contention and a steady reader load:
//! the classic ticket-spin path is cheap uncontended and collapses under
//! contention; the boosted blocking path pays a fixed overhead and wins
//! when many writers synchronize concurrently — exactly the paper's
//! reason to enable the booster during boot and disable it afterwards.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bb_rcu::{RcuDomain, WaitStrategy};

/// Runs `writers` threads each performing `syncs_per_writer`
/// grace-period waits, with two reader threads continuously entering
/// short read-side critical sections. Returns total wall time.
fn contended_syncs(strategy: WaitStrategy, writers: usize, syncs_per_writer: usize) {
    let domain = Arc::new(RcuDomain::new(strategy));
    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..2 {
        let d = Arc::clone(&domain);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let h = d.register_reader();
            while !stop.load(Ordering::Relaxed) {
                let g = h.read_lock();
                black_box(&g);
                drop(g);
                std::hint::spin_loop();
            }
        }));
    }
    let mut handles = Vec::new();
    for _ in 0..writers {
        let d = Arc::clone(&domain);
        handles.push(std::thread::spawn(move || {
            for _ in 0..syncs_per_writer {
                d.synchronize();
            }
        }));
    }
    for h in handles {
        h.join().expect("writer thread");
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader thread");
    }
}

fn bench_rcu(c: &mut Criterion) {
    let mut group = c.benchmark_group("rcu-synchronize");
    group.sample_size(10);
    for writers in [1usize, 2, 4, 8] {
        for (label, strategy) in [
            ("classic", WaitStrategy::ClassicSpin),
            ("boosted", WaitStrategy::Boosted),
        ] {
            group.bench_with_input(BenchmarkId::new(label, writers), &writers, |b, &writers| {
                b.iter(|| contended_syncs(strategy, writers, 50));
            });
        }
    }
    group.finish();
}

fn bench_read_side(c: &mut Criterion) {
    // Read-side entry must stay wait-free and cheap in both modes.
    let mut group = c.benchmark_group("rcu-read-lock");
    for (label, strategy) in [
        ("classic", WaitStrategy::ClassicSpin),
        ("boosted", WaitStrategy::Boosted),
    ] {
        let domain = RcuDomain::new(strategy);
        let handle = domain.register_reader();
        group.bench_function(label, |b| {
            b.iter(|| {
                let g = handle.read_lock();
                black_box(&g);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rcu, bench_read_side);
criterion_main!(benches);
