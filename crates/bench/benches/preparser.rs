//! Real-code Pre-parser benchmark (E11): text parsing vs binary cache.
//!
//! Measures the actual `bb-init` unit-file parser against the actual
//! binary cache decoder on real bytes — the mechanism behind the
//! paper's 150 ms (loading) + 231 ms (parsing) savings. The ratio, not
//! the absolute host-machine numbers, is the reproduced result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bb_init::{decode_units, encode_units, parse_unit, Unit};
use bb_sim::DeviceId;
use bb_workloads::{tizen_tv, TizenParams};

fn unit_texts(services: usize) -> Vec<(String, String)> {
    let params = TizenParams {
        services,
        ..TizenParams::default()
    };
    let w = tizen_tv(&params, DeviceId::from_raw(0));
    w.units
        .iter()
        .map(|u| (u.name.as_str().to_owned(), u.to_unit_file()))
        .collect()
}

fn parse_all(texts: &[(String, String)]) -> Vec<Unit> {
    texts
        .iter()
        .map(|(name, text)| {
            parse_unit(name, text)
                .expect("generator output parses")
                .unit
        })
        .collect()
}

fn bench_parse_vs_cache(c: &mut Criterion) {
    for services in [136usize, 250, 1000] {
        let texts = unit_texts(services);
        let total_bytes: usize = texts.iter().map(|(_, t)| t.len()).sum();
        let units = parse_all(&texts);
        let blob = encode_units(&units);
        println!(
            "[preparser] {services} services: text {total_bytes} B, cache {} B",
            blob.len()
        );

        let mut group = c.benchmark_group(format!("preparser-{services}"));
        group.throughput(Throughput::Elements(units.len() as u64));
        group.bench_with_input(BenchmarkId::new("parse-text", services), &texts, |b, t| {
            b.iter(|| black_box(parse_all(t)))
        });
        group.bench_with_input(
            BenchmarkId::new("decode-cache", services),
            &blob,
            |b, blob| b.iter(|| black_box(decode_units(blob).expect("valid cache"))),
        );
        group.bench_with_input(
            BenchmarkId::new("encode-cache", services),
            &units,
            |b, u| b.iter(|| black_box(encode_units(u))),
        );
        group.finish();
    }
}

criterion_group!(benches, bench_parse_vs_cache);
criterion_main!(benches);
