//! Graph-machinery benchmarks: the Service Engine's algorithms at the
//! paper's scales (136 → 250 services) and beyond (1000, the "will
//! surely grow" case of §5).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bb_core::service_engine::{analyze, identify_bb_group};
use bb_init::{Transaction, UnitGraph, UnitName};
use bb_sim::DeviceId;
use bb_workloads::{tizen_tv, TizenParams};

fn graph_for(services: usize) -> UnitGraph {
    let params = TizenParams {
        services,
        ..TizenParams::default()
    };
    let w = tizen_tv(&params, DeviceId::from_raw(0));
    UnitGraph::build(w.units).expect("valid units")
}

fn bench_graph(c: &mut Criterion) {
    for services in [136usize, 250, 1000] {
        let graph = graph_for(services);
        let units = graph.units().to_vec();
        let completion = [UnitName::new("fasttv.service")];

        let mut group = c.benchmark_group(format!("graph-{services}"));
        group.bench_function("build", |b| {
            b.iter(|| black_box(UnitGraph::build(units.clone()).expect("valid")))
        });
        group.bench_function("sccs", |b| b.iter(|| black_box(graph.sccs())));
        group.bench_function("topo-order", |b| {
            b.iter(|| black_box(graph.topo_order().expect("acyclic")))
        });
        group.bench_function("bb-group-isolation", |b| {
            b.iter(|| black_box(identify_bb_group(&graph, &completion)))
        });
        group.bench_function("transaction", |b| {
            b.iter(|| black_box(Transaction::build(&graph, "tv-boot.target").expect("ok")))
        });
        group.bench_function("service-analyzer", |b| {
            b.iter(|| black_box(analyze(&graph)))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
