//! Whole-boot benchmarks: times the simulator end-to-end on the
//! calibrated scenarios and *reports the simulated boot times* the
//! paper's figures are built from (printed once per configuration).
//!
//! Covers E1/E5/E6 regeneration: `cargo bench --bench boot_scenarios`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bb_core::{BbConfig, BootRequest, FullBootReport, Scenario};
use bb_workloads::{camera_scenario, tv_scenario, tv_scenario_open_source};

fn boot(scenario: &Scenario, cfg: &BbConfig) -> FullBootReport {
    BootRequest::new(scenario)
        .config(*cfg)
        .run()
        .expect("scenario valid")
        .report
}

fn bench_boots(c: &mut Criterion) {
    let mut group = c.benchmark_group("boot");
    group.sample_size(10);
    let cases: Vec<(&str, bb_core::Scenario, BbConfig)> = vec![
        ("tv-conventional", tv_scenario(), BbConfig::conventional()),
        ("tv-full-bb", tv_scenario(), BbConfig::full()),
        (
            "tv136-conventional",
            tv_scenario_open_source(),
            BbConfig::conventional(),
        ),
        ("tv136-full-bb", tv_scenario_open_source(), BbConfig::full()),
        (
            "camera-conventional",
            camera_scenario(),
            BbConfig::conventional(),
        ),
        ("camera-full-bb", camera_scenario(), BbConfig::full()),
    ];
    for (name, scenario, cfg) in &cases {
        let report = boot(scenario, cfg);
        println!(
            "[simulated] {name}: boot {:.3} s (quiesce {:.3} s)",
            report.boot_time().as_secs_f64(),
            report.quiesce_time.as_secs_f64()
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                let r = boot(black_box(scenario), black_box(cfg));
                black_box(r.boot_time())
            })
        });
    }
    group.finish();
}

fn bench_single_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("boot-single-feature");
    group.sample_size(10);
    let scenario = tv_scenario();
    for (name, cfg) in BbConfig::single_feature_configs() {
        let report = boot(&scenario, &cfg);
        println!(
            "[simulated] tv+{name}: boot {:.3} s",
            report.boot_time().as_secs_f64()
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(boot(&scenario, cfg).boot_time()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_boots, bench_single_features);
criterion_main!(benches);
