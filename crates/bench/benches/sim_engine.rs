//! Simulator-substrate benchmarks: event throughput of the
//! discrete-event machine, so regressions in the scheduler or event
//! queue show up before they distort experiment wall times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bb_sim::{DeviceProfile, Machine, MachineConfig, OpsBuilder, ProcessSpec, SimDuration};

/// A machine crunching `procs` compute-heavy processes on 4 cores.
fn compute_storm(procs: usize) {
    let mut m = Machine::new(MachineConfig {
        cores: 4,
        ..MachineConfig::default()
    });
    m.disable_span_recording();
    for i in 0..procs {
        m.spawn(ProcessSpec::new(
            format!("p{i}"),
            OpsBuilder::new().compute_ms(20).build(),
        ));
    }
    black_box(m.run());
}

/// A machine with heavy mixed I/O + flags + RCU traffic.
fn mixed_workload(procs: usize) {
    let mut m = Machine::new(MachineConfig {
        cores: 4,
        ..MachineConfig::default()
    });
    m.disable_span_recording();
    let dev = m.add_device("emmc", DeviceProfile::tv_emmc());
    let gate = m.flag("gate");
    m.spawn(ProcessSpec::new(
        "gatekeeper",
        OpsBuilder::new().compute_ms(2).set_flag(gate).build(),
    ));
    for i in 0..procs {
        m.spawn(ProcessSpec::new(
            format!("p{i}"),
            OpsBuilder::new()
                .wait_flag(gate)
                .read_rand(dev, 64 * 1024)
                .compute_ms(3)
                .rcu_syncs(4, SimDuration::from_micros(100))
                .build(),
        ));
    }
    black_box(m.run());
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim-engine");
    for procs in [50usize, 250] {
        group.bench_with_input(BenchmarkId::new("compute-storm", procs), &procs, |b, &n| {
            b.iter(|| compute_storm(n))
        });
        group.bench_with_input(
            BenchmarkId::new("mixed-workload", procs),
            &procs,
            |b, &n| b.iter(|| mixed_workload(n)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
