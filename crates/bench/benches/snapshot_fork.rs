//! Snapshot/checkpoint perf baseline: full-BB boots/sec vs
//! checkpoint-forked boots/sec on the same scenario.
//!
//! A forked boot resumes a [`bb_core::Checkpoint`] taken at the
//! kernel→init handoff instead of re-planning and re-simulating the
//! kernel phase (restoring the snapshot replaces the kernel simulation,
//! and the checkpoint's stored plan replaces planning), so it should
//! always beat the full boot. Besides the criterion timings this bench
//! writes `BENCH_snapshot.json` at the repo root — the committed
//! baseline the CI gate and future optimizations diff against.
//! Iteration count: `BB_BENCH_ITERS` (default 200).
//!
//! `cargo bench --bench snapshot_fork`

use std::hint::black_box;
use std::time::{Duration, Instant};

use bb_core::{BbConfig, BootRequest, CheckpointPhase, PreParser, Scenario};
use bb_fleet::json;
use bb_workloads::{profiles, tv_scenario_with, TizenParams};
use criterion::{criterion_group, criterion_main, Criterion};

fn scenario() -> Scenario {
    tv_scenario_with(
        profiles::ue48h6200(),
        TizenParams {
            services: 136,
            ..TizenParams::open_source()
        },
    )
}

fn bench_snapshot_fork(c: &mut Criterion) {
    let s = scenario();
    let cfg = BbConfig::full();
    // Both paths reuse pre-built parser measurements, exactly like the
    // fleet pool does — otherwise PreParser::build dominates every
    // iteration and drowns the kernel phase both paths differ in.
    let pre = PreParser::build(&s.units);
    let ckpt = BootRequest::new(&s)
        .config(cfg)
        .prepared(&pre)
        .checkpoint_at(CheckpointPhase::KernelHandoff)
        .expect("checkpoint");

    let mut group = c.benchmark_group("snapshot-fork");
    group.sample_size(10);
    group.bench_function("full-boot", |b| {
        b.iter(|| {
            let boot = BootRequest::new(&s)
                .config(cfg)
                .prepared(&pre)
                .run()
                .expect("boots");
            black_box(boot.report.quiesce_time)
        })
    });
    group.bench_function("forked-boot", |b| {
        b.iter(|| {
            let boot = BootRequest::new(&s)
                .config(cfg)
                .prepared(&pre)
                .resume(&ckpt)
                .expect("resumes");
            black_box(boot.report.quiesce_time)
        })
    });
    group.finish();

    // The committed baseline. The vendored criterion keeps its timings
    // private, so the JSON numbers come from plain `Instant` loops —
    // interleaved full/forked pairs, so slow drift on the host (thermal,
    // scheduler) cancels out of the ratio instead of biasing one side.
    let iters: u64 = std::env::var("BB_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let mut pairs: Vec<(Duration, Duration)> = Vec::with_capacity(iters as usize);
    for i in 0..iters + 20 {
        let t0 = Instant::now();
        let boot = BootRequest::new(&s)
            .config(cfg)
            .prepared(&pre)
            .run()
            .expect("boots");
        black_box(boot.report.quiesce_time);
        let d_full = t0.elapsed();
        // Free this boot's machine before timing the next one, so the
        // allocator hands both paths the same recycled pages.
        drop(boot);
        let t0 = Instant::now();
        let boot = BootRequest::new(&s)
            .config(cfg)
            .prepared(&pre)
            .resume(&ckpt)
            .expect("resumes");
        black_box(boot.report.quiesce_time);
        let d_forked = t0.elapsed();
        drop(boot);
        if i >= 20 {
            // First 20 pairs are warm-up.
            pairs.push((d_full, d_forked));
        }
    }
    // Medians, not means: a single descheduled iteration on a shared
    // host would otherwise swamp the few-percent prefix saving.
    let median = |mut v: Vec<Duration>| -> Duration {
        v.sort_unstable();
        v[v.len() / 2]
    };
    let full = 1.0 / median(pairs.iter().map(|p| p.0).collect()).as_secs_f64();
    let forked = 1.0 / median(pairs.iter().map(|p| p.1).collect()).as_secs_f64();

    let mut out = json::open_document(json::SCHEMA_SNAPSHOT);
    out.push_str(&format!("  \"scenario\": \"{}\",\n", json::escape(&s.name)));
    out.push_str(&format!(
        "  \"snapshot_bytes\": {}, \"iters\": {iters},\n",
        ckpt.bytes().len()
    ));
    out.push_str(&format!("  \"full_boots_per_sec\": {full:.3},\n"));
    out.push_str(&format!("  \"forked_boots_per_sec\": {forked:.3},\n"));
    out.push_str(&format!("  \"speedup\": {:.3}\n", forked / full));
    out.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_snapshot.json");
    std::fs::write(path, &out).expect("write BENCH_snapshot.json");
    println!(
        "[baseline] forked {forked:.1} boots/s vs full {full:.1} boots/s \
         ({:.2}x) -> BENCH_snapshot.json",
        forked / full
    );
}

criterion_group!(benches, bench_snapshot_fork);
criterion_main!(benches);
