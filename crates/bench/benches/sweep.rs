//! Fleet sweep throughput: cells/sec on a cache-friendly wide grid —
//! the ablation-suite shape every EXPERIMENTS.md sweep uses. 15 cells
//! share one scenario source (baseline pair, 7 single-feature
//! ablations, 7 leave-one-out ablations), 2 seeds each, 60 boots total.
//!
//! This is the shape the shared-artifact layer targets: the cells'
//! configs collapse to 16 distinct (scenario, config) pairs per seed,
//! so grid dedup serves the duplicate conventional boots from cache,
//! the `PlanCache` compiles each distinct pair once, and checkpoint
//! forking simulates each distinct kernel prefix once per worker.
//!
//! Besides the criterion timings this bench writes `BENCH_sweep.json`
//! at the repo root — the committed sweep-level perf baseline that
//! `scripts/bench_smoke.sh` gates against. The `BASELINE_*` constants
//! were measured with this same harness (same grid, same 1-worker pool,
//! same median-of-30 loop) at the parent commit, before the
//! shared-artifact layer existed, so the committed speedups compare
//! like with like. Iteration count: `BB_BENCH_ITERS` (default 30).
//!
//! `cargo bench --bench sweep`

use std::time::{Duration, Instant};

use bb_core::BbConfig;
use bb_fleet::{json, run_sweep, CellSpec, FleetCache, PoolConfig, PoolStats, SweepSpec};
use bb_workloads::{profiles, TizenParams};
use criterion::{criterion_group, criterion_main, Criterion};

/// Parent-commit numbers, measured with this harness driving the
/// pre-cache `run_sweep` (re-plan every boot, no scenario sharing, no
/// dedup) on the same grid: plain boots and checkpoint-forked boots.
const BASELINE_PLAIN_CELLS_PER_SEC: f64 = 446.8;
const BASELINE_FORKED_CELLS_PER_SEC: f64 = 444.3;

fn grid(seeds: std::ops::Range<u64>) -> SweepSpec {
    let profile = profiles::ue48h6200();
    let params = TizenParams {
        services: 136,
        ..TizenParams::open_source()
    };
    let cell = |label: String| CellSpec::tizen(label, profile, params).seeds(seeds.clone());
    let mut spec = SweepSpec::new().cell(
        cell("baseline".into())
            .config("conventional", BbConfig::conventional())
            .config("bb", BbConfig::full()),
    );
    for (name, cfg) in BbConfig::single_feature_configs() {
        spec = spec.cell(
            cell(format!("only-{name}"))
                .config("conventional", BbConfig::conventional())
                .config(name, cfg),
        );
    }
    for (name, cfg) in BbConfig::leave_one_out_configs() {
        spec = spec.cell(
            cell(format!("without-{name}"))
                .config("conventional", BbConfig::conventional())
                .config(format!("no-{name}"), cfg),
        );
    }
    spec
}

/// Medians of wall-clock sweep times plus the counters of one
/// representative run — the committed throughput numbers.
fn measure(spec: &SweepSpec, iters: u64) -> (f64, PoolStats) {
    let boots = spec.total_boots();
    let pool = PoolConfig::with_workers(1);
    let mut times = Vec::with_capacity(iters as usize);
    let mut stats = None;
    for i in 0..iters + 3 {
        let t0 = Instant::now();
        let outcome = run_sweep(spec, &pool, &FleetCache::fresh());
        let dt = t0.elapsed();
        assert!(outcome.report.failures.is_empty());
        assert_eq!(outcome.report.total_boots, boots);
        if i >= 3 {
            times.push(dt);
            stats = Some(outcome.stats);
        }
    }
    times.sort_unstable();
    let median: Duration = times[times.len() / 2];
    (
        boots as f64 / median.as_secs_f64(),
        stats.expect("iters > 0"),
    )
}

fn bench_sweep(c: &mut Criterion) {
    let spec = grid(0..2);
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("ablation-grid", |b| {
        b.iter(|| {
            run_sweep(
                &spec.clone().with_fork(true),
                &PoolConfig::with_workers(1),
                &FleetCache::fresh(),
            )
        })
    });
    group.finish();

    let iters: u64 = std::env::var("BB_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);

    // The full shared-artifact engine: checkpoint fork + plan cache +
    // grid dedup (the sweep default).
    let (cells_per_sec, stats) = measure(&spec.clone().with_fork(true), iters);
    // Dedup and forking off: every grid point runs a full boot and the
    // plan cache is the only sharing layer — isolates its contribution
    // and makes its counters fully visible (a forked sweep reuses the
    // checkpoint's own plan before ever consulting the cache).
    let (nodedup_cells_per_sec, nodedup_stats) = measure(&spec.clone().with_dedup(false), iters);

    let boots = spec.total_boots();
    let speedup = cells_per_sec / BASELINE_PLAIN_CELLS_PER_SEC;
    let mut out = json::open_document(json::SCHEMA_SWEEP);
    out.push_str(&format!(
        "  \"cells\": {}, \"seeds\": 2, \"boots\": {boots}, \"iters\": {iters}, \"workers\": 1,\n",
        spec.cells.len(),
    ));
    out.push_str(&format!("  \"cells_per_sec\": {cells_per_sec:.1},\n"));
    out.push_str(&format!(
        "  \"cells_per_sec_no_dedup\": {nodedup_cells_per_sec:.1},\n"
    ));
    out.push_str(&format!(
        "  \"baseline_plain_cells_per_sec\": {BASELINE_PLAIN_CELLS_PER_SEC:.1},\n"
    ));
    out.push_str(&format!(
        "  \"baseline_forked_cells_per_sec\": {BASELINE_FORKED_CELLS_PER_SEC:.1},\n"
    ));
    out.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
    out.push_str(&format!(
        "  \"speedup_no_dedup\": {:.3},\n",
        nodedup_cells_per_sec / BASELINE_PLAIN_CELLS_PER_SEC
    ));
    out.push_str(&format!(
        "  \"kernel_sims\": {}, \"cells_deduped\": {},\n",
        stats.kernel_sims, stats.cells_deduped,
    ));
    out.push_str(&format!(
        "  \"plans_compiled\": {}, \"plan_cache_hits\": {}\n",
        nodedup_stats.plans_compiled, nodedup_stats.plan_cache_hits,
    ));
    out.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, &out).expect("write BENCH_sweep.json");
    println!(
        "[sweep] {boots} boots: {cells_per_sec:.1} cells/s ({speedup:.2}x vs plain baseline \
         {BASELINE_PLAIN_CELLS_PER_SEC:.1}), no-dedup {nodedup_cells_per_sec:.1} cells/s; \
         {} kernel sims, {} deduped, {} plans compiled / {} cache hits -> BENCH_sweep.json",
        stats.kernel_sims,
        stats.cells_deduped,
        nodedup_stats.plans_compiled,
        nodedup_stats.plan_cache_hits,
    );
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
