//! # bb-bench — the experiment harness
//!
//! One module per paper artifact (see DESIGN.md's experiment index):
//!
//! | module | reproduces |
//! |---|---|
//! | [`experiments::fig1`] | Figure 1 — conventional boot timeline |
//! | [`experiments::fig2`] | Figure 2 — the Tizen dependency graph |
//! | [`experiments::fig3`] | Figure 3 — one dependency disrupts the boot |
//! | [`experiments::fig5`] | Figure 5(a) — RCU Booster bootcharts |
//! | [`experiments::fig6`] | Figure 6 — the 8.1 s → 3.5 s headline |
//! | [`experiments::fig7`] | Figure 7 — var.mount isolation (§4.2) |
//! | [`experiments::tradeoff`] | §4.3 — deferral + RCU costs |
//! | [`experiments::background`] | §2.1/§2.3 — snapshot & compression models |
//! | [`experiments::ablation`] | extension — feature/scaling sweeps |
//! | [`experiments::schemes`] | §2.5 — init-scheme family comparison |
//! | [`experiments::linking`] | §5 — static/pre-link/pre-fork for the group |
//! | [`experiments::miner`] | §5 — automated dependency verification |
//! | [`experiments::devices`] | §4 — BB across device classes |
//! | [`experiments::variance`] | §2.5.3/§5 — boot-time consistency |
//!
//! The `figures` binary prints each experiment and writes dot/SVG
//! artifacts; the Criterion benches under `benches/` time them and the
//! real-code microbenches (bb-rcu contention, unit parsing vs the
//! pre-parsed cache).

pub mod experiments {
    pub mod ablation;
    pub mod background;
    pub mod devices;
    pub mod fig1;
    pub mod fig2;
    pub mod fig3;
    pub mod fig5;
    pub mod fig6;
    pub mod fig7;
    pub mod linking;
    pub mod miner;
    pub mod schemes;
    pub mod tradeoff;
    pub mod variance;
}
