//! Regenerates every table and figure of the paper as text, and writes
//! dot/SVG artifacts under `artifacts/`.
//!
//! ```text
//! figures [all|fig1|fig2|fig3|fig5a|fig6|fig7|tradeoff|background|ablation|schemes]
//! ```

use std::fs;
use std::path::Path;

use bb_bench::experiments::{
    ablation, background, devices, fig1, fig2, fig3, fig5, fig6, fig7, linking, miner, schemes,
    tradeoff, variance,
};

fn artifacts_dir() -> &'static Path {
    let dir = Path::new("artifacts");
    fs::create_dir_all(dir).expect("create artifacts dir");
    dir
}

fn write_artifact(name: &str, content: &str) {
    let path = artifacts_dir().join(name);
    fs::write(&path, content).expect("write artifact");
    println!("  [artifact] {}", path.display());
}

fn run_fig1() {
    println!("{}", fig1::run().render());
}

fn run_fig2() {
    let f = fig2::run();
    println!("{}", f.render());
    for v in &f.variants {
        let file = format!(
            "fig2-{}.dot",
            if v.stats.units < 200 {
                "open-source"
            } else {
                "commercial"
            }
        );
        write_artifact(&file, &v.dot);
    }
}

fn run_fig3() {
    println!("{}", fig3::run().render());
}

fn run_fig5a() {
    let f = fig5::run();
    println!("{}", f.render());
    write_artifact("fig5a-classic.svg", &f.classic.svg);
    write_artifact("fig5a-boosted.svg", &f.boosted.svg);
    write_artifact("fig5a-classic.txt", &f.classic.ascii);
    write_artifact("fig5a-boosted.txt", &f.boosted.ascii);
}

fn run_fig6() {
    println!("{}", fig6::run().render());
}

fn run_fig7() {
    let f = fig7::run();
    println!("{}", f.render());
    write_artifact("fig7-conventional.svg", &f.conventional.svg);
    write_artifact("fig7-isolated.svg", &f.isolated.svg);
}

fn run_tradeoff() {
    println!("{}", tradeoff::run().render());
}

fn run_background() {
    println!("{}", background::run().render());
}

fn run_ablation() {
    println!("{}", ablation::run().render());
}

fn run_schemes() {
    println!("{}", schemes::run().render());
}

fn run_linking() {
    println!("{}", linking::run().render());
}

fn run_miner() {
    let report = miner::run();
    println!("{}", miner::render(&report));
}

fn run_devices() {
    println!("{}", devices::run().render());
}

fn run_variance() {
    println!("{}", variance::run().render());
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let jobs: Vec<(&str, fn())> = vec![
        ("fig1", run_fig1),
        ("fig2", run_fig2),
        ("fig3", run_fig3),
        ("fig5a", run_fig5a),
        ("fig6", run_fig6),
        ("fig7", run_fig7),
        ("tradeoff", run_tradeoff),
        ("background", run_background),
        ("ablation", run_ablation),
        ("schemes", run_schemes),
        ("linking", run_linking),
        ("miner", run_miner),
        ("devices", run_devices),
        ("variance", run_variance),
    ];
    match arg.as_str() {
        "all" => {
            for (name, job) in &jobs {
                println!("==== {name} ====");
                job();
                println!();
            }
        }
        other => match jobs.iter().find(|(n, _)| *n == other) {
            Some((_, job)) => job(),
            None => {
                eprintln!(
                    "unknown figure {other:?}; expected one of: all {}",
                    jobs.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(" ")
                );
                std::process::exit(2);
            }
        },
    }
}
