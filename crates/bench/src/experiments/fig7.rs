//! E6 — Figure 7: partial BB Group isolation of `var.mount`.
//!
//! The paper's §4.2 experiment: about a dozen services abusively declare
//! `Before=var.mount` to launch early; because `dbus.service` depends on
//! `var.mount`, every D-Bus client is delayed. Manually adding *only*
//! `var.mount` to the BB Group (everything else conventional, the full
//! isolator disabled) advanced the dbus launch from 450 ms to 195 ms.
//!
//! We run the same manipulation via a [`BootRequest`] plan tweak and
//! report dbus's launch time measured from user-space start, plus both
//! bootcharts.

use bb_core::{BbConfig, BootRequest};
use bb_init::Bootchart;
use bb_sim::{SimDuration, SimTime};
use bb_workloads::tv_scenario;

/// One side of the comparison.
#[derive(Debug)]
pub struct Side {
    /// Label.
    pub name: &'static str,
    /// var.mount ready time (from user-space start).
    pub var_mount_ready: SimDuration,
    /// dbus.service launch (first dispatch) time (from user-space start).
    pub dbus_started: SimDuration,
    /// dbus.service ready time (from user-space start).
    pub dbus_ready: SimDuration,
    /// Boot completion.
    pub boot_time: SimTime,
    /// SVG bootchart.
    pub svg: String,
}

/// The Figure 7 experiment output.
#[derive(Debug)]
pub struct Fig7 {
    /// Fully conventional.
    pub conventional: Side,
    /// var.mount manually isolated.
    pub isolated: Side,
}

fn measure(name: &'static str, isolate_var_mount: bool) -> Side {
    let scenario = tv_scenario();
    let cfg = BbConfig::conventional();
    let mut request = BootRequest::new(&scenario).config(cfg);
    if isolate_var_mount {
        request = request.tweak(|graph, transaction, overrides| {
            let var = graph.idx_of("var.mount");
            assert!(transaction.jobs.contains(&var));
            overrides.isolate.insert(var);
            overrides.dispatch_first.push(var);
            overrides.nice.insert(var, -15);
        });
    }
    let boot = request.run().expect("valid");
    let (report, machine) = (boot.report, boot.machine);
    let us = report.boot.userspace_start;
    let since_us = |t: Option<SimTime>| t.expect("service ran").saturating_since(us);
    let var = report.boot.service("var.mount");
    let dbus = report.boot.service("dbus.service");
    let chart = Bootchart::build(&report.boot, &machine);
    Side {
        name,
        var_mount_ready: since_us(var.ready),
        dbus_started: since_us(dbus.started),
        dbus_ready: since_us(dbus.ready),
        boot_time: report.boot_time(),
        svg: chart.to_svg(),
    }
}

/// Runs the experiment.
pub fn run() -> Fig7 {
    Fig7 {
        conventional: measure("conventional", false),
        isolated: measure("var.mount in BB Group", true),
    }
}

impl Fig7 {
    /// Text rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Figure 7 — isolating var.mount advances dbus.service (§4.2)"
        );
        let _ = writeln!(
            s,
            "  {:<24} {:>16} {:>14} {:>12}",
            "configuration", "var.mount ready", "dbus launch", "dbus ready"
        );
        for side in [&self.conventional, &self.isolated] {
            let _ = writeln!(
                s,
                "  {:<24} {:>16} {:>14} {:>12}",
                side.name,
                side.var_mount_ready.to_string(),
                side.dbus_started.to_string(),
                side.dbus_ready.to_string()
            );
        }
        let _ = writeln!(
            s,
            "  (paper: dbus launch advanced 450 ms -> 195 ms; times from init start)"
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolation_advances_dbus_substantially() {
        let f = run();
        assert!(
            f.isolated.dbus_started.as_nanos() * 2 <= f.conventional.dbus_started.as_nanos(),
            "dbus launch {} vs {}",
            f.isolated.dbus_started,
            f.conventional.dbus_started
        );
        assert!(f.isolated.var_mount_ready < f.conventional.var_mount_ready);
    }

    #[test]
    fn only_var_mount_is_touched_boot_still_valid() {
        let f = run();
        // Partial isolation alone should not hurt the overall boot.
        assert!(f.isolated.boot_time <= f.conventional.boot_time);
        assert!(f.isolated.svg.starts_with("<svg"));
        assert!(run().render().contains("450 ms"));
    }
}
