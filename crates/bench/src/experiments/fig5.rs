//! E4 — Figure 5(a): bootcharts with and without the RCU Booster.
//!
//! The paper's systemd-bootchart pair shows that with the booster "more
//! tasks are quickly launched in parallel at booting" — the rows near
//! the bottom start visibly earlier. This experiment runs the TV
//! scenario with only the RCU Booster toggled, renders both charts, and
//! quantifies the effect as (a) boot time, (b) how many services are
//! ready within a fixed window of user-space start, and (c) the mean
//! service start time.

use bb_core::{BbConfig, BootRequest};
use bb_init::Bootchart;
use bb_sim::{RcuStats, SimDuration, SimTime};
use bb_workloads::tv_scenario;

/// One side of the comparison.
#[derive(Debug)]
pub struct Side {
    /// Label.
    pub name: &'static str,
    /// Boot completion time.
    pub boot_time: SimTime,
    /// Services *launched* (first CPU dispatch) within 3 s of user-space
    /// start — the paper's "more tasks are quickly launched in parallel".
    pub launched_in_3s: usize,
    /// Mean service start time (from user-space start).
    pub mean_start: SimDuration,
    /// RCU statistics.
    pub rcu: RcuStats,
    /// ASCII bootchart.
    pub ascii: String,
    /// SVG bootchart.
    pub svg: String,
}

/// The Figure 5(a) experiment output.
#[derive(Debug)]
pub struct Fig5 {
    /// Classic-spin side.
    pub classic: Side,
    /// Boosted side.
    pub boosted: Side,
}

fn side(name: &'static str, rcu_booster: bool) -> Side {
    let scenario = tv_scenario();
    let cfg = BbConfig {
        rcu_booster,
        ..BbConfig::conventional()
    };
    let boot = BootRequest::new(&scenario)
        .config(cfg)
        .run()
        .expect("scenario valid");
    let (report, machine) = (boot.report, boot.machine);
    let chart = Bootchart::build(&report.boot, &machine);
    let us = report.boot.userspace_start;
    let window = us + SimDuration::from_secs(3);
    let launched_in_3s = report
        .boot
        .services
        .values()
        .filter(|r| r.started.is_some_and(|t| t <= window))
        .count();
    let starts: Vec<SimDuration> = report
        .boot
        .services
        .values()
        .filter_map(|r| r.started.map(|t| t.saturating_since(us)))
        .collect();
    let mean_start = if starts.is_empty() {
        SimDuration::ZERO
    } else {
        starts.iter().copied().sum::<SimDuration>() / starts.len() as u64
    };
    Side {
        name,
        boot_time: report.boot_time(),
        launched_in_3s,
        mean_start,
        rcu: report.rcu,
        ascii: chart.to_ascii(100),
        svg: chart.to_svg(),
    }
}

/// Runs the experiment.
pub fn run() -> Fig5 {
    Fig5 {
        classic: side("conventional RCU (ticket spin)", false),
        boosted: side("RCU Booster (blocking mutex)", true),
    }
}

impl Fig5 {
    /// Text rendering (summary; full charts in the artifacts).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "Figure 5(a) — effect of RCU Booster on the bootchart");
        for side in [&self.classic, &self.boosted] {
            let _ = writeln!(
                s,
                "  {:<34} boot {:>9}  launched<3s {:>4}  mean-start {:>9}  syncs {} (max wait {})",
                side.name,
                side.boot_time.to_string(),
                side.launched_in_3s,
                side.mean_start.to_string(),
                side.rcu.syncs_completed,
                side.rcu.max_wait
            );
        }
        let _ = writeln!(
            s,
            "  (paper: boosted chart launches more tasks earlier; RCU step 2289→461 ms)"
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn booster_launches_more_tasks_earlier() {
        let f = run();
        assert!(f.boosted.boot_time < f.classic.boot_time);
        assert!(
            f.boosted.launched_in_3s > f.classic.launched_in_3s,
            "{} vs {}",
            f.boosted.launched_in_3s,
            f.classic.launched_in_3s
        );
        assert!(f.boosted.mean_start < f.classic.mean_start);
    }

    #[test]
    fn same_sync_count_different_modes() {
        let f = run();
        assert_eq!(f.classic.rcu.syncs_completed, f.boosted.rcu.syncs_completed);
        assert!(f.classic.rcu.classic_syncs > 0);
        assert!(f.boosted.rcu.boosted_syncs > 0);
        assert!(f.classic.ascii.contains("cpu"));
        assert!(f.boosted.svg.starts_with("<svg"));
    }
}
