//! E2 — Figure 2: the Tizen TV dependency graph.
//!
//! Reports the structure of the 136-service open-source graph and its
//! 250-service commercial fork — node/edge counts by kind, the dbus
//! hub's fan-in, BB-group membership — and renders both as Graphviz dot
//! in the paper's red/green edge colouring.

use std::collections::BTreeSet;

use bb_init::{EdgeKind, GraphStats, UnitGraph};
use bb_sim::DeviceId;
use bb_workloads::{tizen_tv, TizenParams};

/// One graph variant's statistics.
#[derive(Debug, Clone)]
pub struct GraphReport {
    /// Variant name.
    pub name: &'static str,
    /// Node/edge statistics.
    pub stats: GraphStats,
    /// Strong requirement edges into dbus.service (the hub).
    pub dbus_fan_in: usize,
    /// Automatically identified BB Group size.
    pub bb_group_size: usize,
    /// Graphviz rendering with the BB Group highlighted.
    pub dot: String,
}

/// The Figure 2 experiment output.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Open-source (136) and commercial (250) variants.
    pub variants: Vec<GraphReport>,
}

fn report(name: &'static str, params: &TizenParams) -> GraphReport {
    let w = tizen_tv(params, DeviceId::from_raw(0));
    let graph = UnitGraph::build(w.units).expect("generator emits unique names");
    let dbus = graph.idx_of("dbus.service");
    let dbus_fan_in = graph
        .edges()
        .iter()
        .filter(|e| e.src == dbus && e.kind == EdgeKind::RequiresStrong)
        .count();
    let group: BTreeSet<usize> = graph.strong_closure([graph.idx_of("fasttv.service")]);
    GraphReport {
        name,
        stats: graph.stats(),
        dbus_fan_in,
        bb_group_size: group.len(),
        dot: graph.to_dot(Some(&group)),
    }
}

/// Runs the experiment.
pub fn run() -> Fig2 {
    Fig2 {
        variants: vec![
            report("open-source (Figure 2)", &TizenParams::open_source()),
            report("commercial fork", &TizenParams::commercial()),
        ],
    }
}

impl Fig2 {
    /// Text rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "Figure 2 — Tizen TV service dependency graph");
        let _ = writeln!(
            s,
            "  {:<24} {:>6} {:>9} {:>7} {:>6} {:>9} {:>9}",
            "variant", "units", "ordering", "strong", "weak", "dbus-fan", "BB-group"
        );
        for v in &self.variants {
            let _ = writeln!(
                s,
                "  {:<24} {:>6} {:>9} {:>7} {:>6} {:>9} {:>9}",
                v.name,
                v.stats.units,
                v.stats.ordering_edges,
                v.stats.strong_edges,
                v.stats.weak_edges,
                v.dbus_fan_in,
                v.bb_group_size
            );
        }
        let _ = writeln!(
            s,
            "  (paper: 136 services open-source, ~doubling during commercialization;\n   BB Group of 7: mount, socket, dbus, tuner, hdmi, demux, fasttv)"
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_match_paper_scale() {
        let f = run();
        assert_eq!(f.variants[0].stats.units, 137);
        assert_eq!(f.variants[1].stats.units, 251);
        for v in &f.variants {
            assert_eq!(v.bb_group_size, 7);
            assert!(v.dbus_fan_in > 50);
            assert!(v.dot.contains("digraph"));
        }
        // Commercialization roughly doubles edges too.
        let e0 = f.variants[0].stats.strong_edges;
        let e1 = f.variants[1].stats.strong_edges;
        assert!(e1 > e0 + e0 / 2, "{e0} -> {e1}");
        assert!(run().render().contains("dbus-fan"));
    }
}
