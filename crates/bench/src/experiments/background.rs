//! E8 — the §2 background models that justify cold-boot optimization.
//!
//! * Snapshot (hibernation) restore time vs DRAM image size: the
//!   Galaxy-S6 data point — 3 GiB at ~300 MiB/s ≈ 10 s — shows snapshot
//!   booting stops scaling (§2.1).
//! * Compression win/lose per storage generation: once flash outruns
//!   decompression (S6: 300 vs 35 MiB/s), compressed images slow
//!   booting (§2.3).

use bb_kernel::{CompressionModel, SnapshotModel, StandbyPolicy, SuspendToRam};
use bb_sim::{DeviceProfile, SimDuration};

/// One snapshot-restore data point.
#[derive(Debug, Clone)]
pub struct SnapshotPoint {
    /// Image size in MiB.
    pub image_mib: u64,
    /// Restore time.
    pub restore: SimDuration,
    /// Creation time at shutdown (writes at half read speed).
    pub create: SimDuration,
}

/// One compression data point.
#[derive(Debug, Clone)]
pub struct CompressionPoint {
    /// Storage label.
    pub storage: &'static str,
    /// Plain load time of a 100 MiB image.
    pub uncompressed: SimDuration,
    /// Pipelined compressed load time (2:1 ratio, 35 MiB/s decompress).
    pub compressed: SimDuration,
    /// Whether compression helps.
    pub wins: bool,
}

/// The E8 output.
#[derive(Debug)]
pub struct Background {
    /// Snapshot restore sweep on UFS 2.0 (Galaxy-S6-class storage).
    pub snapshot: Vec<SnapshotPoint>,
    /// Compression across storage generations.
    pub compression: Vec<CompressionPoint>,
    /// Suspend-to-RAM resume time (the "Instant On" alternative).
    pub str_resume: SimDuration,
    /// Whether silent-boot-then-suspend passes the EU 1 W standby rule.
    pub silent_boot_compliant: bool,
}

/// Runs the experiment.
pub fn run() -> Background {
    let snapshot = [512u64, 1024, 2048, 3072, 4096]
        .into_iter()
        .map(|image_mib| {
            let m = SnapshotModel {
                image_mib,
                storage: DeviceProfile::ufs20(),
                fixed_overhead: SimDuration::from_millis(300),
            };
            SnapshotPoint {
                image_mib,
                restore: m.restore_time(),
                create: m.create_time(0.5),
            }
        })
        .collect();
    let compression = [
        (
            "slow NAND 10 MiB/s",
            DeviceProfile::from_mibs(10, 5, SimDuration::ZERO),
        ),
        ("eMMC 117 MiB/s (TV)", DeviceProfile::tv_emmc()),
        ("UFS2.0 300 MiB/s (S6)", DeviceProfile::ufs20()),
        ("SSD 515 MiB/s", DeviceProfile::consumer_ssd()),
    ]
    .into_iter()
    .map(|(name, storage)| {
        let m = CompressionModel {
            image_mib: 100,
            ratio: 2.0,
            decompress_mibs: 35,
            storage,
        };
        CompressionPoint {
            storage: name,
            uncompressed: m.uncompressed_time(),
            compressed: m.compressed_time(),
            wins: m.compression_wins(),
        }
    })
    .collect();
    Background {
        snapshot,
        compression,
        str_resume: SuspendToRam::tv().resume_time(),
        silent_boot_compliant: StandbyPolicy::tv_suspend_to_ram().compliant(),
    }
}

impl Background {
    /// Text rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "§2.1 — snapshot restore vs DRAM image size (UFS 2.0):");
        for p in &self.snapshot {
            let _ = writeln!(
                s,
                "  {:>5} MiB: restore {:>9}, create {:>9}",
                p.image_mib,
                p.restore.to_string(),
                p.create.to_string()
            );
        }
        let _ = writeln!(s, "  (paper: 3 GiB at ~300 MiB/s needs ~10 s)");
        let _ = writeln!(
            s,
            "§2.3 — compression of a 100 MiB boot image (2:1, 35 MiB/s decompress):"
        );
        for p in &self.compression {
            let _ = writeln!(
                s,
                "  {:<24} plain {:>9}, compressed {:>9} -> {}",
                p.storage,
                p.uncompressed.to_string(),
                p.compressed.to_string(),
                if p.wins {
                    "compression wins"
                } else {
                    "compression LOSES"
                }
            );
        }
        let _ = writeln!(
            s,
            "§2.1 — suspend-to-RAM resumes in {} (\"Instant On\"), but silent\n  boot-then-suspend at plug-in is {} under the EU 1 W standby rule",
            self.str_resume,
            if self.silent_boot_compliant { "allowed" } else { "NOT allowed" }
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s6_point_matches_paper() {
        let b = run();
        let p3g = b.snapshot.iter().find(|p| p.image_mib == 3072).unwrap();
        let secs = p3g.restore.as_secs_f64();
        assert!((9.5..11.5).contains(&secs), "restore {secs}");
        // Restore grows monotonically with image size.
        assert!(b.snapshot.windows(2).all(|w| w[0].restore < w[1].restore));
    }

    #[test]
    fn instant_on_fast_but_disallowed_at_plug_in() {
        let b = run();
        assert!(b.str_resume < SimDuration::from_secs(2));
        assert!(!b.silent_boot_compliant);
    }

    #[test]
    fn compression_crossover_matches_paper() {
        let b = run();
        assert!(b.compression[0].wins, "slow NAND should benefit");
        assert!(!b.compression[2].wins, "UFS should not benefit");
        assert!(!b.compression[3].wins, "SSD should not benefit");
        assert!(run().render().contains("compression LOSES"));
    }
}
