//! E13 — §5: linking strategies for BB Group binaries.
//!
//! The paper's discussion: pre-link and pre-fork, the traditional
//! launch-time optimizations, do *not* pay off for the BB Group —
//! pre-link shows no benefit because nothing has loaded the group's
//! libraries yet this early in boot (and raises security concerns),
//! and pre-fork's setup overhead exceeds its saving for a handful of
//! short-lived launches. Statically building the group's binaries, by
//! contrast, "completely removes overheads incurred by dynamic
//! linking".
//!
//! We reproduce this by decomposing the per-service fork+exec cost
//! (fork + execve + dynamic linking) and running the full-BB TV boot
//! under each strategy applied to the group.

use bb_core::{BootRequest, Scenario};
use bb_init::{ManagerTask, ServiceBody, ServiceType, Unit, UnitName, WorkloadMap};
use bb_sim::{DeviceId, OpsBuilder, SimDuration, SimTime};
use bb_workloads::{profiles, tv_kernel_plan};

/// Decomposition of the default 3 ms fork+exec cost on the TV's A9.
pub mod costs {
    use bb_sim::SimDuration;

    /// `fork()` itself.
    pub fn fork() -> SimDuration {
        SimDuration::from_micros(400)
    }

    /// `execve()` + image setup.
    pub fn exec() -> SimDuration {
        SimDuration::from_micros(600)
    }

    /// Dynamic linking (ld.so relocation of cold libraries).
    pub fn dynlink_cold() -> SimDuration {
        SimDuration::from_millis(2)
    }

    /// Dynamic linking when the libraries were pre-relocated *and* are
    /// already warm in memory — pre-link's best case.
    pub fn dynlink_prelinked_warm() -> SimDuration {
        SimDuration::from_micros(700)
    }

    /// Per-service cost of setting up a pre-fork zygote at init start.
    pub fn prefork_setup() -> SimDuration {
        SimDuration::from_millis(5)
    }

    /// Launch cost from a ready zygote.
    pub fn prefork_launch() -> SimDuration {
        SimDuration::from_micros(300)
    }
}

/// One strategy's result.
#[derive(Debug)]
pub struct StrategyResult {
    /// Strategy label.
    pub name: &'static str,
    /// Boot completion time.
    pub boot_time: SimTime,
}

/// The E13 output.
#[derive(Debug)]
pub struct Linking {
    /// Results per strategy, baseline first.
    pub results: Vec<StrategyResult>,
}

/// A chain-only scenario — just the seven BB Group units with
/// deterministic bodies — so launch-cost differences are not drowned in
/// the full stack's scheduler noise. This matches the §5 question,
/// which is specifically about the group's binaries.
fn chain_scenario() -> Scenario {
    let device = DeviceId::from_raw(0);
    let mut units = vec![Unit::new(UnitName::new("tv-boot.target")).requires("fasttv.service")];
    let mut workloads = WorkloadMap::new();
    let mut add = |units: &mut Vec<Unit>, unit: Unit, body: ServiceBody| {
        let exec = format!("wl:{}", unit.name);
        workloads.insert(exec.clone(), body);
        units.push(unit.with_exec(exec).wanted_by("tv-boot.target"));
    };
    add(
        &mut units,
        Unit::new(UnitName::new("var.mount")).with_type(ServiceType::Oneshot),
        ServiceBody {
            pre_ready: OpsBuilder::new()
                .read_rand(device, 192 * 1024)
                .compute_ms(5)
                .build(),
            post_ready: Vec::new(),
        },
    );
    add(
        &mut units,
        Unit::new(UnitName::new("dbus.socket")).needs("var.mount"),
        ServiceBody {
            pre_ready: OpsBuilder::new().compute_ms(1).build(),
            post_ready: Vec::new(),
        },
    );
    add(
        &mut units,
        Unit::new(UnitName::new("dbus.service"))
            .needs("var.mount")
            .after("dbus.socket")
            .with_type(ServiceType::Forking),
        ServiceBody {
            pre_ready: OpsBuilder::new().compute_ms(60).build(),
            post_ready: Vec::new(),
        },
    );
    for (name, cpu, settle) in [
        ("tuner.service", 250u64, 250u64),
        ("hdmi.service", 100, 180),
        ("demux.service", 80, 120),
    ] {
        add(
            &mut units,
            Unit::new(UnitName::new(name))
                .needs("dbus.service")
                .with_type(ServiceType::Forking),
            ServiceBody {
                pre_ready: OpsBuilder::new()
                    .compute_ms(cpu)
                    .sleep(SimDuration::from_millis(settle))
                    .build(),
                post_ready: Vec::new(),
            },
        );
    }
    add(
        &mut units,
        Unit::new(UnitName::new("fasttv.service"))
            .needs("tuner.service")
            .needs("hdmi.service")
            .needs("demux.service")
            .needs("dbus.service")
            .with_type(ServiceType::Forking),
        ServiceBody {
            pre_ready: OpsBuilder::new()
                .read_seq(device, 18 * bb_sim::MIB)
                .compute_ms(1700)
                .build(),
            post_ready: Vec::new(),
        },
    );
    Scenario {
        name: "bb-group-chain".into(),
        machine: profiles::ue48h6200().machine,
        storage: profiles::ue48h6200().storage,
        kernel: tv_kernel_plan(),
        modules: bb_kernel::ModuleCatalog::default(),
        units,
        workloads,
        target: "tv-boot.target".into(),
        completion: vec![UnitName::new("fasttv.service")],
        manager_costs: bb_init::ManagerCosts::default(),
        parse_params: bb_core::ParseCostParams::default(),
        extra_init_tasks: Vec::new(),
    }
}

fn run_strategy(
    name: &'static str,
    group_fork_cost: Option<SimDuration>,
    prefork: bool,
) -> StrategyResult {
    let mut scenario = chain_scenario();
    if prefork {
        // Zygote setup for each of the 7 group services happens during
        // init, before any service can launch.
        scenario.extra_init_tasks.push(ManagerTask::new(
            "prefork-zygotes",
            costs::prefork_setup() * 7,
        ));
    }
    let report = BootRequest::new(&scenario)
        .tweak(|_, _, overrides| {
            if let Some(cost) = group_fork_cost {
                for &j in overrides.isolate.clone().iter() {
                    overrides.fork_cost.insert(j, cost);
                }
            }
        })
        .run()
        .expect("scenario valid")
        .report;
    StrategyResult {
        name,
        boot_time: report.boot_time(),
    }
}

/// Runs the experiment.
pub fn run() -> Linking {
    let dynamic = costs::fork() + costs::exec() + costs::dynlink_cold();
    let static_link = costs::fork() + costs::exec();
    // Pre-link: this early in boot nothing shares the group's libraries,
    // so relocation still runs against cold pages — no benefit (§5).
    let prelink_cold = dynamic;
    let prefork_launch = costs::prefork_launch();
    Linking {
        results: vec![
            run_strategy("dynamic linking (baseline BB)", Some(dynamic), false),
            run_strategy("static linking (shipped)", Some(static_link), false),
            run_strategy("pre-link", Some(prelink_cold), false),
            run_strategy("pre-fork", Some(prefork_launch), true),
        ],
    }
}

impl Linking {
    /// Text rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "§5 — launch strategies for the 7 BB Group binaries:");
        let baseline = self.results[0].boot_time;
        for r in &self.results {
            let delta = r.boot_time.as_nanos() as i128 - baseline.as_nanos() as i128;
            let _ = writeln!(
                s,
                "  {:<30} boot {:>12}  ({:+.2} ms vs dynamic)",
                r.name,
                r.boot_time.to_string(),
                delta as f64 / 1e6
            );
        }
        let _ = writeln!(
            s,
            "  (paper: static wins; pre-link no benefit this early; pre-fork's\n   setup exceeds its saving for a short-lived group)"
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_linking_wins_prefork_loses() {
        let l = run();
        let by = |n: &str| {
            l.results
                .iter()
                .find(|r| r.name.starts_with(n))
                .expect("strategy present")
                .boot_time
        };
        let dynamic = by("dynamic");
        let stat = by("static");
        let prelink = by("pre-link");
        let prefork = by("pre-fork");
        assert!(stat < dynamic, "static {stat} !< dynamic {dynamic}");
        // Pre-link: no benefit (cold libraries), identical boot.
        assert_eq!(prelink, dynamic);
        // Pre-fork: setup cost delays init more than launches save.
        assert!(prefork > dynamic, "prefork {prefork} !> dynamic {dynamic}");
        assert!(run().render().contains("static"));
    }
}
