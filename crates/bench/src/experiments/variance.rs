//! E15 — extension: boot-time variance across workload instances.
//!
//! §2.5.3: "the complicated dependency structure with non-determinism
//! and dynamicity result in a boot time that varies among instances",
//! and §5: with isolation "system administrators can maintain a
//! consistent booting time with on-going development of other OS
//! services". We quantify both: the same TV stack regenerated with
//! different seeds (different service durations, edges, and false
//! orderings — the instance-to-instance churn of a living platform)
//! boots with large spread conventionally and almost none under BB,
//! whose completion is pinned to the stable broadcast chain.
//!
//! The seed sweep itself runs on the bb-fleet work-stealing pool: one
//! cell, one seed per instance, conventional and full-BB configs per
//! job — the aggregator's per-config statistics are the spread.

use bb_fleet::{run_sweep, CellSpec, ConfigStats, FleetCache, PoolConfig, SweepSpec};
use bb_sim::SimTime;
use bb_workloads::{profiles, TizenParams};

/// Spread statistics over the seed sweep.
#[derive(Debug, Clone, Copy)]
pub struct Spread {
    /// Mean boot time in seconds.
    pub mean_s: f64,
    /// Standard deviation in seconds.
    pub stddev_s: f64,
    /// Minimum observed.
    pub min: SimTime,
    /// Maximum observed.
    pub max: SimTime,
}

impl Spread {
    fn from_stats(stats: &ConfigStats) -> Spread {
        assert!(stats.count > 0, "sweep produced no samples");
        Spread {
            mean_s: stats.mean_ns / 1e9,
            stddev_s: stats.stddev_ns / 1e9,
            min: SimTime::from_nanos(stats.min_ns),
            max: SimTime::from_nanos(stats.max_ns),
        }
    }

    /// Coefficient of variation in percent.
    pub fn cv_percent(&self) -> f64 {
        100.0 * self.stddev_s / self.mean_s
    }
}

/// The E15 output.
#[derive(Debug)]
pub struct Variance {
    /// Number of workload instances (seeds).
    pub instances: usize,
    /// Conventional spread.
    pub conventional: Spread,
    /// Full-BB spread.
    pub bb: Spread,
}

/// Runs the experiment over `instances` regenerated workloads.
pub fn run_with(instances: usize) -> Variance {
    let spec = SweepSpec::new().cell(
        CellSpec::tizen("variance", profiles::ue48h6200(), TizenParams::commercial())
            .seeds((0..instances as u64).map(|i| 9000 + i))
            .conventional_vs_bb(),
    );
    let outcome = run_sweep(&spec, &PoolConfig::default(), &FleetCache::fresh());
    let cell = &outcome.report.cells[0];
    assert_eq!(
        cell.completed, instances,
        "instances failed: {:?}",
        outcome.report.failures
    );
    Variance {
        instances,
        conventional: Spread::from_stats(&cell.configs[0]),
        bb: Spread::from_stats(&cell.configs[1]),
    }
}

/// Runs the experiment at the default instance count.
pub fn run() -> Variance {
    run_with(12)
}

impl Variance {
    /// Text rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Boot-time spread over {} regenerated workload instances:",
            self.instances
        );
        for (name, sp) in [("conventional", &self.conventional), ("bb", &self.bb)] {
            let _ = writeln!(
                s,
                "  {:<14} mean {:.3} s  stddev {:.3} s (cv {:.1}%)  range {} .. {}",
                name,
                sp.mean_s,
                sp.stddev_s,
                sp.cv_percent(),
                sp.min,
                sp.max
            );
        }
        let _ = writeln!(
            s,
            "  (§2.5.3/§5: conventional boot varies with platform churn; BB's\n   completion is pinned to the isolated critical chain)"
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bb_is_dramatically_more_consistent() {
        let v = run_with(8);
        assert!(
            v.bb.cv_percent() * 3.0 < v.conventional.cv_percent(),
            "bb cv {:.2}% vs conventional cv {:.2}%",
            v.bb.cv_percent(),
            v.conventional.cv_percent()
        );
        // And faster on every instance.
        assert!(v.bb.max < v.conventional.min);
        assert!(run_with(3).render().contains("stddev"));
    }
}
