//! E12 — §5: automated dependency verification on the TV workload.
//!
//! Runs the dependency miner (bb-core's implementation of the paper's
//! proposed "automated mechanism... to verify dependency declarations")
//! against the conventional commercial TV boot: observe edge slack,
//! verify removal candidates by re-execution, and report the prunable
//! declarations — which include the §4.2 `Before=var.mount` abusers.

use bb_core::{mine, BbConfig, MiningReport};
use bb_workloads::tv_scenario;

/// Runs the experiment (bounded verification re-runs).
pub fn run() -> MiningReport {
    mine(&tv_scenario(), &BbConfig::conventional(), 12).expect("scenario valid")
}

/// Text rendering.
pub fn render(report: &MiningReport) -> String {
    let mut s = report.render(12);
    s.push_str(
        "  (§5: developers over-declare; the miner finds declarations that\n   never gated anything and verifies their removal by re-running)\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miner_prunes_without_breaking_the_tv_boot() {
        let report = run();
        assert!(!report.verified_removable.is_empty(), "nothing prunable");
        assert!(report.pruned_boot <= report.baseline_boot);
        // Some of the §4.2 abusers' var.mount orderings should be among
        // the observed edges.
        assert!(report
            .edges
            .iter()
            .any(|e| e.dst.as_str() == "var.mount" || e.src.as_str() == "var.mount"));
    }
}
