//! E14 — §4: BB across device classes.
//!
//! "BB has been applied to diverse devices, including mobile phones
//! (Samsung Z1 and Z3), wearable devices (Gear series), digital cameras
//! (NX series), and other home appliances." This sweep boots a scaled
//! workload on each machine profile and shows that the win generalizes
//! — cold boot improves on every class, with the largest factors where
//! service counts are highest.
//!
//! The device matrix is one bb-fleet grid (one cell per device class)
//! executed on the work-stealing pool.

use bb_fleet::{run_sweep, CellSpec, FleetCache, PoolConfig, SweepSpec};
use bb_sim::SimTime;
use bb_workloads::{profiles, TizenParams};

/// One device's result.
#[derive(Debug)]
pub struct DeviceResult {
    /// Device name.
    pub device: &'static str,
    /// Services in its stack.
    pub services: usize,
    /// Conventional boot.
    pub conventional: SimTime,
    /// Full-BB boot.
    pub bb: SimTime,
}

impl DeviceResult {
    /// Relative reduction in percent.
    pub fn reduction_percent(&self) -> f64 {
        100.0 * (self.conventional.as_nanos() as f64 - self.bb.as_nanos() as f64)
            / self.conventional.as_nanos() as f64
    }
}

/// The E14 output.
#[derive(Debug)]
pub struct Devices {
    /// Results per device class.
    pub results: Vec<DeviceResult>,
}

/// Runs the experiment.
pub fn run() -> Devices {
    let cases = [
        ("UE48H6200 TV", profiles::ue48h6200(), 250usize, 2016u64),
        ("JS9500 flagship TV", profiles::js9500(), 250, 2016),
        ("Z1-class phone", profiles::galaxy_s6(), 180, 71),
        ("NX300 camera", profiles::nx300(), 40, 300),
        ("Gear wearable", profiles::nx300(), 30, 77),
    ];
    let mut spec = SweepSpec::new();
    for (device, profile, services, seed) in cases.iter().cloned() {
        spec = spec.cell(
            CellSpec::tizen(
                device,
                profile,
                TizenParams {
                    services,
                    seed,
                    false_ordering_edges: 4 + services / 30,
                    ..TizenParams::default()
                },
            )
            .conventional_vs_bb(),
        );
    }
    let outcome = run_sweep(&spec, &PoolConfig::default(), &FleetCache::fresh());
    let results = cases
        .iter()
        .zip(&outcome.report.cells)
        .map(|((device, _, services, _), cell)| {
            assert_eq!(
                cell.completed, cell.seeds,
                "{device}: {:?}",
                outcome.report.failures
            );
            // One seed per cell: min == the single sample, exactly.
            DeviceResult {
                device,
                services: *services,
                conventional: SimTime::from_nanos(cell.configs[0].min_ns),
                bb: SimTime::from_nanos(cell.configs[1].min_ns),
            }
        })
        .collect();
    Devices { results }
}

impl Devices {
    /// Text rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "BB across device classes (§4: deployed beyond TVs):");
        let _ = writeln!(
            s,
            "  {:<22} {:>9} {:>14} {:>12} {:>10}",
            "device", "services", "conventional", "bb", "reduction"
        );
        for r in &self.results {
            let _ = writeln!(
                s,
                "  {:<22} {:>9} {:>14} {:>12} {:>9.1}%",
                r.device,
                r.services,
                r.conventional.to_string(),
                r.bb.to_string(),
                r.reduction_percent()
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bb_improves_every_device_class() {
        let d = run();
        assert_eq!(d.results.len(), 5);
        for r in &d.results {
            assert!(
                r.bb < r.conventional,
                "{}: bb {} !< conventional {}",
                r.device,
                r.bb,
                r.conventional
            );
            assert!(r.reduction_percent() > 5.0, "{} barely improved", r.device);
        }
    }

    #[test]
    fn richer_stacks_gain_more() {
        let d = run();
        let tv = d
            .results
            .iter()
            .find(|r| r.device.contains("UE48"))
            .unwrap();
        let wearable = d
            .results
            .iter()
            .find(|r| r.device.contains("Gear"))
            .unwrap();
        assert!(
            tv.reduction_percent() > wearable.reduction_percent(),
            "tv {:.1}% vs wearable {:.1}%",
            tv.reduction_percent(),
            wearable.reduction_percent()
        );
        assert!(run().render().contains("device"));
    }
}
