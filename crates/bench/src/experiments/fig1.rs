//! E1 — Figure 1: the overall boot sequence of a conventional TV.
//!
//! The paper's Figure 1 annotates the boot pipeline (bootloader →
//! kernel → init → services & applications) with phase timings before
//! BB. This experiment runs the calibrated UE48H6200 scenario
//! conventionally and reports the same phase sequence.

use bb_core::{BbConfig, BootRequest};
use bb_sim::SimDuration;
use bb_workloads::tv_scenario;

/// One timeline phase.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Phase name.
    pub name: String,
    /// Duration.
    pub duration: SimDuration,
}

/// The Figure 1 timeline.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Ordered phases.
    pub phases: Vec<Phase>,
    /// End-to-end boot time.
    pub total: SimDuration,
}

/// Runs the experiment.
pub fn run() -> Fig1 {
    let scenario = tv_scenario();
    let report = BootRequest::new(&scenario)
        .config(BbConfig::conventional())
        .run()
        .expect("scenario is valid")
        .report;
    let mut phases = Vec::new();
    for p in &report.kernel.phases {
        phases.push(Phase {
            name: format!("kernel: {}", p.name),
            duration: p.duration,
        });
    }
    phases.push(Phase {
        name: "init: initialization".into(),
        duration: report.boot.init_done.since(report.boot.userspace_start),
    });
    phases.push(Phase {
        name: "init: load+parse units".into(),
        duration: report.boot.load_done.since(report.boot.init_done),
    });
    phases.push(Phase {
        name: "services & applications".into(),
        duration: report.boot.boot_time().since(report.boot.load_done),
    });
    Fig1 {
        phases,
        total: report.boot.boot_time().since(bb_sim::SimTime::ZERO),
    }
}

impl Fig1 {
    /// Text rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "Figure 1 — conventional boot sequence (UE48H6200)");
        let mut at = SimDuration::ZERO;
        for p in &self.phases {
            let _ = writeln!(
                s,
                "  t={:>9} +{:>9}  {}",
                at.to_string(),
                p.duration.to_string(),
                p.name
            );
            at += p.duration;
        }
        let _ = writeln!(s, "  total: {} (paper: ~8.1s conventional)", self.total);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_sum_to_total() {
        let f = run();
        let sum: SimDuration = f.phases.iter().map(|p| p.duration).sum();
        assert_eq!(sum, f.total);
        assert_eq!(f.phases.len(), 8);
    }

    #[test]
    fn services_phase_dominates() {
        // Figure 1's point: after conventional optimization, user-space
        // services dominate the boot time.
        let f = run();
        let services = f.phases.last().unwrap().duration;
        assert!(services.as_nanos() * 2 > f.total.as_nanos());
        let render = run().render();
        assert!(render.contains("services & applications"));
    }
}
