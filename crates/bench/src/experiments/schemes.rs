//! E10 — extension: init-scheme family comparison (§2.5.1/§2.5.2).
//!
//! The same workload executed by the three engine families the paper
//! surveys: serial `rcS`, out-of-order (with and without the bolted-on
//! path-check), and in-order systemd-like. Shows the §2.5.1 hazard —
//! out-of-order boots are *incorrect* when dependencies are unmet — and
//! the performance ordering.

use bb_init::{
    run_boot, BootPlan, EngineConfig, EngineMode, LoadModel, ManagerCosts, PlanOverrides,
    Transaction, UnitGraph,
};
use bb_sim::{AccessPattern, Machine, SimDuration, SimTime};
use bb_workloads::{profiles, tizen_tv, TizenParams};

/// One engine's result.
#[derive(Debug)]
pub struct SchemeResult {
    /// Engine label.
    pub name: &'static str,
    /// Boot completion time (None when the boot broke).
    pub boot_time: Option<SimTime>,
    /// Services that crashed on missing prerequisites.
    pub failed_services: usize,
    /// CPU burned by dependency polling, across all services.
    pub total_cpu: SimDuration,
}

/// The E10 output.
#[derive(Debug)]
pub struct Schemes {
    /// Results per engine.
    pub results: Vec<SchemeResult>,
}

fn run_mode(name: &'static str, mode: EngineMode) -> SchemeResult {
    let params = TizenParams {
        services: 100,
        ..TizenParams::default()
    };
    let profile = profiles::ue48h6200();
    let mut machine = Machine::new(profile.machine);
    let device = machine.add_device("emmc", profile.storage);
    let workload = tizen_tv(&params, device);
    let graph = UnitGraph::build(workload.units.clone()).expect("valid units");
    let transaction = Transaction::build(&graph, &workload.target).expect("acyclic");
    let execution_order = transaction.execution_order(&graph);
    let overrides = PlanOverrides::default();
    let plan = BootPlan {
        graph: &graph,
        transaction: &transaction,
        completion: &workload.completion,
        overrides: &overrides,
        init_tasks: &[],
        service_phase_tasks: &[],
        execution_order: &execution_order,
    };
    let cfg = EngineConfig {
        mode,
        load: LoadModel {
            io_bytes: 128 * 1024,
            pattern: AccessPattern::Random,
            cpu: SimDuration::from_millis(40),
        },
        costs: ManagerCosts::default(),
        device,
    };
    let record = run_boot(&mut machine, &plan, &workload.workloads, &cfg);
    SchemeResult {
        name,
        boot_time: record.completion_time,
        failed_services: record.failed_services().len(),
        total_cpu: machine.processes().iter().map(|p| p.cpu_time).sum(),
    }
}

/// Runs the experiment.
pub fn run() -> Schemes {
    Schemes {
        results: vec![
            run_mode("serial (rcS)", EngineMode::Serial),
            run_mode(
                "out-of-order, no checks",
                EngineMode::OutOfOrder {
                    path_check: false,
                    assert_deps: true,
                },
            ),
            run_mode(
                "out-of-order + path-check",
                EngineMode::OutOfOrder {
                    path_check: true,
                    assert_deps: false,
                },
            ),
            run_mode("in-order (systemd-like)", EngineMode::InOrder),
        ],
    }
}

impl Schemes {
    /// Text rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "Init-scheme families on the 100-service TV workload:");
        let _ = writeln!(
            s,
            "  {:<28} {:>12} {:>8} {:>12}",
            "engine", "boot time", "failed", "total CPU"
        );
        for r in &self.results {
            let bt = r
                .boot_time
                .map(|t| t.to_string())
                .unwrap_or_else(|| "BROKEN".into());
            let _ = writeln!(
                s,
                "  {:<28} {:>12} {:>8} {:>12}",
                r.name,
                bt,
                r.failed_services,
                r.total_cpu.to_string()
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_ordering_matches_the_survey() {
        let s = run();
        let by_name = |n: &str| s.results.iter().find(|r| r.name.starts_with(n)).unwrap();
        let serial = by_name("serial");
        let ooo_broken = by_name("out-of-order, no");
        let ooo_poll = by_name("out-of-order + path-check");
        let inorder = by_name("in-order");

        // Unchecked out-of-order breaks the boot.
        assert!(ooo_broken.failed_services > 0);
        assert!(ooo_broken.boot_time.is_none());
        // Everyone else completes correctly.
        for r in [serial, ooo_poll, inorder] {
            assert!(r.boot_time.is_some(), "{} broke", r.name);
            assert_eq!(r.failed_services, 0);
        }
        // Serial is the slowest; in-order beats path-check polling.
        assert!(serial.boot_time > inorder.boot_time);
        assert!(ooo_poll.boot_time >= inorder.boot_time);
        // Path-check burns more CPU than dependency gating.
        assert!(ooo_poll.total_cpu > inorder.total_cpu);
    }
}
