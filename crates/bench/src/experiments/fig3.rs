//! E3 — Figure 3: how one added dependency disrupts the boot.
//!
//! The paper's Figure 3 shows a new service `c` whose declarations span
//! two service groups: it creates a cycle between the groups, forces one
//! group to be split, and reduces launch parallelism. Three effects are
//! reproduced on a two-group synthetic workload:
//!
//! 1. *Cycle creation*: `c` both after group b's tail and before its
//!    head → the Service Analyzer reports the cycle; a transaction that
//!    requires everyone fails; if `c` is only wanted, it is dropped.
//! 2. *Parallelism loss*: a non-cyclic variant of `c` (after group a's
//!    tail, before group b's head) serializes the two previously
//!    parallel groups and measurably lengthens the boot.

use bb_core::service_engine::{analyze, Finding};
use bb_init::{
    run_boot, BootPlan, EngineConfig, EngineMode, LoadModel, ManagerCosts, PlanOverrides,
    ServiceBody, ServiceType, Transaction, TransactionError, Unit, UnitGraph, UnitName,
    WorkloadMap,
};
use bb_sim::{
    AccessPattern, DeviceProfile, Machine, MachineConfig, OpsBuilder, SimDuration, SimTime,
};

/// Experiment output.
#[derive(Debug)]
pub struct Fig3 {
    /// Boot time with the two groups independent.
    pub baseline: SimTime,
    /// Boot time after the non-cyclic cross-group `c` serializes them.
    pub with_cross_dep: SimTime,
    /// Analyzer findings for the cyclic variant.
    pub cycle_findings: Vec<Finding>,
    /// The transaction error when `c` is required.
    pub required_cycle_error: TransactionError,
    /// Jobs dropped when `c` is merely wanted.
    pub dropped_when_wanted: Vec<UnitName>,
}

const GROUP: usize = 4;

fn chain(prefix: &str) -> Vec<Unit> {
    (0..GROUP)
        .map(|i| {
            let mut u = Unit::new(UnitName::new(format!("{prefix}{i}.service")))
                .with_type(ServiceType::Forking)
                .with_exec("body")
                .wanted_by("boot.target");
            if i > 0 {
                u = u.after(&format!("{prefix}{}.service", i - 1));
            }
            u
        })
        .collect()
}

fn boot_time(units: Vec<Unit>) -> SimTime {
    let graph = UnitGraph::build(units).expect("unique names");
    let transaction = Transaction::build(&graph, "boot.target").expect("acyclic");
    let mut machine = Machine::new(MachineConfig {
        cores: 4,
        ..MachineConfig::default()
    });
    let device = machine.add_device("emmc", DeviceProfile::tv_emmc());
    let mut workloads = WorkloadMap::new();
    workloads.insert(
        "body".into(),
        ServiceBody {
            pre_ready: OpsBuilder::new().compute_ms(40).build(),
            post_ready: Vec::new(),
        },
    );
    let completion = vec![
        UnitName::new(format!("a{}.service", GROUP - 1)),
        UnitName::new(format!("b{}.service", GROUP - 1)),
    ];
    let execution_order = transaction.execution_order(&graph);
    let overrides = PlanOverrides::default();
    let plan = BootPlan {
        graph: &graph,
        transaction: &transaction,
        completion: &completion,
        overrides: &overrides,
        init_tasks: &[],
        service_phase_tasks: &[],
        execution_order: &execution_order,
    };
    let cfg = EngineConfig {
        mode: EngineMode::InOrder,
        load: LoadModel {
            io_bytes: 0,
            pattern: AccessPattern::Sequential,
            cpu: SimDuration::ZERO,
        },
        costs: ManagerCosts::default(),
        device,
    };
    run_boot(&mut machine, &plan, &workloads, &cfg).boot_time()
}

/// Runs the experiment.
pub fn run() -> Fig3 {
    let mut base = vec![Unit::new(UnitName::new("boot.target"))];
    base.extend(chain("a"));
    base.extend(chain("b"));
    let baseline = boot_time(base.clone());

    // Non-cyclic cross-group dependency: c after a's tail, before b's
    // head — group b now waits for all of group a.
    let mut crossed = base.clone();
    crossed.push(
        Unit::new(UnitName::new("c.service"))
            .after(&format!("a{}.service", GROUP - 1))
            .before("b0.service")
            .with_type(ServiceType::Forking)
            .with_exec("body")
            .wanted_by("boot.target"),
    );
    let with_cross_dep = boot_time(crossed);

    // Cyclic variant: c after b's tail AND before b's head.
    let mut cyclic = base.clone();
    cyclic.push(
        Unit::new(UnitName::new("c.service"))
            .after(&format!("b{}.service", GROUP - 1))
            .before("b0.service")
            .with_type(ServiceType::Forking)
            .with_exec("body")
            .wanted_by("boot.target"),
    );
    let graph = UnitGraph::build(cyclic.clone()).expect("unique names");
    let cycle_findings = analyze(&graph);
    // When c is only wanted, the transaction drops it.
    let tx = Transaction::build(&graph, "boot.target").expect("weak cycle is broken");
    let dropped_when_wanted = tx
        .dropped_jobs
        .iter()
        .map(|&j| graph.unit(j).name.clone())
        .collect();
    // When c is required (as is every cycle member), the cycle is fatal.
    let mut required = cyclic;
    let all_names: Vec<String> = required[1..]
        .iter()
        .map(|u| u.name.as_str().to_owned())
        .collect();
    for name in &all_names {
        required[0] = required[0].clone().requires(name);
    }
    let graph2 = UnitGraph::build(required).expect("unique names");
    let required_cycle_error =
        Transaction::build(&graph2, "boot.target").expect_err("hard cycle is fatal");

    Fig3 {
        baseline,
        with_cross_dep,
        cycle_findings,
        required_cycle_error,
        dropped_when_wanted,
    }
}

impl Fig3 {
    /// Text rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "Figure 3 — impact of one added cross-group dependency");
        let _ = writeln!(
            s,
            "  two independent 4-service groups boot in      {}",
            self.baseline
        );
        let _ = writeln!(
            s,
            "  after c (After=a3, Before=b0) serializes them {}",
            self.with_cross_dep
        );
        let _ = writeln!(s, "  cyclic variant (After=b3, Before=b0):");
        for f in &self.cycle_findings {
            let _ = writeln!(s, "    analyzer: {f}");
        }
        let _ = writeln!(
            s,
            "    wanted-only c: transaction drops {:?}",
            self.dropped_when_wanted
                .iter()
                .map(|n| n.as_str())
                .collect::<Vec<_>>()
        );
        let _ = writeln!(s, "    required c: {}", self.required_cycle_error);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_dependency_reduces_parallelism() {
        let f = run();
        // Serialized groups take roughly twice as long.
        assert!(
            f.with_cross_dep.as_nanos() as f64 >= f.baseline.as_nanos() as f64 * 1.6,
            "{} vs {}",
            f.with_cross_dep,
            f.baseline
        );
    }

    #[test]
    fn cycle_is_detected_and_handled() {
        let f = run();
        assert!(f
            .cycle_findings
            .iter()
            .any(|x| matches!(x, Finding::OrderingCycle(_))));
        assert_eq!(f.dropped_when_wanted, vec![UnitName::new("c.service")]);
        assert!(matches!(
            f.required_cycle_error,
            TransactionError::OrderingCycle(_)
        ));
        assert!(run().render().contains("ordering cycle"));
    }
}
