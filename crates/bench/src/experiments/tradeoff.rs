//! E7 — §4.3: the costs of BB's two main levers.
//!
//! 1. *Deferred-task overhead.* Deferring a system service makes the
//!    first application that needs it pay its start-up once; later
//!    launches pay nothing. The paper reports <15 ms average overhead
//!    and a standard deviation below 1.5% for dependent applications.
//! 2. *RCU Booster CPU cost.* With no contention the boosted path
//!    consumes more CPU (context switches, mutex handshake) than the
//!    classic spin, which is why the Booster Control disables it after
//!    boot.

use bb_sim::{
    FlagId, Machine, MachineConfig, OpsBuilder, ProcessSpec, RcuMode, RcuParams, SimDuration,
};

/// Deferred-task overhead measurement.
#[derive(Debug)]
pub struct DeferredOverhead {
    /// Number of dependent app launches measured.
    pub launches: usize,
    /// Mean extra latency per launch vs the undeferred baseline.
    pub mean_overhead: SimDuration,
    /// Maximum extra latency (the first launch pays the trigger).
    pub max_overhead: SimDuration,
    /// Overhead of every launch after the first.
    pub steady_state_overhead: SimDuration,
}

/// Launches `n` apps 100 ms apart; each needs a service that is
/// on-demand (triggered by the first user) when `deferred`, or already
/// running when not. Returns per-app latencies.
fn app_latencies(n: usize, deferred: bool, task_cost: SimDuration) -> Vec<SimDuration> {
    let mut m = Machine::new(MachineConfig {
        cores: 4,
        ..MachineConfig::default()
    });
    let request: FlagId = m.flag("svc-requested");
    let ready = m.flag("svc-ready");
    if deferred {
        // The deferred service starts only when first requested.
        m.spawn(ProcessSpec::new(
            "deferred-service",
            OpsBuilder::new()
                .wait_flag(request)
                .compute(task_cost)
                .set_flag(ready)
                .build(),
        ));
    } else {
        // Conventionally it ran during boot; it is already available.
        m.spawn(ProcessSpec::new(
            "boot-time-service",
            OpsBuilder::new().set_flag(ready).build(),
        ));
    }
    for i in 0..n {
        m.spawn_at(
            bb_sim::SimTime::from_nanos(100_000_000 * (i as u64 + 1)),
            ProcessSpec::new(
                format!("app-{i:02}"),
                OpsBuilder::new()
                    .set_flag(request)
                    .wait_flag(ready)
                    .compute_ms(25)
                    .build(),
            ),
        );
    }
    m.run();
    let tl = m.trace().process_timeline();
    let mut latencies: Vec<(String, SimDuration)> = tl
        .values()
        .filter(|t| t.name.starts_with("app-"))
        .map(|t| {
            (
                t.name.clone(),
                t.finished
                    .expect("apps finish")
                    .since(t.spawned.expect("apps spawn")),
            )
        })
        .collect();
    latencies.sort();
    latencies.into_iter().map(|(_, d)| d).collect()
}

/// Runs the deferred-overhead measurement.
pub fn deferred_overhead() -> DeferredOverhead {
    let n = 32;
    let task_cost = SimDuration::from_millis(180);
    let with = app_latencies(n, true, task_cost);
    let without = app_latencies(n, false, task_cost);
    let overheads: Vec<SimDuration> = with
        .iter()
        .zip(&without)
        .map(|(w, wo)| w.saturating_sub(*wo))
        .collect();
    let mean = overheads.iter().copied().sum::<SimDuration>() / n as u64;
    let max = overheads
        .iter()
        .copied()
        .fold(SimDuration::ZERO, SimDuration::max);
    DeferredOverhead {
        launches: n,
        mean_overhead: mean,
        max_overhead: max,
        steady_state_overhead: overheads[n / 2],
    }
}

/// RCU CPU-cost measurement at a given writer concurrency.
#[derive(Debug)]
pub struct RcuCpuCost {
    /// Concurrent synchronizing processes.
    pub writers: usize,
    /// Total CPU consumed, classic spin mode.
    pub classic_cpu: SimDuration,
    /// Total CPU consumed, boosted mode.
    pub boosted_cpu: SimDuration,
    /// Wall time, classic.
    pub classic_wall: SimDuration,
    /// Wall time, boosted.
    pub boosted_wall: SimDuration,
}

/// Runs `writers` processes each doing 20 syncs on a 4-core machine.
pub fn rcu_cpu_cost(writers: usize) -> RcuCpuCost {
    let run = |mode: RcuMode| {
        let mut m = Machine::new(MachineConfig {
            cores: 4,
            rcu_mode: mode,
            rcu_params: RcuParams::default(),
            ..MachineConfig::default()
        });
        for i in 0..writers {
            m.spawn(ProcessSpec::new(
                format!("writer-{i}"),
                OpsBuilder::new()
                    .rcu_syncs(20, SimDuration::from_micros(100))
                    .build(),
            ));
        }
        let out = m.run();
        let cpu: SimDuration = m.processes().iter().map(|p| p.cpu_time).sum();
        (cpu, out.end_time.saturating_since(bb_sim::SimTime::ZERO))
    };
    let (classic_cpu, classic_wall) = run(RcuMode::ClassicSpin);
    let (boosted_cpu, boosted_wall) = run(RcuMode::Boosted);
    RcuCpuCost {
        writers,
        classic_cpu,
        boosted_cpu,
        classic_wall,
        boosted_wall,
    }
}

/// The full E7 output.
#[derive(Debug)]
pub struct Tradeoff {
    /// Deferred-task overhead.
    pub deferred: DeferredOverhead,
    /// RCU CPU/wall costs at 1, 2, 8, and 32 writers.
    pub rcu: Vec<RcuCpuCost>,
}

/// Runs the experiment.
pub fn run() -> Tradeoff {
    Tradeoff {
        deferred: deferred_overhead(),
        rcu: [1, 2, 8, 32].into_iter().map(rcu_cpu_cost).collect(),
    }
}

impl Tradeoff {
    /// Text rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let d = &self.deferred;
        let _ = writeln!(s, "§4.3 trade-offs");
        let _ = writeln!(
            s,
            "  deferred-task overhead over {} app launches: mean {} max {} steady-state {}",
            d.launches, d.mean_overhead, d.max_overhead, d.steady_state_overhead
        );
        let _ = writeln!(s, "  (paper: <15 ms average; only the first trigger pays)");
        let _ = writeln!(
            s,
            "  RCU waiter cost (20 syncs/writer, 4 cores):\n  {:>8} {:>14} {:>14} {:>13} {:>13}",
            "writers", "classic CPU", "boosted CPU", "classic wall", "boosted wall"
        );
        for r in &self.rcu {
            let _ = writeln!(
                s,
                "  {:>8} {:>14} {:>14} {:>13} {:>13}",
                r.writers,
                r.classic_cpu.to_string(),
                r.boosted_cpu.to_string(),
                r.classic_wall.to_string(),
                r.boosted_wall.to_string()
            );
        }
        let _ = writeln!(
            s,
            "  (paper: boosted costs more CPU with 0-1 writers; wins under contention)"
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deferred_overhead_is_small_and_first_launch_only() {
        let d = deferred_overhead();
        assert!(
            d.mean_overhead < SimDuration::from_millis(15),
            "mean overhead {} exceeds the paper's 15 ms",
            d.mean_overhead
        );
        // The first launch pays (max is large); steady state is free.
        assert!(d.max_overhead >= SimDuration::from_millis(100));
        assert!(d.steady_state_overhead < SimDuration::from_millis(1));
    }

    #[test]
    fn boosted_rcu_costs_more_cpu_uncontended() {
        let r = rcu_cpu_cost(1);
        assert!(
            r.boosted_cpu > r.classic_cpu,
            "boosted should pay ctx-switch CPU: {} vs {}",
            r.boosted_cpu,
            r.classic_cpu
        );
    }

    #[test]
    fn classic_spin_burns_cpu_under_contention() {
        let r = rcu_cpu_cost(32);
        assert!(
            r.classic_cpu > r.boosted_cpu * 3,
            "classic {} vs boosted {}",
            r.classic_cpu,
            r.boosted_cpu
        );
        // Spinning also *blocks submission concurrency* (a spinner holds
        // its core, so other writers cannot even call synchronize_rcu),
        // which defeats grace-period batching: classic wall time is
        // strictly worse under heavy contention.
        assert!(r.boosted_wall < r.classic_wall);
    }
}
