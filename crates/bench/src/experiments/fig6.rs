//! E5 — Figure 6: the headline result.
//!
//! Conventional vs full-BB boot of the calibrated UE48H6200 scenario,
//! with the paper's per-step breakdown and a per-feature attribution
//! computed two ways: single-feature (conventional + one mechanism) and
//! leave-one-out (full BB minus one mechanism).

use bb_core::{boost, BbConfig, Comparison, FullBootReport};
use bb_sim::{SimDuration, SimTime};
use bb_workloads::tv_scenario;

/// Per-feature attribution row.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Feature name.
    pub feature: &'static str,
    /// Boot-time saving when added alone to the conventional boot.
    pub single_saving: SimDuration,
    /// Boot-time cost when removed from the full BB.
    pub leave_one_out_cost: SimDuration,
    /// The paper's reported saving for the closest step, if stated.
    pub paper_ms: Option<u64>,
}

/// The Figure 6 experiment output.
#[derive(Debug)]
pub struct Fig6 {
    /// Conventional run.
    pub conventional: FullBootReport,
    /// Full BB run.
    pub bb: FullBootReport,
    /// Phase comparison.
    pub comparison: Comparison,
    /// Per-feature attribution.
    pub attribution: Vec<Attribution>,
}

/// Paper-reported per-feature savings (milliseconds), for side-by-side
/// reporting: RCU Booster 1828 (2289→461), BB Group 1101, Deferred
/// Executor 496, On-demand Modularizer 428, Pre-parser 381 (150+231),
/// memory init 260 (370→110), journal deferral 35 (110→75), init tasks
/// 124 (195→71).
pub fn paper_savings(feature: &str) -> Option<u64> {
    Some(match feature {
        "rcu_booster" => 1828,
        "bb_group" => 1101,
        "deferred_executor" => 496 + 124,
        "ondemand_modularizer" => 428,
        "preparser" => 381,
        "defer_memory" => 260,
        "defer_journal" => 35,
        _ => return None,
    })
}

/// Runs the experiment.
pub fn run() -> Fig6 {
    let scenario = tv_scenario();
    let conventional = boost(&scenario, &BbConfig::conventional()).expect("valid");
    let bb = boost(&scenario, &BbConfig::full()).expect("valid");
    let conv_t = conventional.boot_time();
    let bb_t = bb.boot_time();

    let mut attribution = Vec::new();
    let singles = BbConfig::single_feature_configs();
    let loos = BbConfig::leave_one_out_configs();
    for ((feature, single_cfg), (feature2, loo_cfg)) in singles.into_iter().zip(loos) {
        assert_eq!(feature, feature2);
        let single_t = boost(&scenario, &single_cfg).expect("valid").boot_time();
        let loo_t = boost(&scenario, &loo_cfg).expect("valid").boot_time();
        attribution.push(Attribution {
            feature,
            single_saving: SimTime::saturating_since(conv_t, single_t),
            leave_one_out_cost: SimTime::saturating_since(loo_t, bb_t),
            paper_ms: paper_savings(feature),
        });
    }
    let comparison = Comparison::build(&conventional, &bb);
    Fig6 {
        conventional,
        bb,
        comparison,
        attribution,
    }
}

impl Fig6 {
    /// Text rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Figure 6 — conventional vs Booting Booster (UE48H6200, 250 services)\n"
        );
        s.push_str(&self.comparison.to_table());
        let _ = writeln!(
            s,
            "\n  paper: 8.1 s -> 3.5 s (-57%); BB group: {:?}",
            self.bb
                .bb_group
                .iter()
                .map(|n| n.as_str())
                .collect::<Vec<_>>()
        );
        let _ = writeln!(s, "\nPer-feature attribution (ablations):");
        let _ = writeln!(
            s,
            "  {:<22} {:>14} {:>16} {:>12}",
            "feature", "single-saving", "leave-one-out", "paper"
        );
        for a in &self.attribution {
            let paper = a
                .paper_ms
                .map(|ms| format!("{ms}ms"))
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                s,
                "  {:<22} {:>14} {:>16} {:>12}",
                a.feature,
                a.single_saving.to_string(),
                a.leave_one_out_cost.to_string(),
                paper
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_bands_hold() {
        let f = run();
        let conv = f.conventional.boot_time().as_secs_f64();
        let bb = f.bb.boot_time().as_secs_f64();
        assert!((7.0..9.2).contains(&conv), "conv {conv}");
        assert!((3.0..4.0).contains(&bb), "bb {bb}");
        assert_eq!(f.attribution.len(), 7);
        assert!(f.render().contains("Per-feature attribution"));
    }

    #[test]
    fn rcu_and_group_dominate_attribution() {
        // The paper's two largest levers are the RCU Booster (1828 ms)
        // and BB Group isolation (1101 ms); they should dominate the
        // single-feature savings here as well.
        let f = run();
        let get = |name: &str| {
            f.attribution
                .iter()
                .find(|a| a.feature == name)
                .unwrap()
                .single_saving
        };
        let rcu = get("rcu_booster");
        let group = get("bb_group");
        for other in ["defer_memory", "defer_journal", "preparser"] {
            assert!(rcu > get(other), "rcu {} <= {other} {}", rcu, get(other));
            assert!(group > get(other), "group {} <= {other}", group);
        }
    }
}
