//! E5 — Figure 6: the headline result.
//!
//! Conventional vs full-BB boot of the calibrated UE48H6200 scenario,
//! with the paper's per-step breakdown and per-pass attribution read
//! directly from the full-BB boot's [`PassDelta`] provenance — two
//! boots total, where the pre-pipeline version re-ran 14 per-feature
//! ablation boots to recover the same table. The delta estimates are
//! cross-checked against a real ablation sweep in the workspace
//! integration test `tests/pipeline_attribution.rs`.

use bb_core::pipeline::PassDelta;
use bb_core::{attribution_table, BbConfig, BootRequest, Comparison, FullBootReport};
use bb_workloads::tv_scenario;

/// Per-pass attribution row, derived from the single full-BB boot.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Pipeline pass name.
    pub pass: &'static str,
    /// What the pass changed in the plan (counts + estimated saving).
    pub delta: PassDelta,
    /// The paper's reported saving for the closest step, if stated.
    pub paper_ms: Option<u64>,
}

/// The Figure 6 experiment output.
#[derive(Debug)]
pub struct Fig6 {
    /// Conventional run.
    pub conventional: FullBootReport,
    /// Full BB run.
    pub bb: FullBootReport,
    /// Phase comparison.
    pub comparison: Comparison,
    /// Per-pass attribution from the full-BB boot's deltas.
    pub attribution: Vec<Attribution>,
}

/// Paper-reported savings (milliseconds) for the closest pipeline pass:
/// RCU Booster 1828 (2289→461), BB Group 1101 (attributed to the
/// isolator row; the paper does not split isolation from manager
/// prioritization), Deferred Executor 496 + 124 init tasks + 35
/// journal deferral, On-demand Modularizer 428, Pre-parser 381
/// (150+231), memory init 260 (370→110).
pub fn paper_savings(pass: &str) -> Option<u64> {
    Some(match pass {
        "rcu-booster" => 1828,
        "group-isolator" => 1101,
        "deferred-executor" => 496 + 124 + 35,
        "ondemand-modularizer" => 428,
        "pre-parser" => 381,
        "defer-memory-init" => 260,
        _ => return None,
    })
}

/// Runs the experiment: exactly two boots (conventional + full BB); the
/// per-pass table comes from the BB boot's deltas.
pub fn run() -> Fig6 {
    let scenario = tv_scenario();
    let conventional = BootRequest::new(&scenario)
        .config(BbConfig::conventional())
        .run()
        .expect("valid")
        .report;
    let bb = BootRequest::new(&scenario).run().expect("valid").report;

    let attribution = bb
        .deltas
        .iter()
        .map(|d| Attribution {
            pass: d.pass,
            delta: d.clone(),
            paper_ms: paper_savings(d.pass),
        })
        .collect();
    let comparison = Comparison::build(&conventional, &bb);
    Fig6 {
        conventional,
        bb,
        comparison,
        attribution,
    }
}

impl Fig6 {
    /// Text rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Figure 6 — conventional vs Booting Booster (UE48H6200, 250 services)\n"
        );
        s.push_str(&self.comparison.to_table());
        let _ = writeln!(
            s,
            "\n  paper: 8.1 s -> 3.5 s (-57%); BB group: {:?}",
            self.bb
                .bb_group
                .iter()
                .map(|n| n.as_str())
                .collect::<Vec<_>>()
        );
        let _ = writeln!(
            s,
            "\nPer-feature attribution (from the full-BB boot's pass deltas):"
        );
        s.push_str(&attribution_table(&self.bb.deltas));
        let _ = writeln!(s, "\n  {:<22} {:>12}", "pass", "paper");
        for a in &self.attribution {
            let paper = a
                .paper_ms
                .map(|ms| format!("{ms}ms"))
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(s, "  {:<22} {:>12}", a.pass, paper);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_core::STANDARD_PASSES;

    #[test]
    fn headline_bands_hold() {
        let f = run();
        let conv = f.conventional.boot_time().as_secs_f64();
        let bb = f.bb.boot_time().as_secs_f64();
        assert!((7.0..9.2).contains(&conv), "conv {conv}");
        assert!((3.0..4.0).contains(&bb), "bb {bb}");
        assert_eq!(f.attribution.len(), 7);
        let passes: Vec<&str> = f.attribution.iter().map(|a| a.pass).collect();
        assert_eq!(passes, STANDARD_PASSES);
        assert!(f.render().contains("Per-feature attribution"));
    }

    #[test]
    fn rcu_and_group_dominate_attribution() {
        // The paper's two largest levers are the RCU Booster (1828 ms)
        // and BB Group handling (1101 ms); their delta estimates should
        // dominate the small serial passes here as well.
        let f = run();
        let get = |name: &str| {
            f.attribution
                .iter()
                .find(|a| a.pass == name)
                .unwrap()
                .delta
                .estimated_saving
        };
        let rcu = get("rcu-booster");
        let group = get("group-isolator") + get("bb-manager-priority");
        for other in ["defer-memory-init", "pre-parser"] {
            assert!(rcu > get(other), "rcu {} <= {other} {}", rcu, get(other));
            assert!(group > get(other), "group {} <= {other}", group);
        }
    }
}
