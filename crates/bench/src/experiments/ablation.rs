//! E9 — extension: ablation and scaling sweeps.
//!
//! Beyond the paper's single-platform evaluation, these sweeps probe the
//! design space the paper argues about qualitatively: how BB's win
//! scales with the number of services (the "number of nodes almost
//! doubled" pressure of §2.5) and with core count (the §1 observation
//! that more cores alone do not fix booting because dependencies and
//! synchronization serialize the work).
//!
//! Both sweeps are expressed as one bb-fleet grid — one cell per sweep
//! coordinate, booted conventional-vs-BB on the work-stealing pool —
//! and read back from the deterministic aggregated report.

use bb_fleet::{run_sweep, CellSpec, FleetCache, PoolConfig, SweepReport, SweepSpec};
use bb_sim::SimTime;
use bb_workloads::{profiles, TizenParams};

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Sweep coordinate label.
    pub label: String,
    /// Conventional boot time.
    pub conventional: SimTime,
    /// Full-BB boot time.
    pub bb: SimTime,
}

impl Point {
    /// Relative reduction in percent.
    pub fn reduction_percent(&self) -> f64 {
        100.0 * (self.conventional.as_nanos() as f64 - self.bb.as_nanos() as f64)
            / self.conventional.as_nanos() as f64
    }
}

/// The E9 output.
#[derive(Debug)]
pub struct Ablation {
    /// Boot time vs service count (4 cores).
    pub service_sweep: Vec<Point>,
    /// Boot time vs core count (250 services).
    pub core_sweep: Vec<Point>,
}

fn cell(label: &str, services: usize, cores: usize) -> CellSpec {
    let mut profile = profiles::ue48h6200();
    profile.machine.cores = cores;
    let params = TizenParams {
        services,
        false_ordering_edges: 12 + services / 40,
        ..TizenParams::default()
    };
    // Ablation cells are pass-set selections over the standard pipeline:
    // the empty set is the conventional boot, the full set is BB.
    CellSpec::tizen(label, profile, params)
        .pass_selection("conventional", &[])
        .pass_selection("bb", &bb_core::STANDARD_PASSES)
}

fn point(report: &SweepReport, idx: usize) -> Point {
    let cell = &report.cells[idx];
    assert_eq!(
        cell.completed, cell.seeds,
        "{}: {:?}",
        cell.label, report.failures
    );
    // One seed per cell, so min == the single sample (exact, no float).
    Point {
        label: cell.label.clone(),
        conventional: SimTime::from_nanos(cell.configs[0].min_ns),
        bb: SimTime::from_nanos(cell.configs[1].min_ns),
    }
}

const SERVICE_SWEEP: [usize; 4] = [64, 136, 250, 400];
const CORE_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Runs the experiment.
pub fn run() -> Ablation {
    let mut spec = SweepSpec::new();
    for n in SERVICE_SWEEP {
        spec = spec.cell(cell(&format!("{n} services"), n, 4));
    }
    for c in CORE_SWEEP {
        spec = spec.cell(cell(&format!("{c} cores"), 250, c));
    }
    let outcome = run_sweep(&spec, &PoolConfig::default(), &FleetCache::fresh());
    let report = &outcome.report;
    Ablation {
        service_sweep: (0..SERVICE_SWEEP.len()).map(|i| point(report, i)).collect(),
        core_sweep: (0..CORE_SWEEP.len())
            .map(|i| point(report, SERVICE_SWEEP.len() + i))
            .collect(),
    }
}

impl Ablation {
    /// Text rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let mut table = |title: &str, points: &[Point]| {
            let _ = writeln!(s, "{title}");
            let _ = writeln!(
                s,
                "  {:<16} {:>14} {:>14} {:>10}",
                "point", "conventional", "bb", "reduction"
            );
            for p in points {
                let _ = writeln!(
                    s,
                    "  {:<16} {:>14} {:>14} {:>9.1}%",
                    p.label,
                    p.conventional.to_string(),
                    p.bb.to_string(),
                    p.reduction_percent()
                );
            }
        };
        table("Scaling with service count (4 cores):", &self.service_sweep);
        table("Scaling with core count (250 services):", &self.core_sweep);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bb_wins_everywhere_and_grows_with_services() {
        let a = run();
        for p in a.service_sweep.iter().chain(&a.core_sweep) {
            assert!(
                p.bb < p.conventional,
                "{}: {} vs {}",
                p.label,
                p.bb,
                p.conventional
            );
        }
        // Conventional boot degrades with service count much faster
        // than BB (whose completion is pinned to the critical chain).
        let conv_growth = a.service_sweep.last().unwrap().conventional.as_nanos() as f64
            / a.service_sweep[0].conventional.as_nanos() as f64;
        let bb_growth = a.service_sweep.last().unwrap().bb.as_nanos() as f64
            / a.service_sweep[0].bb.as_nanos() as f64;
        assert!(
            conv_growth > bb_growth * 1.5,
            "conv x{conv_growth:.2} vs bb x{bb_growth:.2}"
        );
    }

    #[test]
    fn more_cores_help_conventional_but_bb_keeps_winning() {
        let a = run();
        let conv1 = a.core_sweep[0].conventional;
        let conv8 = a.core_sweep.last().unwrap().conventional;
        assert!(conv8 < conv1, "cores should help: {conv8} vs {conv1}");
        // Even at 8 cores the conventional boot does not reach BB at 4
        // cores — parallelism alone does not fix dependencies (§1).
        let bb4 = &a.core_sweep[2];
        assert!(
            conv8 > bb4.bb,
            "8-core conventional {conv8} vs 4-core BB {}",
            bb4.bb
        );
    }
}
