//! Pre-parsed unit cache: the binary format behind the Pre-parser.
//!
//! "Pre-parser parses such service configuration files beforehand and
//! allows systemd to read pre-parsed data and to skip reading and
//! parsing the configuration files at boot time" (§3.3). The paper
//! attributes 150 ms of "loading services" and 231 ms of "parsing
//! service dependencies" savings to it (Figure 6(d)).
//!
//! This module implements the cache as a compact, versioned, hand-rolled
//! binary encoding of parsed [`Unit`]s (the sanctioned dependency set
//! offers no serde *format* crate, so the codec is explicit — which also
//! makes the on-disk layout auditable). Encoding and decoding round-trip
//! exactly; the `preparser` Criterion bench measures real text-parse vs
//! cache-load time on this code.

use crate::unit::{ExecConfig, IoSchedulingClass, RestartPolicy, ServiceType, Unit, UnitName};

/// Magic + version header of a cache blob. Version 2 added the
/// supervision fields (`Restart=`, `RestartSec=`, start limits,
/// `OnFailure=`); version 3 added the integrity envelope (a content
/// hash of the source unit set after the magic, and a trailing CRC over
/// the whole blob). Blobs from older versions are rejected with
/// [`CodecError::UnsupportedVersion`]; non-cache bytes with
/// [`CodecError::BadMagic`].
///
/// Supervision data is flagged in the service-type byte
/// (`FLAG_SUPERVISION`, `FLAG_ON_FAILURE`) and encoded only for
/// units that actually carry it, so a unit set without `Restart=` or
/// `OnFailure=` encodes to exactly as many bytes as it did under v1 —
/// the simulated cache-load I/O (and with it the calibration pins) is
/// unchanged for unsupervised boots. The v3 integrity envelope is a
/// *constant* 12 bytes ([`INTEGRITY_OVERHEAD`]), which the Pre-parser's
/// load model subtracts, so it too leaves the calibration pins alone.
pub const MAGIC: &[u8; 6] = b"BBPP\x03\x00";

/// The first bytes every cache blob shares across versions; what
/// distinguishes "an old cache" from "not a cache at all".
const MAGIC_PREFIX: &[u8; 4] = b"BBPP";

/// Bytes the v3 integrity envelope adds over the v2 layout: the u64
/// content hash after the magic plus the trailing u32 CRC. Constant for
/// any unit set, so cost models can subtract it.
pub const INTEGRITY_OVERHEAD: usize = 8 + 4;

/// Minimum size of a well-formed blob: magic, content hash, unit
/// count, trailing CRC (the empty unit set).
const MIN_BLOB_LEN: usize = MAGIC.len() + 8 + 4 + 4;

/// Service-type flag bit: a supervision tail (`Restart=`,
/// `RestartSec=`, `StartLimitBurst=`, `StartLimitIntervalSec=`)
/// follows the fixed exec fields.
const FLAG_SUPERVISION: u8 = 0x80;

/// Service-type flag bit: an `OnFailure=` name list follows.
const FLAG_ON_FAILURE: u8 = 0x40;

/// Decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Blob does not start with the `BBPP` cache prefix — these bytes
    /// were never a unit cache.
    BadMagic,
    /// Blob carries the cache prefix but a different format version —
    /// a genuine cache from another build (e.g. left behind by a
    /// firmware update), distinguishable from garbage so recovery
    /// reports can say "stale format", not "corrupt".
    UnsupportedVersion {
        /// Version byte recorded in the blob.
        found: u8,
    },
    /// The blob's bytes do not hash to its trailing CRC: damaged after
    /// it was written (bit flip, torn write, zeroed page).
    ChecksumMismatch {
        /// CRC recorded in the blob.
        found: u32,
        /// CRC computed over the blob as read.
        expected: u32,
    },
    /// Blob ended mid-structure.
    Truncated,
    /// A decoded string was not UTF-8.
    BadString,
    /// A decoded enum discriminant was unknown.
    BadEnum(u8),
    /// A decoded unit name had no recognized suffix.
    BadUnitName(String),
    /// Trailing bytes after the last unit.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a unit cache blob"),
            CodecError::UnsupportedVersion { found } => {
                write!(f, "unit cache format version {found} is not supported")
            }
            CodecError::ChecksumMismatch { found, expected } => write!(
                f,
                "unit cache CRC {found:#010x} does not match computed {expected:#010x}"
            ),
            CodecError::Truncated => write!(f, "truncated unit cache"),
            CodecError::BadString => write!(f, "invalid UTF-8 in unit cache"),
            CodecError::BadEnum(d) => write!(f, "unknown discriminant {d}"),
            CodecError::BadUnitName(n) => write!(f, "invalid unit name {n:?}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes units into a cache blob.
///
/// # Examples
///
/// ```
/// use bb_init::{decode_units, encode_units, Unit, UnitName};
///
/// let units = vec![Unit::new(UnitName::new("dbus.service")).needs("var.mount")];
/// let blob = encode_units(&units);
/// assert_eq!(decode_units(&blob).unwrap(), units);
/// ```
pub fn encode_units(units: &[Unit]) -> Vec<u8> {
    let payload = encode_unit_payload(units);
    let mut out = Vec::with_capacity(MIN_BLOB_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    put_u64(&mut out, fnv1a64(&payload));
    put_u32(&mut out, units.len() as u32);
    out.extend_from_slice(&payload);
    let crc = fnv1a32(&out);
    put_u32(&mut out, crc);
    out
}

/// FNV-1a content hash of a unit set — the generation stamp stored in
/// every blob. A firmware update that edits any unit changes this hash,
/// so a cached blob written before the update no longer matches the
/// live unit set ([`blob_content_hash`] reads the stored stamp for the
/// comparison).
pub fn unit_set_hash(units: &[Unit]) -> u64 {
    fnv1a64(&encode_unit_payload(units))
}

/// The content hash stored in `blob`'s header, after validating the
/// container (magic, version, CRC). Compare with [`unit_set_hash`] of
/// the live unit set to detect a stale cache.
///
/// # Errors
///
/// The same container errors as [`decode_units`]; the unit payload
/// itself is not decoded.
pub fn blob_content_hash(blob: &[u8]) -> Result<u64, CodecError> {
    verify_container(blob)?;
    let at = MAGIC.len();
    Ok(u64::from_le_bytes(
        blob[at..at + 8].try_into().expect("8 bytes"),
    ))
}

/// Checks the container envelope: magic prefix, format version, and
/// the trailing CRC over everything before it. Returns the body (blob
/// minus the CRC) for the structural decoder.
fn verify_container(blob: &[u8]) -> Result<&[u8], CodecError> {
    if blob.len() < MAGIC.len() {
        return Err(CodecError::Truncated);
    }
    if &blob[..MAGIC_PREFIX.len()] != MAGIC_PREFIX {
        return Err(CodecError::BadMagic);
    }
    if blob[..MAGIC.len()] != MAGIC[..] {
        return Err(CodecError::UnsupportedVersion { found: blob[4] });
    }
    if blob.len() < MIN_BLOB_LEN {
        return Err(CodecError::Truncated);
    }
    let body = &blob[..blob.len() - 4];
    let found = u32::from_le_bytes(blob[blob.len() - 4..].try_into().expect("4 bytes"));
    let expected = fnv1a32(body);
    if found != expected {
        return Err(CodecError::ChecksumMismatch { found, expected });
    }
    Ok(body)
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Encodes the unit records alone — the bytes the content hash covers.
fn encode_unit_payload(units: &[Unit]) -> Vec<u8> {
    let mut out = Vec::with_capacity(units.len() * 128);
    for u in units {
        put_str(&mut out, u.name.as_str());
        put_str(&mut out, &u.description);
        put_str_list(&mut out, &u.documentation);
        for list in [
            &u.after,
            &u.before,
            &u.requires,
            &u.wants,
            &u.conflicts,
            &u.wanted_by,
            &u.required_by,
        ] {
            put_name_list(&mut out, list);
        }
        match &u.condition_path_exists {
            Some(p) => {
                out.push(1);
                put_str(&mut out, p);
            }
            None => out.push(0),
        }
        out.push(u.default_dependencies as u8);
        let defaults = ExecConfig::default();
        let supervised = u.exec.restart != defaults.restart
            || u.exec.restart_sec_ms != defaults.restart_sec_ms
            || u.exec.start_limit_burst != defaults.start_limit_burst
            || u.exec.start_limit_interval_ms != defaults.start_limit_interval_ms;
        let mut type_byte = match u.exec.service_type {
            ServiceType::Simple => 0,
            ServiceType::Forking => 1,
            ServiceType::Oneshot => 2,
            ServiceType::Notify => 3,
        };
        if supervised {
            type_byte |= FLAG_SUPERVISION;
        }
        if !u.on_failure.is_empty() {
            type_byte |= FLAG_ON_FAILURE;
        }
        out.push(type_byte);
        match &u.exec.exec_start {
            Some(e) => {
                out.push(1);
                put_str(&mut out, e);
            }
            None => out.push(0),
        }
        out.push(u.exec.nice as u8);
        out.push(match u.exec.io_class {
            IoSchedulingClass::BestEffort => 0,
            IoSchedulingClass::Idle => 1,
            IoSchedulingClass::Realtime => 2,
        });
        put_u64(&mut out, u.exec.timeout_ms);
        if supervised {
            out.push(match u.exec.restart {
                RestartPolicy::No => 0,
                RestartPolicy::OnFailure => 1,
                RestartPolicy::Always => 2,
            });
            put_u64(&mut out, u.exec.restart_sec_ms);
            put_u32(&mut out, u.exec.start_limit_burst);
            put_u64(&mut out, u.exec.start_limit_interval_ms);
        }
        if !u.on_failure.is_empty() {
            put_name_list(&mut out, &u.on_failure);
        }
    }
    out
}

/// Decodes a cache blob back into units.
///
/// The container envelope (magic, version, trailing CRC) is verified
/// before any structure is decoded, so random damage surfaces as
/// [`CodecError::ChecksumMismatch`] rather than an arbitrary
/// structural error. Never panics on malformed input.
pub fn decode_units(blob: &[u8]) -> Result<Vec<Unit>, CodecError> {
    let body = verify_container(blob)?;
    let mut r = Reader {
        buf: body,
        pos: MAGIC.len() + 8,
    };
    let count = r.u32()? as usize;
    // Each encoded unit occupies at least ~30 bytes (fixed fields plus
    // empty-list length prefixes); bound the allocation by what the blob
    // could possibly hold so a corrupted count cannot trigger a huge
    // allocation before the Truncated error would surface.
    if count > body.len() / 30 + 1 {
        return Err(CodecError::Truncated);
    }
    let mut units = Vec::with_capacity(count);
    for _ in 0..count {
        let name = r.str()?;
        let name = UnitName::parse(&name).map_err(|_| CodecError::BadUnitName(name))?;
        let mut u = Unit::new(name);
        u.description = r.str()?;
        u.documentation = r.str_list()?;
        u.after = r.name_list()?;
        u.before = r.name_list()?;
        u.requires = r.name_list()?;
        u.wants = r.name_list()?;
        u.conflicts = r.name_list()?;
        u.wanted_by = r.name_list()?;
        u.required_by = r.name_list()?;
        u.condition_path_exists = if r.u8()? == 1 { Some(r.str()?) } else { None };
        u.default_dependencies = r.u8()? == 1;
        let type_byte = r.u8()?;
        let supervised = type_byte & FLAG_SUPERVISION != 0;
        let has_on_failure = type_byte & FLAG_ON_FAILURE != 0;
        let defaults = ExecConfig::default();
        let mut exec = ExecConfig {
            service_type: match type_byte & !(FLAG_SUPERVISION | FLAG_ON_FAILURE) {
                0 => ServiceType::Simple,
                1 => ServiceType::Forking,
                2 => ServiceType::Oneshot,
                3 => ServiceType::Notify,
                d => return Err(CodecError::BadEnum(d)),
            },
            exec_start: if r.u8()? == 1 { Some(r.str()?) } else { None },
            nice: r.u8()? as i8,
            io_class: match r.u8()? {
                0 => IoSchedulingClass::BestEffort,
                1 => IoSchedulingClass::Idle,
                2 => IoSchedulingClass::Realtime,
                d => return Err(CodecError::BadEnum(d)),
            },
            timeout_ms: r.u64()?,
            ..defaults
        };
        if supervised {
            exec.restart = match r.u8()? {
                0 => RestartPolicy::No,
                1 => RestartPolicy::OnFailure,
                2 => RestartPolicy::Always,
                d => return Err(CodecError::BadEnum(d)),
            };
            exec.restart_sec_ms = r.u64()?;
            exec.start_limit_burst = r.u32()?;
            exec.start_limit_interval_ms = r.u64()?;
        }
        u.exec = exec;
        if has_on_failure {
            u.on_failure = r.name_list()?;
        }
        units.push(u);
    }
    if r.pos != body.len() {
        return Err(CodecError::TrailingBytes(body.len() - r.pos));
    }
    Ok(units)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_str_list(out: &mut Vec<u8>, list: &[String]) {
    put_u32(out, list.len() as u32);
    for s in list {
        put_str(out, s);
    }
}

fn put_name_list(out: &mut Vec<u8>, list: &[UnitName]) {
    put_u32(out, list.len() as u32);
    for n in list {
        put_str(out, n.as_str());
    }
}

struct Reader<'b> {
    buf: &'b [u8],
    pos: usize,
}

impl<'b> Reader<'b> {
    fn take(&mut self, n: usize) -> Result<&'b [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadString)
    }

    fn str_list(&mut self) -> Result<Vec<String>, CodecError> {
        let len = self.u32()? as usize;
        (0..len).map(|_| self.str()).collect()
    }

    fn name_list(&mut self) -> Result<Vec<UnitName>, CodecError> {
        let len = self.u32()? as usize;
        (0..len)
            .map(|_| {
                let s = self.str()?;
                UnitName::parse(&s).map_err(|_| CodecError::BadUnitName(s))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_units() -> Vec<Unit> {
        vec![
            Unit::new(UnitName::new("dbus.service"))
                .with_description("D-Bus IPC daemon")
                .needs("var.mount")
                .before("fasttv.service")
                .wants("log.service")
                .with_type(ServiceType::Notify)
                .with_exec("dbus-daemon")
                .wanted_by("multi-user.target"),
            {
                let mut u = Unit::new(UnitName::new("var.mount"))
                    .with_type(ServiceType::Oneshot)
                    .with_exec("mount:/var");
                u.condition_path_exists = Some("/dev/mmcblk0p3".into());
                u.exec.nice = -5;
                u.exec.io_class = IoSchedulingClass::Realtime;
                u.exec.timeout_ms = 5000;
                u.default_dependencies = false;
                u.documentation.push("man:mount(8)".into());
                u
            },
            Unit::new(UnitName::new("flaky.service"))
                .with_exec("flaky-daemon")
                .with_restart(RestartPolicy::OnFailure)
                .with_restart_sec_ms(250)
                .with_start_limit_burst(3)
                .on_failure("rescue.service"),
        ]
    }

    #[test]
    fn roundtrip_exact() {
        let units = sample_units();
        let blob = encode_units(&units);
        let back = decode_units(&blob).unwrap();
        assert_eq!(back, units);
    }

    #[test]
    fn empty_set_roundtrips() {
        let blob = encode_units(&[]);
        assert_eq!(decode_units(&blob).unwrap(), Vec::<Unit>::new());
    }

    /// Recomputes the trailing CRC after a test mutated the body, so
    /// structural decode errors stay reachable past the integrity check.
    fn reseal(blob: &mut [u8]) {
        let body_len = blob.len() - 4;
        let crc = fnv1a32(&blob[..body_len]);
        blob[body_len..].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut blob = encode_units(&sample_units());
        blob[0] = b'X';
        assert_eq!(decode_units(&blob), Err(CodecError::BadMagic));
    }

    #[test]
    fn old_format_versions_are_distinguishable_from_garbage() {
        // A v2 blob (the previous release's cache, e.g. left behind by
        // a firmware update) keeps the BBPP prefix but an older version
        // byte: that is UnsupportedVersion, not BadMagic.
        let mut blob = encode_units(&sample_units());
        blob[4] = 0x02;
        assert_eq!(
            decode_units(&blob),
            Err(CodecError::UnsupportedVersion { found: 2 })
        );
        assert_eq!(
            blob_content_hash(&blob),
            Err(CodecError::UnsupportedVersion { found: 2 })
        );
    }

    #[test]
    fn random_damage_is_a_checksum_mismatch_not_a_decode_error() {
        let blob = encode_units(&sample_units());
        // Flip one bit anywhere in the body: the CRC catches it before
        // the structural decoder ever runs.
        for at in [MAGIC.len(), MAGIC.len() + 9, blob.len() / 2, blob.len() - 5] {
            let mut bad = blob.clone();
            bad[at] ^= 0x04;
            assert!(
                matches!(decode_units(&bad), Err(CodecError::ChecksumMismatch { .. })),
                "flip at {at}"
            );
        }
        // A damaged CRC field itself is also a mismatch.
        let mut bad = blob.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(matches!(
            decode_units(&bad),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn content_hash_stamps_the_unit_generation() {
        let units = sample_units();
        let blob = encode_units(&units);
        assert_eq!(blob_content_hash(&blob).unwrap(), unit_set_hash(&units));
        // Editing any unit (a firmware update) changes the stamp.
        let mut edited = units.clone();
        edited[0].description = "updated".into();
        assert_ne!(unit_set_hash(&edited), unit_set_hash(&units));
        assert_ne!(
            blob_content_hash(&encode_units(&edited)).unwrap(),
            blob_content_hash(&blob).unwrap()
        );
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let blob = encode_units(&sample_units());
        for cut in (MAGIC.len()..blob.len()).step_by(7) {
            let err = decode_units(&blob[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CodecError::Truncated | CodecError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        // Splice a stray byte between the last unit and the CRC and
        // reseal, so the *structural* trailing check is what fires.
        let mut blob = encode_units(&sample_units());
        let at = blob.len() - 4;
        blob.insert(at, 0);
        reseal(&mut blob);
        assert_eq!(decode_units(&blob), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn bad_enum_rejected() {
        let one = vec![Unit::new(UnitName::new("a.service"))];
        let blob = encode_units(&one);
        // Corrupt the service-type byte: locate it from the end of an
        // unsupervised unit (type(1) exec(1) nice(1) io(1) timeout(8)
        // = 12 bytes before the CRC, so index len-16), then reseal the
        // CRC so the structural decoder sees the bad discriminant.
        let mut bad = blob.clone();
        let idx = bad.len() - 16;
        bad[idx] = 9;
        reseal(&mut bad);
        assert_eq!(decode_units(&bad), Err(CodecError::BadEnum(9)));
    }

    #[test]
    fn default_supervision_adds_no_bytes() {
        // The calibration pins ride on this: a unit set with no
        // Restart=/OnFailure= must encode to the same number of bytes
        // it did before the supervision fields existed, so the
        // simulated cache-load I/O of unsupervised boots is unchanged.
        let plain = Unit::new(UnitName::new("a.service")).with_exec("daemon");
        let plain_len = encode_units(std::slice::from_ref(&plain)).len();

        let supervised = plain
            .clone()
            .with_restart(RestartPolicy::OnFailure)
            .with_start_limit_burst(2)
            .on_failure("rescue.service");
        let supervised_len = encode_units(&[supervised]).len();
        // restart(1) + restart_sec(8) + burst(4) + interval(8)
        // + list len(4) + name len(4) + "rescue.service"(14) = 43.
        assert_eq!(supervised_len, plain_len + 43);
    }

    #[test]
    fn cache_is_smaller_than_text() {
        let units = sample_units();
        let text_size: usize = units.iter().map(|u| u.to_unit_file().len()).sum();
        let blob = encode_units(&units);
        assert!(
            blob.len() < text_size * 2,
            "cache {} vs text {}",
            blob.len(),
            text_size
        );
    }

    #[test]
    fn negative_nice_survives() {
        let mut u = Unit::new(UnitName::new("n.service"));
        u.exec.nice = -20;
        let back = decode_units(&encode_units(&[u.clone()])).unwrap();
        assert_eq!(back[0].exec.nice, -20);
    }
}
#[cfg(test)]
mod regression_tests {
    use super::*;
    use crate::unit::{Unit, UnitName};

    #[test]
    fn huge_forged_count_errors_instead_of_allocating() {
        let mut blob = encode_units(&[Unit::new(UnitName::new("a.service"))]);
        // Forge the count field (bytes 14..18, after magic and content
        // hash) to u32::MAX, resealing the CRC so the forged count
        // reaches the structural decoder.
        blob[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
        let body_len = blob.len() - 4;
        let crc = super::fnv1a32(&blob[..body_len]);
        blob[body_len..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_units(&blob), Err(CodecError::Truncated));
    }
}
