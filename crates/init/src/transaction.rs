//! Boot transactions: from a target to an executable job set.
//!
//! Mirrors systemd's transaction machinery: starting from a target, the
//! requirement closure (`Requires=`, `Wants=`, and the `[Install]`
//! reverses) determines *what* to start; ordering edges determine *when*.
//! Conflicting jobs fail the transaction; ordering cycles are broken by
//! dropping weakly-pulled jobs (systemd deletes non-indispensable jobs
//! from cycles), and remain fatal when every cycle member is required.

use std::collections::BTreeSet;

use crate::algo::tarjan_scc;
use crate::graph::{EdgeKind, UnitGraph};
use crate::unit::UnitName;

/// A buildable start-up plan.
///
/// # Examples
///
/// ```
/// use bb_init::{Transaction, Unit, UnitGraph, UnitName};
///
/// let graph = UnitGraph::build(vec![
///     Unit::new(UnitName::new("boot.target")).requires("app.service"),
///     Unit::new(UnitName::new("app.service")).needs("db.service"),
///     Unit::new(UnitName::new("db.service")),
///     Unit::new(UnitName::new("unrelated.service")),
/// ])
/// .unwrap();
/// let tx = Transaction::build(&graph, "boot.target").unwrap();
/// assert_eq!(tx.jobs.len(), 3); // target + app + db; unrelated stays out
/// let order = tx.execution_order(&graph);
/// assert_eq!(graph.unit(order[1]).name.as_str(), "db.service");
/// ```
#[derive(Debug, Clone)]
pub struct Transaction {
    /// The target everything was expanded from.
    pub target: usize,
    /// Unit indices to start.
    pub jobs: BTreeSet<usize>,
    /// Weakly-pulled jobs dropped to break ordering cycles.
    pub dropped_jobs: Vec<usize>,
}

/// Why a transaction could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransactionError {
    /// The requested target is not defined.
    UnknownTarget(UnitName),
    /// Two queued jobs conflict (`Conflicts=`).
    ConflictingJobs(UnitName, UnitName),
    /// An ordering cycle among required jobs that cannot be broken.
    OrderingCycle(Vec<UnitName>),
}

impl std::fmt::Display for TransactionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransactionError::UnknownTarget(t) => write!(f, "unknown target {t}"),
            TransactionError::ConflictingJobs(a, b) => {
                write!(f, "transaction contains conflicting jobs: {a} vs {b}")
            }
            TransactionError::OrderingCycle(units) => {
                write!(f, "ordering cycle among required jobs:")?;
                for u in units {
                    write!(f, " {u}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for TransactionError {}

impl Transaction {
    /// Builds the transaction for `target_name` over `graph`.
    pub fn build(graph: &UnitGraph, target_name: &str) -> Result<Self, TransactionError> {
        let target_name = UnitName::new(target_name);
        let target = graph
            .idx(&target_name)
            .ok_or(TransactionError::UnknownTarget(target_name))?;

        let mut jobs = graph.requirement_closure([target], true);
        let required = graph.requirement_closure([target], false);

        // Conflicts between queued jobs are fatal.
        for e in graph.edges() {
            if e.kind == EdgeKind::Conflict && jobs.contains(&e.src) && jobs.contains(&e.dst) {
                return Err(TransactionError::ConflictingJobs(
                    graph.unit(e.src).name.clone(),
                    graph.unit(e.dst).name.clone(),
                ));
            }
        }

        // Break ordering cycles by dropping weakly-pulled members.
        let mut dropped_jobs = Vec::new();
        loop {
            let cycles = job_cycles(graph, &jobs);
            if cycles.is_empty() {
                break;
            }
            let mut progressed = false;
            for cycle in &cycles {
                // Prefer the newest (highest-index) weakly-pulled member:
                // the most recently added unit is the likeliest culprit.
                if let Some(&victim) = cycle.iter().rev().find(|m| !required.contains(m)) {
                    jobs.remove(&victim);
                    dropped_jobs.push(victim);
                    progressed = true;
                    break; // Re-evaluate cycles after each drop.
                }
            }
            if !progressed {
                let members = cycles[0]
                    .iter()
                    .map(|&i| graph.unit(i).name.clone())
                    .collect();
                return Err(TransactionError::OrderingCycle(members));
            }
        }

        Ok(Transaction {
            target,
            jobs,
            dropped_jobs,
        })
    }

    /// The jobs in a deterministic dependency-respecting order (Kahn over
    /// ordering edges restricted to the job set, name-tie-broken). The
    /// transaction is cycle-free by construction.
    pub fn execution_order(&self, graph: &UnitGraph) -> Vec<usize> {
        let jobs = &self.jobs;
        let mut indeg: std::collections::HashMap<usize, usize> =
            jobs.iter().map(|&j| (j, 0)).collect();
        for e in graph.edges() {
            if e.kind == EdgeKind::Ordering && jobs.contains(&e.src) && jobs.contains(&e.dst) {
                *indeg.get_mut(&e.dst).expect("dst in jobs") += 1;
            }
        }
        let mut frontier: std::collections::BTreeMap<&UnitName, usize> = indeg
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&j, _)| (&graph.unit(j).name, j))
            .collect();
        let mut out = Vec::with_capacity(jobs.len());
        while let Some((_, j)) = frontier.pop_first() {
            out.push(j);
            for e in graph.edges() {
                if e.kind == EdgeKind::Ordering && e.src == j && jobs.contains(&e.dst) {
                    let d = indeg.get_mut(&e.dst).expect("dst in jobs");
                    *d -= 1;
                    if *d == 0 {
                        frontier.insert(&graph.unit(e.dst).name, e.dst);
                    }
                }
            }
        }
        debug_assert_eq!(out.len(), jobs.len(), "transaction was not acyclic");
        out
    }

    /// Ordering predecessors of `job` that are themselves in the job set.
    pub fn active_preds(&self, graph: &UnitGraph, job: usize) -> Vec<usize> {
        graph
            .ordering_preds(job)
            .into_iter()
            .filter(|p| self.jobs.contains(p))
            .collect()
    }
}

/// Cycles (SCCs of size > 1 or self-loops) of the ordering graph induced
/// on `jobs`.
fn job_cycles(graph: &UnitGraph, jobs: &BTreeSet<usize>) -> Vec<Vec<usize>> {
    // Compact the job set for the SCC run.
    let idx_list: Vec<usize> = jobs.iter().copied().collect();
    let pos: std::collections::HashMap<usize, usize> =
        idx_list.iter().enumerate().map(|(p, &j)| (j, p)).collect();
    let succ = |p: usize| -> Vec<usize> {
        let j = idx_list[p];
        graph
            .edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::Ordering && e.src == j)
            .filter_map(|e| pos.get(&e.dst).copied())
            .collect()
    };
    let self_loops: BTreeSet<usize> = graph
        .edges()
        .iter()
        .filter(|e| e.kind == EdgeKind::Ordering && e.src == e.dst && jobs.contains(&e.src))
        .map(|e| e.src)
        .collect();
    tarjan_scc(idx_list.len(), succ)
        .into_iter()
        .map(|comp| comp.into_iter().map(|p| idx_list[p]).collect::<Vec<_>>())
        .filter(|comp: &Vec<usize>| comp.len() > 1 || comp.iter().any(|v| self_loops.contains(v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::Unit;

    fn svc(name: &str) -> Unit {
        Unit::new(UnitName::new(name))
    }

    fn graph(units: Vec<Unit>) -> UnitGraph {
        UnitGraph::build(units).unwrap()
    }

    fn boot_target() -> Unit {
        svc("multi-user.target")
    }

    #[test]
    fn expands_wants_and_requires() {
        let g = graph(vec![
            boot_target(),
            svc("a.service").wanted_by("multi-user.target"),
            svc("b.service")
                .requires("c.service")
                .wanted_by("multi-user.target"),
            svc("c.service"),
            svc("unrelated.service"),
        ]);
        let t = Transaction::build(&g, "multi-user.target").unwrap();
        assert_eq!(t.jobs.len(), 4); // target + a + b + c
        assert!(!t.jobs.contains(&g.idx_of("unrelated.service")));
    }

    #[test]
    fn unknown_target_errors() {
        let g = graph(vec![svc("a.service")]);
        assert!(matches!(
            Transaction::build(&g, "nope.target"),
            Err(TransactionError::UnknownTarget(_))
        ));
    }

    #[test]
    fn conflicting_jobs_fail() {
        let mut a = svc("a.service").wanted_by("multi-user.target");
        a.conflicts.push(UnitName::new("b.service"));
        let g = graph(vec![
            boot_target(),
            a,
            svc("b.service").wanted_by("multi-user.target"),
        ]);
        assert!(matches!(
            Transaction::build(&g, "multi-user.target"),
            Err(TransactionError::ConflictingJobs(..))
        ));
    }

    #[test]
    fn weak_cycle_member_is_dropped() {
        // a (required) and w (wanted) form an ordering cycle; w drops.
        let g = graph(vec![
            boot_target(),
            svc("a.service")
                .after("w.service")
                .wanted_by("multi-user.target")
                .requires("keep.service"),
            svc("keep.service"),
            svc("w.service")
                .after("a.service")
                .wanted_by("multi-user.target"),
        ]);
        // Make `a` required: pull it strongly from the target.
        let mut units: Vec<Unit> = g.units().to_vec();
        units[0] = units[0].clone().requires("a.service");
        let g = graph(units);
        let t = Transaction::build(&g, "multi-user.target").unwrap();
        assert_eq!(t.dropped_jobs, vec![g.idx_of("w.service")]);
        assert!(!t.jobs.contains(&g.idx_of("w.service")));
        assert!(t.jobs.contains(&g.idx_of("a.service")));
    }

    #[test]
    fn required_cycle_is_fatal() {
        let g = graph(vec![
            boot_target().requires("a.service"),
            svc("a.service").needs("b.service"),
            svc("b.service").after("a.service"),
        ]);
        // b is strongly required by a (needs = Requires+After) and also
        // ordered after a: a hard cycle.
        match Transaction::build(&g, "multi-user.target") {
            Err(TransactionError::OrderingCycle(members)) => {
                assert_eq!(members.len(), 2);
            }
            other => panic!("expected ordering cycle, got {other:?}"),
        }
    }

    #[test]
    fn execution_order_respects_job_subgraph() {
        let g = graph(vec![
            boot_target(),
            svc("c.service")
                .after("b.service")
                .wanted_by("multi-user.target"),
            svc("b.service")
                .after("a.service")
                .wanted_by("multi-user.target"),
            svc("a.service").wanted_by("multi-user.target"),
        ]);
        let t = Transaction::build(&g, "multi-user.target").unwrap();
        let order = t.execution_order(&g);
        let names: Vec<&str> = order.iter().map(|&i| g.unit(i).name.as_str()).collect();
        let pa = names.iter().position(|n| *n == "a.service").unwrap();
        let pb = names.iter().position(|n| *n == "b.service").unwrap();
        let pc = names.iter().position(|n| *n == "c.service").unwrap();
        assert!(pa < pb && pb < pc);
        assert_eq!(order.len(), t.jobs.len());
    }

    #[test]
    fn active_preds_ignores_outside_jobs() {
        let g = graph(vec![
            boot_target(),
            svc("a.service").wanted_by("multi-user.target"),
            // outside.service orders itself before a but is not pulled in.
            svc("outside.service").before("a.service"),
        ]);
        let t = Transaction::build(&g, "multi-user.target").unwrap();
        let preds = t.active_preds(&g, g.idx_of("a.service"));
        assert!(preds.is_empty());
    }
}
