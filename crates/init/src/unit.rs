//! Unit model: the init scheme's description of one service, socket,
//! mount, or target.
//!
//! Mirrors the subset of systemd v208 unit semantics the paper exercises:
//! ordering (`After=`/`Before=`), requirement (`Requires=`/`Wants=`),
//! installation (`WantedBy=`/`RequiredBy=`), conflicts, path conditions,
//! service types (`simple`/`forking`/`oneshot`/`notify`), and resource
//! policy knobs (`Nice=`, `IOSchedulingClass=`).

use std::fmt;

/// A unit's name, including its type suffix (`dbus.service`,
/// `var.mount`, `sockets.target`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnitName(String);

impl UnitName {
    /// Creates a name; the suffix determines the unit kind.
    ///
    /// # Panics
    ///
    /// Panics if the name has no recognized type suffix.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(
            UnitKind::from_name(&name).is_some(),
            "unit name without a recognized suffix: {name}"
        );
        UnitName(name)
    }

    /// Fallible constructor.
    pub fn parse(name: &str) -> Result<Self, String> {
        if UnitKind::from_name(name).is_some() {
            Ok(UnitName(name.to_owned()))
        } else {
            Err(format!("unit name without a recognized suffix: {name}"))
        }
    }

    /// The full name including suffix.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The unit kind encoded in the suffix.
    pub fn kind(&self) -> UnitKind {
        UnitKind::from_name(&self.0).expect("validated at construction")
    }

    /// The name without its suffix (`dbus` for `dbus.service`).
    pub fn stem(&self) -> &str {
        self.0.rsplit_once('.').expect("suffix exists").0
    }
}

impl fmt::Display for UnitName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The kind of unit, from the name suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitKind {
    /// A daemon or one-shot program.
    Service,
    /// A listening socket with activation semantics.
    Socket,
    /// A filesystem mount point.
    Mount,
    /// A synchronization point grouping other units.
    Target,
    /// A kernel device unit.
    Device,
}

impl UnitKind {
    /// Parses the kind from a unit name's suffix.
    pub fn from_name(name: &str) -> Option<UnitKind> {
        let (_, suffix) = name.rsplit_once('.')?;
        Some(match suffix {
            "service" => UnitKind::Service,
            "socket" => UnitKind::Socket,
            "mount" => UnitKind::Mount,
            "target" => UnitKind::Target,
            "device" => UnitKind::Device,
            _ => return None,
        })
    }
}

/// `Type=` of a `[Service]` section: when the service counts as started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceType {
    /// Started as soon as `ExecStart` is executed.
    #[default]
    Simple,
    /// Started when the initial process forks (daemonizes).
    Forking,
    /// Started when `ExecStart` *completes*.
    Oneshot,
    /// Started when the service itself signals readiness.
    Notify,
}

impl ServiceType {
    /// Parses the `Type=` value.
    pub fn parse(s: &str) -> Option<ServiceType> {
        Some(match s {
            "simple" => ServiceType::Simple,
            "forking" => ServiceType::Forking,
            "oneshot" => ServiceType::Oneshot,
            "notify" => ServiceType::Notify,
            _ => return None,
        })
    }

    /// The canonical `Type=` spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ServiceType::Simple => "simple",
            ServiceType::Forking => "forking",
            ServiceType::Oneshot => "oneshot",
            ServiceType::Notify => "notify",
        }
    }
}

/// `IOSchedulingClass=` values (the init scheme's I/O policy knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoSchedulingClass {
    /// Kernel default.
    #[default]
    BestEffort,
    /// Starved of I/O when anyone else needs it.
    Idle,
    /// Preferential I/O service.
    Realtime,
}

impl IoSchedulingClass {
    /// Parses the directive value.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "best-effort" => IoSchedulingClass::BestEffort,
            "idle" => IoSchedulingClass::Idle,
            "realtime" => IoSchedulingClass::Realtime,
            _ => return None,
        })
    }

    /// Canonical spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            IoSchedulingClass::BestEffort => "best-effort",
            IoSchedulingClass::Idle => "idle",
            IoSchedulingClass::Realtime => "realtime",
        }
    }
}

/// `Restart=` policy: when a dead service is respawned (v208 subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartPolicy {
    /// Never respawn (systemd's default).
    #[default]
    No,
    /// Respawn only after an unclean exit (crash).
    OnFailure,
    /// Respawn after any exit.
    Always,
}

impl RestartPolicy {
    /// Parses the `Restart=` value.
    pub fn parse(s: &str) -> Option<RestartPolicy> {
        Some(match s {
            "no" => RestartPolicy::No,
            "on-failure" => RestartPolicy::OnFailure,
            "always" => RestartPolicy::Always,
            _ => return None,
        })
    }

    /// The canonical `Restart=` spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            RestartPolicy::No => "no",
            RestartPolicy::OnFailure => "on-failure",
            RestartPolicy::Always => "always",
        }
    }

    /// True if a crashed service with this policy is respawned.
    pub fn restarts_on_crash(self) -> bool {
        !matches!(self, RestartPolicy::No)
    }
}

/// Execution settings from `[Service]`/`[Mount]`/`[Socket]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecConfig {
    /// Start-up semantics.
    pub service_type: ServiceType,
    /// Symbolic workload reference (stands in for the binary path).
    pub exec_start: Option<String>,
    /// CPU nice value.
    pub nice: i8,
    /// I/O scheduling class.
    pub io_class: IoSchedulingClass,
    /// Start timeout in milliseconds (0 = none).
    pub timeout_ms: u64,
    /// `Restart=` supervision policy.
    pub restart: RestartPolicy,
    /// `RestartSec=` backoff before each respawn, in milliseconds
    /// (systemd's default is 100 ms).
    pub restart_sec_ms: u64,
    /// `StartLimitBurst=` — respawns allowed within the interval before
    /// the unit is marked start-limit-hit (systemd's default is 5).
    pub start_limit_burst: u32,
    /// `StartLimitIntervalSec=` window for the burst counter, in
    /// milliseconds (systemd's default is 10 s).
    pub start_limit_interval_ms: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            service_type: ServiceType::default(),
            exec_start: None,
            nice: 0,
            io_class: IoSchedulingClass::default(),
            timeout_ms: 0,
            restart: RestartPolicy::No,
            restart_sec_ms: 100,
            start_limit_burst: 5,
            start_limit_interval_ms: 10_000,
        }
    }
}

/// One parsed unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Unit {
    /// Unit name.
    pub name: UnitName,
    /// `Description=`.
    pub description: String,
    /// `Documentation=` entries.
    pub documentation: Vec<String>,
    /// `After=`: start this unit only after these are started.
    pub after: Vec<UnitName>,
    /// `Before=`: start this unit before these.
    pub before: Vec<UnitName>,
    /// `Requires=`: hard dependency (pulled in; failure propagates).
    pub requires: Vec<UnitName>,
    /// `Wants=`: soft dependency (pulled in; failure tolerated).
    pub wants: Vec<UnitName>,
    /// `Conflicts=`: cannot run together.
    pub conflicts: Vec<UnitName>,
    /// `WantedBy=` (from `[Install]`): reverse soft dependency.
    pub wanted_by: Vec<UnitName>,
    /// `RequiredBy=` (from `[Install]`): reverse hard dependency.
    pub required_by: Vec<UnitName>,
    /// `OnFailure=`: units activated when this unit enters a failed
    /// state (start-limit hit or unrecoverable crash).
    pub on_failure: Vec<UnitName>,
    /// `ConditionPathExists=`: run the body only if this path exists.
    pub condition_path_exists: Option<String>,
    /// `DefaultDependencies=` (affects implicit target ordering).
    pub default_dependencies: bool,
    /// Execution settings.
    pub exec: ExecConfig,
}

impl Unit {
    /// Creates an empty unit with the given name.
    pub fn new(name: UnitName) -> Self {
        Unit {
            name,
            description: String::new(),
            documentation: Vec::new(),
            after: Vec::new(),
            before: Vec::new(),
            requires: Vec::new(),
            wants: Vec::new(),
            conflicts: Vec::new(),
            wanted_by: Vec::new(),
            required_by: Vec::new(),
            on_failure: Vec::new(),
            condition_path_exists: None,
            default_dependencies: true,
            exec: ExecConfig::default(),
        }
    }

    /// Builder: adds an `After=` ordering dependency.
    pub fn after(mut self, dep: &str) -> Self {
        self.after.push(UnitName::new(dep));
        self
    }

    /// Builder: adds a `Before=` ordering dependency.
    pub fn before(mut self, dep: &str) -> Self {
        self.before.push(UnitName::new(dep));
        self
    }

    /// Builder: adds a `Requires=` dependency.
    pub fn requires(mut self, dep: &str) -> Self {
        self.requires.push(UnitName::new(dep));
        self
    }

    /// Builder: adds a `Wants=` dependency.
    pub fn wants(mut self, dep: &str) -> Self {
        self.wants.push(UnitName::new(dep));
        self
    }

    /// Builder: adds a strong dependency (`Requires=` + `After=`), the
    /// paper's red edge: "launch B after A is ready".
    pub fn needs(self, dep: &str) -> Self {
        self.requires(dep).after(dep)
    }

    /// Builder: sets `WantedBy=` (install target).
    pub fn wanted_by(mut self, target: &str) -> Self {
        self.wanted_by.push(UnitName::new(target));
        self
    }

    /// Builder: sets the service type.
    pub fn with_type(mut self, t: ServiceType) -> Self {
        self.exec.service_type = t;
        self
    }

    /// Builder: sets the symbolic workload.
    pub fn with_exec(mut self, exec: impl Into<String>) -> Self {
        self.exec.exec_start = Some(exec.into());
        self
    }

    /// Builder: sets the description.
    pub fn with_description(mut self, d: impl Into<String>) -> Self {
        self.description = d.into();
        self
    }

    /// Builder: sets the `Restart=` policy.
    pub fn with_restart(mut self, policy: RestartPolicy) -> Self {
        self.exec.restart = policy;
        self
    }

    /// Builder: sets `RestartSec=` in milliseconds.
    pub fn with_restart_sec_ms(mut self, ms: u64) -> Self {
        self.exec.restart_sec_ms = ms;
        self
    }

    /// Builder: sets `StartLimitBurst=`.
    pub fn with_start_limit_burst(mut self, burst: u32) -> Self {
        self.exec.start_limit_burst = burst;
        self
    }

    /// Builder: adds an `OnFailure=` escalation unit.
    pub fn on_failure(mut self, unit: &str) -> Self {
        self.on_failure.push(UnitName::new(unit));
        self
    }

    /// Renders the unit back to systemd unit-file syntax. Parsing the
    /// output reproduces the unit (round-trip property tested).
    pub fn to_unit_file(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        s.push_str("[Unit]\n");
        if !self.description.is_empty() {
            let _ = writeln!(s, "Description={}", self.description);
        }
        for d in &self.documentation {
            let _ = writeln!(s, "Documentation={d}");
        }
        let list = |s: &mut String, key: &str, items: &[UnitName]| {
            if !items.is_empty() {
                let names: Vec<&str> = items.iter().map(UnitName::as_str).collect();
                let _ = writeln!(s, "{key}={}", names.join(" "));
            }
        };
        list(&mut s, "After", &self.after);
        list(&mut s, "Before", &self.before);
        list(&mut s, "Requires", &self.requires);
        list(&mut s, "Wants", &self.wants);
        list(&mut s, "Conflicts", &self.conflicts);
        list(&mut s, "OnFailure", &self.on_failure);
        if let Some(p) = &self.condition_path_exists {
            let _ = writeln!(s, "ConditionPathExists={p}");
        }
        if !self.default_dependencies {
            s.push_str("DefaultDependencies=no\n");
        }
        if self.name.kind() == UnitKind::Service || self.exec != ExecConfig::default() {
            s.push_str("\n[Service]\n");
            let _ = writeln!(s, "Type={}", self.exec.service_type.as_str());
            if let Some(e) = &self.exec.exec_start {
                let _ = writeln!(s, "ExecStart={e}");
            }
            if self.exec.nice != 0 {
                let _ = writeln!(s, "Nice={}", self.exec.nice);
            }
            if self.exec.io_class != IoSchedulingClass::BestEffort {
                let _ = writeln!(s, "IOSchedulingClass={}", self.exec.io_class.as_str());
            }
            if self.exec.timeout_ms != 0 {
                let _ = writeln!(s, "TimeoutStartSec={}ms", self.exec.timeout_ms);
            }
            let defaults = ExecConfig::default();
            if self.exec.restart != defaults.restart {
                let _ = writeln!(s, "Restart={}", self.exec.restart.as_str());
            }
            if self.exec.restart_sec_ms != defaults.restart_sec_ms {
                let _ = writeln!(s, "RestartSec={}ms", self.exec.restart_sec_ms);
            }
            if self.exec.start_limit_burst != defaults.start_limit_burst {
                let _ = writeln!(s, "StartLimitBurst={}", self.exec.start_limit_burst);
            }
            if self.exec.start_limit_interval_ms != defaults.start_limit_interval_ms {
                let _ = writeln!(
                    s,
                    "StartLimitIntervalSec={}ms",
                    self.exec.start_limit_interval_ms
                );
            }
        }
        if !self.wanted_by.is_empty() || !self.required_by.is_empty() {
            s.push_str("\n[Install]\n");
            list(&mut s, "WantedBy", &self.wanted_by);
            list(&mut s, "RequiredBy", &self.required_by);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_carry_kinds() {
        assert_eq!(UnitName::new("dbus.service").kind(), UnitKind::Service);
        assert_eq!(UnitName::new("var.mount").kind(), UnitKind::Mount);
        assert_eq!(UnitName::new("sockets.target").kind(), UnitKind::Target);
        assert_eq!(UnitName::new("tuner.socket").kind(), UnitKind::Socket);
        assert_eq!(UnitName::new("dev-hdmi.device").kind(), UnitKind::Device);
        assert_eq!(UnitName::new("dbus.service").stem(), "dbus");
    }

    #[test]
    fn bad_suffix_rejected() {
        assert!(UnitName::parse("dbus").is_err());
        assert!(UnitName::parse("dbus.banana").is_err());
        assert!(UnitName::parse("dbus.service").is_ok());
    }

    #[test]
    #[should_panic(expected = "recognized suffix")]
    fn new_panics_on_bad_suffix() {
        UnitName::new("nope");
    }

    #[test]
    fn builder_wires_dependencies() {
        let u = Unit::new(UnitName::new("myapp.service"))
            .with_description("Summarized explanation of Myapp.service")
            .before("socket.service")
            .needs("dbus.service")
            .wants("log.service")
            .wanted_by("multi-user.target")
            .with_type(ServiceType::Oneshot)
            .with_exec("myapp-service-daemon");
        assert_eq!(u.before.len(), 1);
        assert_eq!(u.requires, vec![UnitName::new("dbus.service")]);
        assert_eq!(u.after, vec![UnitName::new("dbus.service")]);
        assert_eq!(u.exec.service_type, ServiceType::Oneshot);
    }

    #[test]
    fn listing1_shape_renders() {
        // The paper's Listing 1 example.
        let u = Unit::new(UnitName::new("myapp.service"))
            .with_description("Summarized explanation of Myapp.service")
            .before("socket.service")
            .with_type(ServiceType::Oneshot)
            .with_exec("/usr/bin/myapp-service-daemon")
            .wanted_by("multi-user.target");
        let text = u.to_unit_file();
        assert!(text.contains("[Unit]"));
        assert!(text.contains("Before=socket.service"));
        assert!(text.contains("Type=oneshot"));
        assert!(text.contains("ExecStart=/usr/bin/myapp-service-daemon"));
        assert!(text.contains("WantedBy=multi-user.target"));
    }

    #[test]
    fn service_type_parse_roundtrip() {
        for t in [
            ServiceType::Simple,
            ServiceType::Forking,
            ServiceType::Oneshot,
            ServiceType::Notify,
        ] {
            assert_eq!(ServiceType::parse(t.as_str()), Some(t));
        }
        assert_eq!(ServiceType::parse("dbus"), None);
    }
}
