//! The unit dependency graph.
//!
//! Builds a typed graph from a set of parsed units:
//!
//! * **Ordering edges** (`After=`/`Before=`): `dst` may start only after
//!   `src` is started — the paper's Figure 2 edges (red when paired with
//!   a requirement, green when ordering-only).
//! * **Requirement edges** (`Requires=`/`Wants=` and the `[Install]`
//!   reverses): `dst` pulls `src` into the boot transaction.
//!
//! Every edge records *which unit's file declared it*. That provenance is
//! what the BB Group Isolator exploits: a foreign `Before=var.mount`
//! declared by some messenger service is visible as an edge whose
//! `declared_by` is outside the group, and can be ignored without
//! touching the group members' own files (§3.3, §4.2).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::unit::{Unit, UnitName};

/// Edge classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// `dst` starts only after `src` is started (`After=`/`Before=`).
    Ordering,
    /// `dst` requires `src` pulled into the transaction (`Requires=`).
    RequiresStrong,
    /// `dst` wants `src` pulled in, failure tolerated (`Wants=`).
    RequiresWeak,
    /// `src` and `dst` cannot run together (`Conflicts=`).
    Conflict,
}

/// One dependency edge between unit indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source unit index (the prerequisite / needed unit).
    pub src: usize,
    /// Destination unit index (the constrained / needing unit).
    pub dst: usize,
    /// Edge kind.
    pub kind: EdgeKind,
    /// Index of the unit whose file declared this edge.
    pub declared_by: usize,
}

/// Errors building a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Two units share a name.
    DuplicateUnit(UnitName),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::DuplicateUnit(n) => write!(f, "duplicate unit {n}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Aggregate statistics (the Figure 2 caption numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Unit count.
    pub units: usize,
    /// Ordering edges.
    pub ordering_edges: usize,
    /// Strong requirement edges.
    pub strong_edges: usize,
    /// Weak requirement edges.
    pub weak_edges: usize,
    /// Conflict edges.
    pub conflict_edges: usize,
    /// References to units that are not defined.
    pub dangling_refs: usize,
}

/// The dependency graph over a fixed unit set.
///
/// # Examples
///
/// ```
/// use bb_init::{Unit, UnitGraph, UnitName};
///
/// let graph = UnitGraph::build(vec![
///     Unit::new(UnitName::new("var.mount")),
///     Unit::new(UnitName::new("dbus.service")).needs("var.mount"),
/// ])
/// .unwrap();
/// let dbus = graph.idx_of("dbus.service");
/// assert_eq!(graph.ordering_preds(dbus).len(), 1);
/// assert!(graph.ordering_cycles().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct UnitGraph {
    units: Vec<Unit>,
    index: HashMap<UnitName, usize>,
    edges: Vec<Edge>,
    /// Outgoing ordering adjacency: `order_out[src]` lists edge ids.
    order_out: Vec<Vec<usize>>,
    /// Incoming ordering adjacency: `order_in[dst]` lists edge ids.
    order_in: Vec<Vec<usize>>,
    /// Requirement adjacency: `req_of[dst]` lists edge ids with that dst.
    req_of: Vec<Vec<usize>>,
    /// Referenced-but-undefined unit names.
    missing: BTreeSet<UnitName>,
}

impl UnitGraph {
    /// Builds the graph from parsed units.
    pub fn build(units: Vec<Unit>) -> Result<Self, GraphError> {
        let mut index = HashMap::with_capacity(units.len());
        for (i, u) in units.iter().enumerate() {
            if index.insert(u.name.clone(), i).is_some() {
                return Err(GraphError::DuplicateUnit(u.name.clone()));
            }
        }
        let n = units.len();
        let mut g = UnitGraph {
            units,
            index,
            edges: Vec::new(),
            order_out: vec![Vec::new(); n],
            order_in: vec![Vec::new(); n],
            req_of: vec![Vec::new(); n],
            missing: BTreeSet::new(),
        };
        for i in 0..n {
            let u = g.units[i].clone();
            for dep in &u.after {
                g.add_edge(dep, i, |src| Edge {
                    src,
                    dst: i,
                    kind: EdgeKind::Ordering,
                    declared_by: i,
                });
            }
            for dep in &u.before {
                g.add_edge(dep, i, |dst| Edge {
                    src: i,
                    dst,
                    kind: EdgeKind::Ordering,
                    declared_by: i,
                });
            }
            for dep in &u.requires {
                g.add_edge(dep, i, |src| Edge {
                    src,
                    dst: i,
                    kind: EdgeKind::RequiresStrong,
                    declared_by: i,
                });
            }
            for dep in &u.wants {
                g.add_edge(dep, i, |src| Edge {
                    src,
                    dst: i,
                    kind: EdgeKind::RequiresWeak,
                    declared_by: i,
                });
            }
            for dep in &u.conflicts {
                g.add_edge(dep, i, |dst| Edge {
                    src: i,
                    dst,
                    kind: EdgeKind::Conflict,
                    declared_by: i,
                });
            }
            // [Install] reverses: `unit` is wanted/required by a target.
            for target in &u.wanted_by {
                g.add_edge(target, i, |dst| Edge {
                    src: i,
                    dst,
                    kind: EdgeKind::RequiresWeak,
                    declared_by: i,
                });
            }
            for target in &u.required_by {
                g.add_edge(target, i, |dst| Edge {
                    src: i,
                    dst,
                    kind: EdgeKind::RequiresStrong,
                    declared_by: i,
                });
            }
        }
        Ok(g)
    }

    fn add_edge(&mut self, other: &UnitName, _this: usize, mk: impl FnOnce(usize) -> Edge) {
        match self.index.get(other) {
            Some(&o) => {
                let e = mk(o);
                let id = self.edges.len();
                self.edges.push(e);
                match e.kind {
                    EdgeKind::Ordering => {
                        self.order_out[e.src].push(id);
                        self.order_in[e.dst].push(id);
                    }
                    EdgeKind::RequiresStrong | EdgeKind::RequiresWeak => {
                        self.req_of[e.dst].push(id);
                    }
                    EdgeKind::Conflict => {}
                }
            }
            None => {
                self.missing.insert(other.clone());
            }
        }
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True if the graph has no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// All units.
    pub fn units(&self) -> &[Unit] {
        &self.units
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Referenced-but-undefined names.
    pub fn missing(&self) -> &BTreeSet<UnitName> {
        &self.missing
    }

    /// Index of a unit by name.
    pub fn idx(&self, name: &UnitName) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Index of a unit by string name.
    ///
    /// # Panics
    ///
    /// Panics if the unit does not exist (experiment wiring error).
    pub fn idx_of(&self, name: &str) -> usize {
        let name = UnitName::new(name);
        self.idx(&name)
            .unwrap_or_else(|| panic!("unknown unit {name}"))
    }

    /// The unit at an index.
    pub fn unit(&self, idx: usize) -> &Unit {
        &self.units[idx]
    }

    /// Units that must be started before `idx` (ordering predecessors),
    /// deduplicated, in edge order.
    pub fn ordering_preds(&self, idx: usize) -> Vec<usize> {
        let mut seen = BTreeSet::new();
        self.order_in[idx]
            .iter()
            .map(|&e| self.edges[e].src)
            .filter(|s| seen.insert(*s))
            .collect()
    }

    /// Incoming ordering edges of `idx` (with provenance).
    pub fn ordering_in_edges(&self, idx: usize) -> impl Iterator<Item = &Edge> {
        self.order_in[idx].iter().map(|&e| &self.edges[e])
    }

    /// Requirement edges pulled in by `idx`.
    pub fn requirement_edges(&self, idx: usize) -> impl Iterator<Item = &Edge> {
        self.req_of[idx].iter().map(|&e| &self.edges[e])
    }

    /// Transitive closure of requirements from `seeds`: everything the
    /// seeds pull into a transaction. Weak (`Wants=`) edges are followed
    /// when `include_weak`.
    pub fn requirement_closure(
        &self,
        seeds: impl IntoIterator<Item = usize>,
        include_weak: bool,
    ) -> BTreeSet<usize> {
        let mut set: BTreeSet<usize> = BTreeSet::new();
        let mut stack: Vec<usize> = seeds.into_iter().collect();
        while let Some(i) = stack.pop() {
            if !set.insert(i) {
                continue;
            }
            for &e in &self.req_of[i] {
                let edge = self.edges[e];
                let follow = match edge.kind {
                    EdgeKind::RequiresStrong => true,
                    EdgeKind::RequiresWeak => include_weak,
                    _ => false,
                };
                if follow {
                    stack.push(edge.src);
                }
            }
        }
        set
    }

    /// The BB Group Isolator's closure: from the boot-completion seeds,
    /// follow strong requirements and *self-declared* `After=` ordering
    /// (ordering edges declared by the dependent unit itself). Foreign
    /// `Before=` declarations — other units inserting themselves ahead —
    /// are deliberately not followed (§3.3: the group "ignore\[s\] services
    /// not in the group and dependencies or priority requirements defined
    /// as out of the group").
    pub fn strong_closure(&self, seeds: impl IntoIterator<Item = usize>) -> BTreeSet<usize> {
        let mut set: BTreeSet<usize> = BTreeSet::new();
        let mut stack: Vec<usize> = seeds.into_iter().collect();
        while let Some(i) = stack.pop() {
            if !set.insert(i) {
                continue;
            }
            for &e in &self.req_of[i] {
                let edge = self.edges[e];
                if edge.kind == EdgeKind::RequiresStrong {
                    stack.push(edge.src);
                }
            }
            for &e in &self.order_in[i] {
                let edge = self.edges[e];
                // Only orderings this unit asked for itself (After=).
                if edge.declared_by == i {
                    stack.push(edge.src);
                }
            }
        }
        set
    }

    /// Strongly connected components of the ordering graph (Tarjan),
    /// in reverse topological order. Components of size > 1 (or with a
    /// self-loop) are dependency cycles.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        crate::algo::tarjan_scc(self.units.len(), |v| {
            self.order_out[v]
                .iter()
                .map(|&e| self.edges[e].dst)
                .collect()
        })
    }

    /// Ordering cycles: SCCs with more than one member, or self-loops.
    pub fn ordering_cycles(&self) -> Vec<Vec<usize>> {
        let self_loops: BTreeSet<usize> = self
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Ordering && e.src == e.dst)
            .map(|e| e.src)
            .collect();
        self.sccs()
            .into_iter()
            .filter(|c| c.len() > 1 || c.iter().any(|v| self_loops.contains(v)))
            .collect()
    }

    /// Deterministic topological order over ordering edges (Kahn with a
    /// name-ordered tie break). Errors with the cycle members if cyclic.
    pub fn topo_order(&self) -> Result<Vec<usize>, Vec<Vec<usize>>> {
        let cycles = self.ordering_cycles();
        if !cycles.is_empty() {
            return Err(cycles);
        }
        let n = self.units.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            if e.kind == EdgeKind::Ordering {
                indeg[e.dst] += 1;
            }
        }
        // Name-ordered frontier for determinism.
        let mut frontier: BTreeMap<&UnitName, usize> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| (&self.units[i].name, i))
            .collect();
        let mut out = Vec::with_capacity(n);
        while let Some((_, i)) = frontier.pop_first() {
            out.push(i);
            for &eid in &self.order_out[i] {
                let d = self.edges[eid].dst;
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    frontier.insert(&self.units[d].name, d);
                }
            }
        }
        debug_assert_eq!(out.len(), n);
        Ok(out)
    }

    /// Graph statistics.
    pub fn stats(&self) -> GraphStats {
        let mut s = GraphStats {
            units: self.units.len(),
            ordering_edges: 0,
            strong_edges: 0,
            weak_edges: 0,
            conflict_edges: 0,
            dangling_refs: self.missing.len(),
        };
        for e in &self.edges {
            match e.kind {
                EdgeKind::Ordering => s.ordering_edges += 1,
                EdgeKind::RequiresStrong => s.strong_edges += 1,
                EdgeKind::RequiresWeak => s.weak_edges += 1,
                EdgeKind::Conflict => s.conflict_edges += 1,
            }
        }
        s
    }

    /// Graphviz dot rendering in the paper's Figure 2 style: red =
    /// strong (requirement+ordering pairs and plain requirements),
    /// green = ordering-only, gray dashed = weak. Members of `highlight`
    /// (e.g. the BB Group) are drawn as filled boxes.
    pub fn to_dot(&self, highlight: Option<&BTreeSet<usize>>) -> String {
        use std::fmt::Write as _;
        // An ordering edge paired with a strong requirement on the same
        // (src, dst) is a "strong dependency" in the paper's sense.
        let strong_pairs: BTreeSet<(usize, usize)> = self
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::RequiresStrong)
            .map(|e| (e.src, e.dst))
            .collect();
        let mut s =
            String::from("digraph units {\n  rankdir=LR;\n  node [shape=ellipse, fontsize=9];\n");
        for (i, u) in self.units.iter().enumerate() {
            let extra = if highlight.is_some_and(|h| h.contains(&i)) {
                ", shape=box, style=filled, fillcolor=lightyellow"
            } else {
                ""
            };
            let _ = writeln!(s, "  \"{}\" [label=\"{}\"{extra}];", u.name, u.name);
        }
        for e in &self.edges {
            let (color, style) = match e.kind {
                EdgeKind::Ordering if strong_pairs.contains(&(e.src, e.dst)) => ("red", "solid"),
                EdgeKind::Ordering => ("green", "solid"),
                EdgeKind::RequiresStrong => ("red", "solid"),
                EdgeKind::RequiresWeak => ("gray", "dashed"),
                EdgeKind::Conflict => ("black", "dotted"),
            };
            let _ = writeln!(
                s,
                "  \"{}\" -> \"{}\" [color={color}, style={style}];",
                self.units[e.src].name, self.units[e.dst].name
            );
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::UnitName;

    fn svc(name: &str) -> Unit {
        Unit::new(UnitName::new(name))
    }

    fn graph(units: Vec<Unit>) -> UnitGraph {
        UnitGraph::build(units).unwrap()
    }

    #[test]
    fn duplicate_units_rejected() {
        let err = UnitGraph::build(vec![svc("a.service"), svc("a.service")]).unwrap_err();
        assert_eq!(err, GraphError::DuplicateUnit(UnitName::new("a.service")));
    }

    #[test]
    fn before_and_after_create_the_same_ordering() {
        // b After a  ≡  a Before b.
        let g1 = graph(vec![svc("a.service"), svc("b.service").after("a.service")]);
        let g2 = graph(vec![svc("a.service").before("b.service"), svc("b.service")]);
        for g in [&g1, &g2] {
            let b = g.idx_of("b.service");
            assert_eq!(g.ordering_preds(b), vec![g.idx_of("a.service")]);
        }
        // Provenance differs: After is declared by b, Before by a.
        assert_eq!(g1.edges()[0].declared_by, g1.idx_of("b.service"));
        assert_eq!(g2.edges()[0].declared_by, g2.idx_of("a.service"));
    }

    #[test]
    fn requirement_closure_follows_strength() {
        let g = graph(vec![
            svc("a.service"),
            svc("b.service").requires("a.service"),
            svc("c.service").wants("b.service"),
        ]);
        let c = g.idx_of("c.service");
        let strong_only = g.requirement_closure([c], false);
        assert_eq!(strong_only.len(), 1); // c alone: wants not followed
        let with_weak = g.requirement_closure([c], true);
        assert_eq!(with_weak.len(), 3);
    }

    #[test]
    fn strong_closure_ignores_foreign_before() {
        // messenger declares Before=var.mount (the §4.2 abuse); the
        // closure from dbus must include var.mount but NOT messenger.
        let g = graph(vec![
            svc("var.mount"),
            svc("dbus.service").requires("var.mount").after("var.mount"),
            svc("messenger.service").before("var.mount"),
        ]);
        let group = g.strong_closure([g.idx_of("dbus.service")]);
        let names: Vec<&str> = group.iter().map(|&i| g.unit(i).name.as_str()).collect();
        assert_eq!(names, vec!["var.mount", "dbus.service"]);
    }

    #[test]
    fn wanted_by_injects_reverse_requirement() {
        let g = graph(vec![
            svc("multi-user.target"),
            svc("app.service").wanted_by("multi-user.target"),
        ]);
        let t = g.idx_of("multi-user.target");
        let closure = g.requirement_closure([t], true);
        assert!(closure.contains(&g.idx_of("app.service")));
    }

    #[test]
    fn dangling_references_recorded_not_fatal() {
        let g = graph(vec![svc("a.service").after("ghost.service")]);
        assert_eq!(g.missing().len(), 1);
        assert_eq!(g.stats().dangling_refs, 1);
        assert!(g.edges().is_empty());
    }

    #[test]
    fn topo_order_respects_all_edges() {
        let g = graph(vec![
            svc("c.service").after("b.service"),
            svc("b.service").after("a.service"),
            svc("a.service"),
            svc("d.service").after("a.service"),
        ]);
        let order = g.topo_order().unwrap();
        let pos: HashMap<usize, usize> = order.iter().enumerate().map(|(p, &i)| (i, p)).collect();
        for e in g.edges() {
            if e.kind == EdgeKind::Ordering {
                assert!(pos[&e.src] < pos[&e.dst]);
            }
        }
    }

    #[test]
    fn topo_order_is_deterministic_by_name() {
        let g = graph(vec![svc("z.service"), svc("a.service"), svc("m.service")]);
        let names: Vec<&str> = g
            .topo_order()
            .unwrap()
            .into_iter()
            .map(|i| g.unit(i).name.as_str())
            .collect();
        assert_eq!(names, vec!["a.service", "m.service", "z.service"]);
    }

    #[test]
    fn cycle_detection_finds_scc() {
        let g = graph(vec![
            svc("a.service").after("b.service"),
            svc("b.service").after("a.service"),
            svc("c.service"),
        ]);
        let cycles = g.ordering_cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 2);
        assert!(g.topo_order().is_err());
    }

    #[test]
    fn figure3_new_service_creates_cross_group_cycle() {
        // Figure 3: group_a = {a1→a2→a3}, group_b = {b1→b2→b3}; adding
        // c in group_a required by b-chain's head while c itself is
        // after b3 creates a cycle spanning the groups.
        let acyclic = vec![
            svc("a1.service"),
            svc("a2.service").after("a1.service"),
            svc("a3.service").after("a2.service"),
            svc("b1.service"),
            svc("b2.service").after("b1.service"),
            svc("b3.service").after("b2.service"),
        ];
        assert!(graph(acyclic.clone()).ordering_cycles().is_empty());
        let mut with_c = acyclic;
        with_c.push(svc("c.service").after("b3.service").before("b1.service"));
        let cycles = graph(with_c).ordering_cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 4); // b1, b2, b3, c
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = graph(vec![svc("a.service").after("a.service")]);
        assert_eq!(g.ordering_cycles().len(), 1);
    }

    #[test]
    fn dot_output_contains_nodes_and_colored_edges() {
        let g = graph(vec![
            svc("var.mount"),
            svc("dbus.service").needs("var.mount"),
            svc("log.service").after("var.mount"),
        ]);
        let group: BTreeSet<usize> = [g.idx_of("dbus.service")].into();
        let dot = g.to_dot(Some(&group));
        assert!(dot.contains("\"dbus.service\""));
        assert!(dot.contains("color=red"));
        assert!(dot.contains("color=green"));
        assert!(dot.contains("fillcolor=lightyellow"));
    }

    #[test]
    fn stats_count_edge_kinds() {
        let g = graph(vec![
            svc("a.service"),
            svc("b.service").needs("a.service").wants("c.service"),
            svc("c.service").before("b.service"),
        ]);
        let s = g.stats();
        assert_eq!(s.units, 3);
        assert_eq!(s.ordering_edges, 2); // After from needs + Before
        assert_eq!(s.strong_edges, 1);
        assert_eq!(s.weak_edges, 1);
    }
}
