//! Graph algorithms shared by the dependency graph and the transaction
//! builder: an iterative Tarjan SCC over an abstract adjacency function.

/// Strongly connected components of the directed graph with `n` nodes
/// and successor function `succ`. Iterative (no recursion), so deep
/// service chains cannot overflow the stack. Components are returned in
/// reverse topological order, members sorted ascending.
pub fn tarjan_scc(n: usize, succ: impl Fn(usize) -> Vec<usize>) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    enum Frame {
        Enter(usize),
        Resume(usize, usize),
    }
    let mut index: Vec<Option<u32>> = vec![None; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0u32;
    let mut out: Vec<Vec<usize>> = Vec::new();

    for root in 0..n {
        if index[root].is_some() {
            continue;
        }
        let mut frames = vec![Frame::Enter(root)];
        while let Some(f) = frames.pop() {
            match f {
                Frame::Enter(v) => {
                    index[v] = Some(next);
                    low[v] = next;
                    next += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    frames.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, start) => {
                    let succs = succ(v);
                    let mut descended = false;
                    let mut ei = start;
                    while ei < succs.len() {
                        let w = succs[ei];
                        ei += 1;
                        match index[w] {
                            None => {
                                frames.push(Frame::Resume(v, ei));
                                frames.push(Frame::Enter(w));
                                descended = true;
                                break;
                            }
                            Some(wi) => {
                                if on_stack[w] {
                                    low[v] = low[v].min(wi);
                                }
                            }
                        }
                    }
                    if descended {
                        continue;
                    }
                    if Some(low[v]) == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        out.push(comp);
                    }
                    if let Some(Frame::Resume(p, _)) = frames.last().copied() {
                        low[p] = low[p].min(low[v]);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj(edges: &[(usize, usize)]) -> impl Fn(usize) -> Vec<usize> + '_ {
        move |v| {
            edges
                .iter()
                .filter(|(s, _)| *s == v)
                .map(|(_, d)| *d)
                .collect()
        }
    }

    #[test]
    fn acyclic_graph_gives_singletons() {
        let edges = [(0, 1), (1, 2), (0, 2)];
        let sccs = tarjan_scc(3, adj(&edges));
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn two_cycles_found() {
        // 0↔1, 2→3→4→2, 5 isolated.
        let edges = [(0, 1), (1, 0), (2, 3), (3, 4), (4, 2)];
        let mut sizes: Vec<usize> = tarjan_scc(6, adj(&edges)).iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
    }

    #[test]
    fn reverse_topological_order() {
        // 0 → 1 → 2: component containing 2 must come first.
        let edges = [(0, 1), (1, 2)];
        let sccs = tarjan_scc(3, adj(&edges));
        assert_eq!(sccs, vec![vec![2], vec![1], vec![0]]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let n = 200_000;
        let succ = |v: usize| if v + 1 < n { vec![v + 1] } else { vec![] };
        let sccs = tarjan_scc(n, succ);
        assert_eq!(sccs.len(), n);
    }

    #[test]
    fn whole_graph_one_cycle() {
        let n = 1000;
        let succ = |v: usize| vec![(v + 1) % n];
        let sccs = tarjan_scc(n, succ);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), n);
    }
}
