//! Unit-file parser: systemd's INI dialect.
//!
//! Supports the subset the paper's systems use: `[Section]` headers,
//! `Key=Value` assignments, `#`/`;` comments, trailing-backslash line
//! continuations, space-separated multi-value dependency lists that
//! *accumulate* across repeated assignments, and the systemd quirk that
//! an empty assignment (`After=`) resets the accumulated list.
//!
//! This parser is the component the Pre-parser bypasses: at boot,
//! conventional systemd reads and parses every unit file as text; BB
//! loads a pre-parsed binary cache instead (§3.3). The Criterion bench
//! `preparser` measures the real difference on this very code.

use std::fmt;

use crate::unit::{IoSchedulingClass, RestartPolicy, ServiceType, Unit, UnitName};

/// A parse failure with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// Parse failure categories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Text before any `[Section]` header.
    DirectiveOutsideSection,
    /// Malformed `[Section` header.
    UnterminatedSection,
    /// A line without `=` inside a section.
    MissingEquals,
    /// A dependency list entry that is not a valid unit name.
    BadUnitName(String),
    /// An unparsable directive value.
    BadValue {
        /// The directive.
        key: String,
        /// The offending value.
        value: String,
    },
    /// Unit file given a name without a recognized suffix.
    BadFileName(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseErrorKind::DirectiveOutsideSection => {
                write!(f, "directive outside any [Section]")
            }
            ParseErrorKind::UnterminatedSection => write!(f, "unterminated section header"),
            ParseErrorKind::MissingEquals => write!(f, "expected Key=Value"),
            ParseErrorKind::BadUnitName(n) => write!(f, "invalid unit name {n:?}"),
            ParseErrorKind::BadValue { key, value } => {
                write!(f, "invalid value {value:?} for {key}")
            }
            ParseErrorKind::BadFileName(n) => write!(f, "invalid unit file name {n:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Directives that real systemd understands but this model deliberately
/// does not simulate. Parsing them without warning would silently drop
/// behavior that exists on the device, so the Service Analyzer surfaces
/// them as lint findings instead.
const UNSUPPORTED_DIRECTIVES: &[(&str, &str)] = &[
    ("Unit", "PartOf"),
    ("Unit", "BindsTo"),
    ("Service", "Environment"),
    ("Service", "EnvironmentFile"),
    ("Service", "ExecStartPre"),
    ("Service", "ExecStartPost"),
    ("Service", "ExecStop"),
    ("Service", "ExecReload"),
    ("Service", "User"),
    ("Service", "Group"),
    ("Service", "WorkingDirectory"),
    ("Service", "LimitNOFILE"),
    ("Socket", "SocketMode"),
    ("Install", "Alias"),
];

/// Why a directive produced a warning instead of taking effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectiveWarningKind {
    /// A real systemd directive this model parses but does not support.
    /// The unit will behave differently here than on a real system.
    Unsupported,
    /// Not a directive either systemd or this model recognizes
    /// (systemd logs and ignores these).
    Unknown,
}

/// A non-fatal parser warning: a directive that was accepted
/// syntactically but had no effect on the unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectiveWarning {
    /// 1-based line number in the input.
    pub line: usize,
    /// The directive as `Section::Key`.
    pub directive: String,
    /// Whether the directive is known-unsupported or simply unknown.
    pub kind: DirectiveWarningKind,
}

impl fmt::Display for DirectiveWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            DirectiveWarningKind::Unsupported => write!(
                f,
                "line {}: {} is parsed but not supported by this model",
                self.line, self.directive
            ),
            DirectiveWarningKind::Unknown => {
                write!(
                    f,
                    "line {}: unknown directive {}",
                    self.line, self.directive
                )
            }
        }
    }
}

/// Result of a parse: the unit plus non-fatal warnings (unsupported or
/// unknown keys, which systemd logs and ignores).
#[derive(Debug, Clone)]
pub struct Parsed {
    /// The parsed unit.
    pub unit: Unit,
    /// Directives that were dropped rather than applied.
    pub warnings: Vec<DirectiveWarning>,
}

/// Parses one unit file. `file_name` must carry a unit suffix
/// (`dbus.service`); it becomes the unit's name.
///
/// # Examples
///
/// ```
/// use bb_init::parse_unit;
///
/// let parsed = parse_unit(
///     "myapp.service",
///     "[Unit]\nBefore=socket.service\n[Service]\nType=oneshot\n",
/// )
/// .unwrap();
/// assert_eq!(parsed.unit.before[0].as_str(), "socket.service");
/// ```
pub fn parse_unit(file_name: &str, text: &str) -> Result<Parsed, ParseError> {
    let name = UnitName::parse(file_name).map_err(|_| ParseError {
        line: 0,
        kind: ParseErrorKind::BadFileName(file_name.to_owned()),
    })?;
    let mut unit = Unit::new(name);
    let mut warnings = Vec::new();
    let mut section: Option<String> = None;

    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line_no = idx + 1;
        let mut line = raw.trim().to_owned();
        // Trailing backslash joins with following lines.
        while line.ends_with('\\') {
            line.pop();
            match lines.next() {
                Some((_, next)) => {
                    line.push(' ');
                    line.push_str(next.trim());
                }
                None => break,
            }
        }
        if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(ParseError {
                    line: line_no,
                    kind: ParseErrorKind::UnterminatedSection,
                });
            };
            section = Some(name.to_owned());
            continue;
        }
        let Some(current) = section.as_deref() else {
            return Err(ParseError {
                line: line_no,
                kind: ParseErrorKind::DirectiveOutsideSection,
            });
        };
        let Some((key, value)) = line.split_once('=') else {
            return Err(ParseError {
                line: line_no,
                kind: ParseErrorKind::MissingEquals,
            });
        };
        let key = key.trim();
        let value = value.trim();
        apply_directive(&mut unit, current, key, value, line_no, &mut warnings)?;
    }
    Ok(Parsed { unit, warnings })
}

fn parse_name_list(value: &str, line: usize, into: &mut Vec<UnitName>) -> Result<(), ParseError> {
    if value.is_empty() {
        // systemd: an empty assignment resets the accumulated list.
        into.clear();
        return Ok(());
    }
    for token in value.split_whitespace() {
        let name = UnitName::parse(token).map_err(|_| ParseError {
            line,
            kind: ParseErrorKind::BadUnitName(token.to_owned()),
        })?;
        into.push(name);
    }
    Ok(())
}

fn parse_bool(key: &str, value: &str, line: usize) -> Result<bool, ParseError> {
    match value {
        "yes" | "true" | "on" | "1" => Ok(true),
        "no" | "false" | "off" | "0" => Ok(false),
        _ => Err(ParseError {
            line,
            kind: ParseErrorKind::BadValue {
                key: key.to_owned(),
                value: value.to_owned(),
            },
        }),
    }
}

fn bad_value(key: &str, value: &str, line: usize) -> ParseError {
    ParseError {
        line,
        kind: ParseErrorKind::BadValue {
            key: key.to_owned(),
            value: value.to_owned(),
        },
    }
}

fn apply_directive(
    unit: &mut Unit,
    section: &str,
    key: &str,
    value: &str,
    line: usize,
    warnings: &mut Vec<DirectiveWarning>,
) -> Result<(), ParseError> {
    match (section, key) {
        ("Unit", "Description") => unit.description = value.to_owned(),
        ("Unit", "Documentation") => unit.documentation.push(value.to_owned()),
        ("Unit", "After") => parse_name_list(value, line, &mut unit.after)?,
        ("Unit", "Before") => parse_name_list(value, line, &mut unit.before)?,
        ("Unit", "Requires") => parse_name_list(value, line, &mut unit.requires)?,
        ("Unit", "Wants") => parse_name_list(value, line, &mut unit.wants)?,
        ("Unit", "Conflicts") => parse_name_list(value, line, &mut unit.conflicts)?,
        ("Unit", "OnFailure") => parse_name_list(value, line, &mut unit.on_failure)?,
        ("Unit", "ConditionPathExists") => {
            unit.condition_path_exists = if value.is_empty() {
                None
            } else {
                Some(value.to_owned())
            };
        }
        ("Unit", "DefaultDependencies") => {
            unit.default_dependencies = parse_bool(key, value, line)?;
        }
        ("Service" | "Mount" | "Socket", "Type") => {
            unit.exec.service_type =
                ServiceType::parse(value).ok_or_else(|| bad_value(key, value, line))?;
        }
        ("Service" | "Mount" | "Socket", "ExecStart" | "ExecMount" | "ListenStream") => {
            unit.exec.exec_start = Some(value.to_owned());
        }
        ("Service" | "Mount" | "Socket", "Nice") => {
            let nice: i8 = value.parse().map_err(|_| bad_value(key, value, line))?;
            if !(-20..=19).contains(&nice) {
                return Err(bad_value(key, value, line));
            }
            unit.exec.nice = nice;
        }
        ("Service" | "Mount" | "Socket", "IOSchedulingClass") => {
            unit.exec.io_class =
                IoSchedulingClass::parse(value).ok_or_else(|| bad_value(key, value, line))?;
        }
        ("Service" | "Mount" | "Socket", "TimeoutStartSec") => {
            unit.exec.timeout_ms =
                parse_timeout_ms(value).ok_or_else(|| bad_value(key, value, line))?;
        }
        ("Service" | "Mount" | "Socket", "Restart") => {
            unit.exec.restart =
                RestartPolicy::parse(value).ok_or_else(|| bad_value(key, value, line))?;
        }
        ("Service" | "Mount" | "Socket", "RestartSec") => {
            unit.exec.restart_sec_ms =
                parse_timeout_ms(value).ok_or_else(|| bad_value(key, value, line))?;
        }
        // In systemd v208 the start-limit knobs live in [Service].
        ("Service" | "Mount" | "Socket", "StartLimitBurst") => {
            unit.exec.start_limit_burst = value.parse().map_err(|_| bad_value(key, value, line))?;
        }
        ("Service" | "Mount" | "Socket", "StartLimitIntervalSec") => {
            unit.exec.start_limit_interval_ms =
                parse_timeout_ms(value).ok_or_else(|| bad_value(key, value, line))?;
        }
        ("Install", "WantedBy") => parse_name_list(value, line, &mut unit.wanted_by)?,
        ("Install", "RequiredBy") => parse_name_list(value, line, &mut unit.required_by)?,
        _ => {
            let kind = if UNSUPPORTED_DIRECTIVES.contains(&(section, key)) {
                DirectiveWarningKind::Unsupported
            } else {
                DirectiveWarningKind::Unknown
            };
            warnings.push(DirectiveWarning {
                line,
                directive: format!("{section}::{key}"),
                kind,
            });
        }
    }
    Ok(())
}

/// Parses `TimeoutStartSec=` values: bare seconds, `<n>ms`, or `<n>s`.
fn parse_timeout_ms(value: &str) -> Option<u64> {
    if let Some(ms) = value.strip_suffix("ms") {
        return ms.parse().ok();
    }
    if let Some(s) = value.strip_suffix('s') {
        return s.parse::<u64>().ok().map(|v| v * 1000);
    }
    value.parse::<u64>().ok().map(|v| v * 1000)
}

/// Loads and parses every unit file in a directory on disk. File names
/// must carry unit suffixes (`.service`, `.mount`, …); other files are
/// skipped. Files are processed in name order for determinism.
///
/// # Errors
///
/// I/O failures and parse failures are both reported; parse failures
/// carry the offending file name.
pub fn parse_unit_dir(dir: &std::path::Path) -> Result<Vec<Unit>, UnitDirError> {
    parse_unit_dir_with_warnings(dir).map(|(units, _)| units)
}

/// Per-file parser warnings: `(file_name, warning)` pairs.
pub type FileWarnings = Vec<(String, DirectiveWarning)>;

/// Like [`parse_unit_dir`], but also returns the per-file parser
/// warnings as `(file_name, warning)` pairs, so callers (the Service
/// Analyzer CLI, `bbsim --units`) can lint directives that real systemd
/// honors but this model drops.
pub fn parse_unit_dir_with_warnings(
    dir: &std::path::Path,
) -> Result<(Vec<Unit>, FileWarnings), UnitDirError> {
    let mut files: Vec<(String, std::path::PathBuf)> = std::fs::read_dir(dir)
        .map_err(UnitDirError::Io)?
        .filter_map(|entry| {
            let entry = entry.ok()?;
            let path = entry.path();
            let name = path.file_name()?.to_str()?.to_owned();
            (path.is_file() && UnitName::parse(&name).is_ok()).then_some((name, path))
        })
        .collect();
    files.sort();
    let mut units = Vec::with_capacity(files.len());
    let mut warnings = Vec::new();
    for (name, path) in files {
        let text = std::fs::read_to_string(&path).map_err(UnitDirError::Io)?;
        let parsed = parse_unit(&name, &text).map_err(|e| UnitDirError::Parse(name.clone(), e))?;
        units.push(parsed.unit);
        warnings.extend(parsed.warnings.into_iter().map(|w| (name.clone(), w)));
    }
    Ok((units, warnings))
}

/// Failure loading a unit directory.
#[derive(Debug)]
pub enum UnitDirError {
    /// Filesystem error.
    Io(std::io::Error),
    /// A unit file failed to parse.
    Parse(String, ParseError),
}

impl fmt::Display for UnitDirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitDirError::Io(e) => write!(f, "unit directory I/O error: {e}"),
            UnitDirError::Parse(name, e) => write!(f, "{name}: {e}"),
        }
    }
}

impl std::error::Error for UnitDirError {}

/// Parses a whole directory of unit files given as `(name, text)` pairs.
/// Returns units in input order; fails on the first error, tagged with
/// the file name.
pub fn parse_unit_set<'a>(
    files: impl IntoIterator<Item = (&'a str, &'a str)>,
) -> Result<Vec<Unit>, (String, ParseError)> {
    files
        .into_iter()
        .map(|(name, text)| {
            parse_unit(name, text)
                .map(|p| p.unit)
                .map_err(|e| (name.to_owned(), e))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LISTING1: &str = "\
[Unit]
Description=Summarized explanation of Myapp.service
Before=socket.service

[Service]
Type=oneshot
ExecStart=/usr/bin/myapp-service-daemon

[Install]
WantedBy=multi-user.target
";

    #[test]
    fn parses_paper_listing1() {
        let p = parse_unit("myapp.service", LISTING1).unwrap();
        assert_eq!(
            p.unit.description,
            "Summarized explanation of Myapp.service"
        );
        assert_eq!(p.unit.before, vec![UnitName::new("socket.service")]);
        assert_eq!(p.unit.exec.service_type, ServiceType::Oneshot);
        assert_eq!(
            p.unit.exec.exec_start.as_deref(),
            Some("/usr/bin/myapp-service-daemon")
        );
        assert_eq!(p.unit.wanted_by, vec![UnitName::new("multi-user.target")]);
        assert!(p.warnings.is_empty());
    }

    #[test]
    fn multi_value_lists_accumulate() {
        let text = "[Unit]\nAfter=a.service b.service\nAfter=c.service\n";
        let p = parse_unit("x.service", text).unwrap();
        assert_eq!(p.unit.after.len(), 3);
    }

    #[test]
    fn empty_assignment_resets_list() {
        let text = "[Unit]\nAfter=a.service b.service\nAfter=\nAfter=c.service\n";
        let p = parse_unit("x.service", text).unwrap();
        assert_eq!(p.unit.after, vec![UnitName::new("c.service")]);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n; alt comment\n\n[Unit]\n# inner\nDescription=d\n";
        let p = parse_unit("x.service", text).unwrap();
        assert_eq!(p.unit.description, "d");
    }

    #[test]
    fn line_continuation_joins() {
        let text = "[Unit]\nAfter=a.service \\\n  b.service\n";
        let p = parse_unit("x.service", text).unwrap();
        assert_eq!(p.unit.after.len(), 2);
    }

    #[test]
    fn unknown_keys_warn_not_fail() {
        let text = "[Unit]\nFancyNewDirective=zap\n[Service]\nEnvironment=FOO=1\n";
        let p = parse_unit("x.service", text).unwrap();
        assert_eq!(p.warnings.len(), 2);
        assert_eq!(p.warnings[0].directive, "Unit::FancyNewDirective");
        assert_eq!(p.warnings[0].kind, DirectiveWarningKind::Unknown);
        // `Environment=` is real systemd, just not modeled here: flagged
        // as unsupported rather than unknown.
        assert_eq!(p.warnings[1].directive, "Service::Environment");
        assert_eq!(p.warnings[1].kind, DirectiveWarningKind::Unsupported);
        assert!(p.warnings[1].to_string().contains("not supported"));
    }

    #[test]
    fn supervision_directives_parse_into_typed_fields_not_warnings() {
        // Regression: these used to sit in UNSUPPORTED_DIRECTIVES and
        // produce lint warnings; they are modeled now.
        let text = "\
[Unit]
OnFailure=rescue.service watchdog-reboot.service
[Service]
Restart=on-failure
RestartSec=500ms
StartLimitBurst=3
StartLimitIntervalSec=30s
";
        let p = parse_unit("x.service", text).unwrap();
        assert!(p.warnings.is_empty(), "warnings: {:?}", p.warnings);
        assert_eq!(p.unit.exec.restart, RestartPolicy::OnFailure);
        assert_eq!(p.unit.exec.restart_sec_ms, 500);
        assert_eq!(p.unit.exec.start_limit_burst, 3);
        assert_eq!(p.unit.exec.start_limit_interval_ms, 30_000);
        assert_eq!(
            p.unit.on_failure,
            vec![
                UnitName::new("rescue.service"),
                UnitName::new("watchdog-reboot.service"),
            ]
        );
    }

    #[test]
    fn restart_policy_values() {
        for (text, policy) in [
            ("no", RestartPolicy::No),
            ("on-failure", RestartPolicy::OnFailure),
            ("always", RestartPolicy::Always),
        ] {
            let p = parse_unit("x.service", &format!("[Service]\nRestart={text}\n")).unwrap();
            assert_eq!(p.unit.exec.restart, policy);
        }
        let err = parse_unit("x.service", "[Service]\nRestart=sometimes\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadValue { .. }));
    }

    #[test]
    fn supervision_roundtrip_render_then_parse() {
        let u = Unit::new(UnitName::new("flaky.service"))
            .with_exec("flaky-daemon")
            .with_restart(RestartPolicy::Always)
            .with_restart_sec_ms(250)
            .with_start_limit_burst(2)
            .on_failure("rescue.service");
        let text = u.to_unit_file();
        let p = parse_unit("flaky.service", &text).unwrap();
        assert_eq!(p.unit, u);
        assert!(p.warnings.is_empty());
    }

    #[test]
    fn directive_outside_section_fails() {
        let err = parse_unit("x.service", "Description=d\n").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::DirectiveOutsideSection);
        assert_eq!(err.line, 1);
    }

    #[test]
    fn missing_equals_fails_with_line() {
        let err = parse_unit("x.service", "[Unit]\nDescription\n").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::MissingEquals);
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unterminated_section_fails() {
        let err = parse_unit("x.service", "[Unit\n").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnterminatedSection);
    }

    #[test]
    fn bad_dependency_name_fails() {
        let err = parse_unit("x.service", "[Unit]\nAfter=not-a-unit\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadUnitName(_)));
    }

    #[test]
    fn bad_file_name_fails() {
        let err = parse_unit("x.banana", "[Unit]\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadFileName(_)));
    }

    #[test]
    fn nice_and_io_class_parse() {
        let text = "[Service]\nNice=-15\nIOSchedulingClass=idle\nTimeoutStartSec=5s\n";
        let p = parse_unit("x.service", text).unwrap();
        assert_eq!(p.unit.exec.nice, -15);
        assert_eq!(p.unit.exec.io_class, IoSchedulingClass::Idle);
        assert_eq!(p.unit.exec.timeout_ms, 5000);
    }

    #[test]
    fn out_of_range_nice_fails() {
        let err = parse_unit("x.service", "[Service]\nNice=42\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadValue { .. }));
    }

    #[test]
    fn timeout_formats() {
        assert_eq!(parse_timeout_ms("250ms"), Some(250));
        assert_eq!(parse_timeout_ms("5s"), Some(5000));
        assert_eq!(parse_timeout_ms("7"), Some(7000));
        assert_eq!(parse_timeout_ms("x"), None);
    }

    #[test]
    fn default_dependencies_boolean() {
        let p = parse_unit("x.service", "[Unit]\nDefaultDependencies=no\n").unwrap();
        assert!(!p.unit.default_dependencies);
        let err = parse_unit("x.service", "[Unit]\nDefaultDependencies=maybe\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadValue { .. }));
    }

    #[test]
    fn roundtrip_render_then_parse() {
        let u = Unit::new(UnitName::new("dbus.service"))
            .with_description("D-Bus IPC")
            .needs("var.mount")
            .before("fasttv.service")
            .wants("log.service")
            .with_type(ServiceType::Notify)
            .with_exec("dbus-daemon")
            .wanted_by("multi-user.target");
        let text = u.to_unit_file();
        let p = parse_unit("dbus.service", &text).unwrap();
        assert_eq!(p.unit, u);
    }

    #[test]
    fn parse_set_reports_failing_file() {
        let files = vec![
            ("a.service", "[Unit]\nDescription=ok\n"),
            ("b.service", "Description=broken\n"),
        ];
        let err = parse_unit_set(files).unwrap_err();
        assert_eq!(err.0, "b.service");
    }
}
