//! # bb-init — a systemd-like init scheme on the simulated machine
//!
//! The user-space substrate of the Booting Booster reproduction: a
//! from-scratch implementation of the init-scheme layer the paper's
//! Boot-up and Service Engines live in.
//!
//! * [`mod@unit`] / [`parser`] — systemd unit files: the INI dialect,
//!   ordering and requirement directives, service types, conditions.
//! * [`graph`] — the typed dependency graph of Figure 2, with edge
//!   provenance (who declared what), SCC cycle detection, requirement
//!   closures, and Graphviz export.
//! * [`transaction`] — target expansion, conflict checking, and
//!   weak-job cycle breaking, as systemd transactions do.
//! * [`engine`] — three job engines (in-order systemd-like,
//!   out-of-order with optional path-check, serial rcS) executing a
//!   transaction on a [`bb_sim::Machine`].
//! * [`preparse`] — the Pre-parser's binary unit cache.
//! * [`chart`] — systemd-bootchart-style ASCII/SVG rendering plus
//!   blame / critical-chain analysis.

pub mod algo;
pub mod chart;
pub mod engine;
pub mod graph;
pub mod parser;
pub mod preparse;
pub mod transaction;
pub mod unit;

pub use chart::{blame, critical_chain, render_critical_chain, time_summary, Bootchart, ChartRow};
pub use engine::{
    run_boot, BootPlan, BootRecord, EngineConfig, EngineMode, LoadModel, ManagerCosts, ManagerTask,
    PlanOverrides, ServiceBody, ServiceRecord, UnitOutcome, WorkloadMap,
};
pub use graph::{Edge, EdgeKind, GraphError, GraphStats, UnitGraph};
pub use parser::{
    parse_unit, parse_unit_dir, parse_unit_dir_with_warnings, parse_unit_set, DirectiveWarning,
    DirectiveWarningKind, FileWarnings, ParseError, ParseErrorKind, Parsed, UnitDirError,
};
pub use preparse::{
    blob_content_hash, decode_units, encode_units, unit_set_hash, CodecError, INTEGRITY_OVERHEAD,
};
pub use transaction::{Transaction, TransactionError};
pub use unit::{
    ExecConfig, IoSchedulingClass, RestartPolicy, ServiceType, Unit, UnitKind, UnitName,
};
