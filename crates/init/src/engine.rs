//! Job engines: execute a boot transaction on the simulated machine.
//!
//! Three engines reproduce the init-scheme families of §2.5:
//!
//! * [`EngineMode::InOrder`] — systemd-like: every service self-gates on
//!   the readiness flags of its ordering predecessors, so arbitrary
//!   non-interdependent services launch in parallel while the boot
//!   sequence is always correct.
//! * [`EngineMode::OutOfOrder`] — BSD/SysV-style: services start without
//!   waiting. Optionally with the bolted-on *path-check* retry loop
//!   (poll for the prerequisite, burning CPU), or in `assert` mode where
//!   a service crashes when its prerequisite is absent — the
//!   correctness hazard of §2.5.1.
//! * [`EngineMode::Serial`] — classic `rcS`: one service at a time.
//!
//! The Booting Booster's Service Engine effects enter through
//! [`PlanOverrides`]: per-unit priorities (BB Manager), the isolated
//! group whose members ignore foreign ordering declarations (BB Group
//! Isolator), a dispatch-first list, and a deferred set gated on boot
//! completion (Deferred Executor).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use bb_sim::{
    AccessPattern, DeviceId, FlagId, Machine, Op, ProcessSpec, RunOutcome, SimDuration, SimTime,
};

use crate::graph::UnitGraph;
use crate::transaction::Transaction;
use crate::unit::{IoSchedulingClass, ServiceType, UnitName};

/// How unit configuration reaches the manager at boot.
#[derive(Debug, Clone, Copy)]
pub struct LoadModel {
    /// Total bytes read from storage for unit configuration.
    pub io_bytes: u64,
    /// Access pattern of those reads (text files: random; cache: sequential).
    pub pattern: AccessPattern,
    /// Total CPU cost of turning the bytes into unit objects.
    pub cpu: SimDuration,
}

/// An init-scheme internal task (logging setup, hostname, machine ID…).
#[derive(Debug, Clone)]
pub struct ManagerTask {
    /// Task name, recorded in traces.
    pub name: String,
    /// Reference CPU cost.
    pub cost: SimDuration,
    /// True if the Deferred Executor postpones it past boot completion.
    pub deferred: bool,
}

impl ManagerTask {
    /// Creates a non-deferred task.
    pub fn new(name: impl Into<String>, cost: SimDuration) -> Self {
        ManagerTask {
            name: name.into(),
            cost,
            deferred: false,
        }
    }

    /// Marks the task deferred.
    pub fn deferred(mut self) -> Self {
        self.deferred = true;
        self
    }
}

/// Cost knobs of the manager process itself.
#[derive(Debug, Clone, Copy)]
pub struct ManagerCosts {
    /// Manager CPU per dispatched job (dependency bookkeeping + fork).
    pub dispatch_cpu_per_job: SimDuration,
    /// CPU charged inside each service for fork+exec+dynamic linking.
    pub fork_exec_cost: SimDuration,
    /// Manager priority (PID 1 runs urgently).
    pub manager_nice: i8,
}

impl Default for ManagerCosts {
    fn default() -> Self {
        ManagerCosts {
            dispatch_cpu_per_job: SimDuration::from_micros(400),
            fork_exec_cost: SimDuration::from_millis(3),
            manager_nice: -10,
        }
    }
}

/// Which engine executes the transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// systemd-like dependency-gated parallel launching.
    InOrder,
    /// Launch everything immediately (§2.5.1).
    OutOfOrder {
        /// Bolt on the path-check polling loop for each dependency.
        path_check: bool,
        /// Crash services whose dependencies are not ready (no
        /// path-check): exposes incorrect boots.
        assert_deps: bool,
    },
    /// One service at a time (classic rcS).
    Serial,
}

/// The Booting Booster's service-engine adjustments to a plan.
#[derive(Debug, Clone, Default)]
pub struct PlanOverrides {
    /// Per-unit nice overrides (BB Manager prioritization).
    pub nice: BTreeMap<usize, i8>,
    /// Per-unit I/O class overrides (BB Manager prioritization).
    pub io_class: BTreeMap<usize, IoSchedulingClass>,
    /// The isolated BB Group: members ignore ordering edges declared by
    /// units outside the group and never wait on non-group services.
    pub isolate: BTreeSet<usize>,
    /// Jobs dispatched before everything else, in order.
    pub dispatch_first: Vec<usize>,
    /// Jobs gated on boot completion (deferred services).
    pub defer: BTreeSet<usize>,
    /// Ordering edges `(src, dst)` to ignore (the dependency miner's
    /// verified-redundant set, §5 "tackle dependencies directly").
    pub drop_edges: BTreeSet<(usize, usize)>,
    /// Per-job fork+exec cost overrides (static linking of BB Group
    /// binaries removes the dynamic-linking share, §5).
    pub fork_cost: BTreeMap<usize, SimDuration>,
}

/// A service's simulated workload body.
#[derive(Debug, Clone, Default)]
pub struct ServiceBody {
    /// Ops before the service signals readiness (`forking`/`notify`).
    pub pre_ready: Vec<Op>,
    /// Ops after readiness (main-loop warm-up etc.).
    pub post_ready: Vec<Op>,
}

/// Maps `ExecStart=` strings to bodies. Units without an entry get a
/// small default body.
pub type WorkloadMap = HashMap<String, ServiceBody>;

/// Dense job→readiness-flag table, indexed by graph slot. Indexing by
/// `&usize` mirrors the map interface it replaced; only transaction
/// jobs have entries.
struct JobFlags(Vec<Option<FlagId>>);

impl std::ops::Index<&usize> for JobFlags {
    type Output = FlagId;
    fn index(&self, j: &usize) -> &FlagId {
        self.0[*j].as_ref().expect("job has a readiness flag")
    }
}

/// Everything the engine needs to run one boot.
///
/// All fields borrow from the planning layer: the engine is the
/// per-boot hot path, and a fleet cell runs it thousands of times
/// against one plan, so nothing here is cloned per boot.
#[derive(Debug, Clone, Copy)]
pub struct BootPlan<'g> {
    /// The unit graph.
    pub graph: &'g UnitGraph,
    /// The transaction to execute.
    pub transaction: &'g Transaction,
    /// Units whose readiness defines boot completion (§2: "the video and
    /// audio of a broadcast channel is played and it responds to remote
    /// control inputs").
    pub completion: &'g [UnitName],
    /// Service-engine adjustments.
    pub overrides: &'g PlanOverrides,
    /// Serial init-phase tasks run before unit loading (Figure 6(b)).
    pub init_tasks: &'g [ManagerTask],
    /// Housekeeping spawned alongside services (Figure 6(c) Deferred
    /// Executor items).
    pub service_phase_tasks: &'g [ManagerTask],
    /// Dispatch order for the ordered engine modes, precomputed once at
    /// plan time ([`Transaction::execution_order`]) instead of running
    /// Kahn + SCC checks inside every boot. Out-of-order engines ignore
    /// it (they dispatch in name order by design).
    pub execution_order: &'g [usize],
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Engine family.
    pub mode: EngineMode,
    /// Unit configuration load model (the Pre-parser changes this).
    pub load: LoadModel,
    /// Manager cost knobs.
    pub costs: ManagerCosts,
    /// Storage device unit files are read from.
    pub device: DeviceId,
}

/// Per-service timeline assembled from the run.
#[derive(Debug, Clone, Default)]
pub struct ServiceRecord {
    /// When the manager spawned the service process.
    pub spawned: Option<SimTime>,
    /// First time it got a CPU core.
    pub started: Option<SimTime>,
    /// When it signalled readiness (per its `Type=`).
    pub ready: Option<SimTime>,
    /// When its process finished all work.
    pub finished: Option<SimTime>,
    /// True if it aborted on a missing dependency (out-of-order mode).
    pub failed: bool,
    /// True if its readiness was forced by `TimeoutStartSec=` expiry
    /// rather than signalled by the service itself.
    pub timed_out: bool,
    /// How many times supervision respawned the unit after a crash
    /// (`Restart=` incarnations `name#1`, `name#2`, …).
    pub restarts: u32,
    /// True if the unit exhausted `StartLimitBurst=` respawns without a
    /// successful start.
    pub start_limit_hit: bool,
    /// True if hitting the start limit activated the unit's
    /// `OnFailure=` units.
    pub escalated: bool,
}

/// Summary outcome of one unit's boot, derived from its record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitOutcome {
    /// Started and signalled readiness with no intervention.
    Clean,
    /// Crashed and was respawned this many times before succeeding.
    Restarted(u32),
    /// Exhausted `StartLimitBurst=` respawns without a successful start.
    StartLimitHit,
    /// Hit the start limit and activated its `OnFailure=` units.
    Escalated,
    /// Readiness was forced by `TimeoutStartSec=` expiry.
    TimedOut,
    /// Aborted (missing dependency or injected crash) with no respawn.
    Failed,
}

impl ServiceRecord {
    /// Attributes the unit's boot outcome.
    pub fn outcome(&self) -> UnitOutcome {
        if self.escalated {
            UnitOutcome::Escalated
        } else if self.start_limit_hit {
            UnitOutcome::StartLimitHit
        } else if self.timed_out {
            UnitOutcome::TimedOut
        } else if self.restarts > 0 {
            UnitOutcome::Restarted(self.restarts)
        } else if self.failed {
            UnitOutcome::Failed
        } else {
            UnitOutcome::Clean
        }
    }
}

/// Result of one boot run.
#[derive(Debug)]
pub struct BootRecord {
    /// Per-unit timelines.
    pub services: BTreeMap<UnitName, ServiceRecord>,
    /// When the boot-completion definition was met.
    pub completion_time: Option<SimTime>,
    /// When user space started (engine invocation time).
    pub userspace_start: SimTime,
    /// When the serial init phase finished (init tasks done).
    pub init_done: SimTime,
    /// When unit loading/parsing finished.
    pub load_done: SimTime,
    /// The machine outcome (blocked/failed processes).
    pub outcome: RunOutcome,
}

impl BootRecord {
    /// Boot time from power-on to completion.
    ///
    /// # Panics
    ///
    /// Panics if the boot never completed (a wiring error in the
    /// experiment; check `outcome.blocked` instead).
    pub fn boot_time(&self) -> SimTime {
        self.completion_time.expect("boot did not complete")
    }

    /// Boot time, or `None` if the completion definition was never met.
    pub fn try_boot_time(&self) -> Option<SimTime> {
        self.completion_time
    }

    /// Services that failed (out-of-order hazard).
    pub fn failed_services(&self) -> Vec<&UnitName> {
        self.services
            .iter()
            .filter(|(_, r)| r.failed)
            .map(|(n, _)| n)
            .collect()
    }

    /// The record for a unit.
    ///
    /// # Panics
    ///
    /// Panics if the unit was not part of the run.
    pub fn service(&self, name: &str) -> &ServiceRecord {
        self.services
            .get(&UnitName::new(name))
            .unwrap_or_else(|| panic!("no record for {name}"))
    }
}

/// Runs the boot described by `plan` on `machine`.
///
/// The machine clock should be at the kernel→userspace handover point
/// (see `bb_kernel::execute_kernel_boot`). The engine creates a
/// `boot-complete` flag on the machine, sets it when the completion
/// definition is met, and runs the machine to quiescence — including
/// deferred work that only starts after completion.
pub fn run_boot(
    machine: &mut Machine,
    plan: &BootPlan<'_>,
    workloads: &WorkloadMap,
    cfg: &EngineConfig,
) -> BootRecord {
    let userspace_start = machine.now();
    let graph = plan.graph;
    let jobs = &plan.transaction.jobs;

    // Flags: readiness per job + the boot-completion gate. Dense tables
    // indexed by graph slot — no hashing on the per-service paths.
    let boot_complete = machine.flag("boot-complete");
    let mut ready_flags: Vec<Option<FlagId>> = vec![None; graph.len()];
    for &j in jobs.iter() {
        ready_flags[j] = Some(machine.flag(format!("ready:{}", graph.unit(j).name)));
    }
    let ready_flags = JobFlags(ready_flags);
    // Condition flags (ConditionPathExists= stands in for path presence).
    let mut cond_flags: Vec<Option<FlagId>> = vec![None; graph.len()];
    for &j in jobs.iter() {
        if let Some(p) = graph.unit(j).condition_path_exists.as_ref() {
            cond_flags[j] = Some(machine.flag(format!("path:{p}")));
        }
    }

    // Serial init phase (Figure 6(b)): non-deferred tasks run first in
    // the manager process; deferred ones become gated background
    // processes. Phase boundaries are recorded via marker flags so they
    // remain measurable while other processes (module loaders, deferred
    // kernel workers) compete for the machine.
    let init_done_flag = machine.flag("phase:init-done");
    let load_done_flag = machine.flag("phase:load-done");
    let mut manager_ops: Vec<Op> = Vec::new();
    for task in plan.init_tasks {
        if task.deferred {
            machine.spawn(
                ProcessSpec::new(
                    format!("systemd:{}", task.name),
                    vec![Op::WaitFlag(boot_complete), Op::Compute(task.cost)],
                )
                .with_nice(5),
            );
        } else {
            manager_ops.push(Op::Compute(task.cost));
        }
    }
    manager_ops.push(Op::SetFlag(init_done_flag));

    // Unit loading and parsing (what the Pre-parser accelerates).
    if cfg.load.io_bytes > 0 {
        manager_ops.push(Op::IoRead {
            device: cfg.device,
            bytes: cfg.load.io_bytes,
            pattern: cfg.load.pattern,
        });
    }
    if !cfg.load.cpu.is_zero() {
        manager_ops.push(Op::Compute(cfg.load.cpu));
    }
    manager_ops.push(Op::SetFlag(load_done_flag));

    // Transaction membership as a dense bitmap: the order filter and
    // per-service dependency filters test membership per edge, which
    // must not scan the job list each time.
    let mut is_job = vec![false; graph.len()];
    for &j in jobs.iter() {
        is_job[j] = true;
    }

    // Dispatch order.
    let ooo_order: Vec<usize>;
    let base_order: &[usize] = match cfg.mode {
        EngineMode::Serial | EngineMode::InOrder => {
            assert_eq!(
                plan.execution_order.len(),
                jobs.len(),
                "BootPlan::execution_order must cover the transaction \
                 (precompute it with Transaction::execution_order)"
            );
            plan.execution_order
        }
        EngineMode::OutOfOrder { .. } => {
            // Out-of-order engines use declaration order (name order for
            // determinism), ignoring dependencies.
            let mut v: Vec<usize> = jobs.iter().copied().collect();
            v.sort_by(|&a, &b| graph.unit(a).name.cmp(&graph.unit(b).name));
            ooo_order = v;
            &ooo_order
        }
    };
    let mut order: Vec<usize> = Vec::with_capacity(base_order.len());
    let mut seen = vec![false; graph.len()];
    for &j in plan
        .overrides
        .dispatch_first
        .iter()
        .chain(base_order.iter())
    {
        if is_job.get(j).copied().unwrap_or(false) && !seen[j] {
            seen[j] = true;
            order.push(j);
        }
    }

    // Dispatch every job (services self-gate), then spawn service-phase
    // housekeeping.
    let mut prev_ready: Option<FlagId> = None;
    let mut has_timeouts = false;
    // Per supervised job: (start-limit flag, escalation flag if any).
    let mut supervised: HashMap<usize, (FlagId, Option<FlagId>)> = HashMap::new();
    for &j in &order {
        let spec = service_spec(
            graph,
            plan,
            workloads,
            cfg,
            j,
            &is_job,
            &ready_flags,
            &cond_flags,
            boot_complete,
            prev_ready,
        );
        manager_ops.push(Op::Compute(cfg.costs.dispatch_cpu_per_job));
        manager_ops.push(Op::Spawn(spec));
        // TimeoutStartSec=: a watchdog forces the readiness flag when the
        // timeout expires, so dependents are released even if the service
        // hangs (recorded as `timed_out` when the watchdog fired first).
        // Built on `TimedWaitFlag` so a watchdog whose service becomes
        // ready exits immediately and never outlives the boot.
        let timeout_ms = graph.unit(j).exec.timeout_ms;
        if timeout_ms > 0 {
            has_timeouts = true;
            manager_ops.push(Op::Spawn(ProcessSpec::new(
                format!("timeout:{}", graph.unit(j).name),
                vec![
                    Op::TimedWaitFlag {
                        flag: ready_flags[&j],
                        timeout: SimDuration::from_millis(timeout_ms),
                    },
                    Op::SetFlag(ready_flags[&j]),
                ],
            )));
        }
        // Restart=/OnFailure= supervision: a crashed incarnation sets
        // `fault:crashed:<name>` (see bb-sim fault injection); a chain of
        // watchers respawns the unit — attempt k named `<unit>#k`, after
        // a `RestartSec=` backoff — up to `StartLimitBurst=` times, then
        // marks the start limit hit and activates the `OnFailure=`
        // units. Watchers whose crash never happens stay blocked and do
        // not extend the run. `StartLimitIntervalSec=` is parsed but a
        // single boot always falls inside one interval, so the burst
        // alone bounds respawns here.
        let exec = &graph.unit(j).exec;
        if exec.restart.restarts_on_crash() {
            let unit_name = graph.unit(j).name.clone();
            let burst = exec.start_limit_burst.max(1);
            let mut prev_attempt = unit_name.as_str().to_string();
            for k in 1..=burst {
                let attempt = format!("{unit_name}#{k}");
                let crashed_prev = machine.flag(format!("fault:crashed:{prev_attempt}"));
                let mut respawn = service_spec(
                    graph,
                    plan,
                    workloads,
                    cfg,
                    j,
                    &is_job,
                    &ready_flags,
                    &cond_flags,
                    boot_complete,
                    None,
                );
                respawn.name = attempt.clone();
                let mut w_ops = vec![Op::WaitFlag(crashed_prev)];
                if exec.restart_sec_ms > 0 {
                    w_ops.push(Op::Sleep(SimDuration::from_millis(exec.restart_sec_ms)));
                }
                w_ops.push(Op::Spawn(respawn));
                machine.spawn(
                    ProcessSpec::new(format!("restart:{attempt}"), w_ops)
                        .with_nice(cfg.costs.manager_nice),
                );
                prev_attempt = attempt;
            }
            let crashed_last = machine.flag(format!("fault:crashed:{prev_attempt}"));
            let limit_flag = machine.flag(format!("start-limit:{unit_name}"));
            let mut w_ops = vec![Op::WaitFlag(crashed_last), Op::SetFlag(limit_flag)];
            let escalate_flag = if graph.unit(j).on_failure.is_empty() {
                None
            } else {
                for target in &graph.unit(j).on_failure {
                    let target_ready = machine.flag(format!("ready:{target}"));
                    w_ops.push(Op::Spawn(escalation_spec(
                        graph,
                        workloads,
                        cfg,
                        target,
                        target_ready,
                    )));
                }
                let flag = machine.flag(format!("escalated:{unit_name}"));
                w_ops.push(Op::SetFlag(flag));
                Some(flag)
            };
            machine.spawn(
                ProcessSpec::new(format!("restart-limit:{unit_name}"), w_ops)
                    .with_nice(cfg.costs.manager_nice),
            );
            supervised.insert(j, (limit_flag, escalate_flag));
        }
        if cfg.mode == EngineMode::Serial {
            prev_ready = Some(ready_flags[&j]);
        }
    }
    for task in plan.service_phase_tasks {
        let mut ops = Vec::new();
        if task.deferred {
            ops.push(Op::WaitFlag(boot_complete));
        }
        ops.push(Op::Compute(task.cost));
        manager_ops.push(Op::Spawn(
            ProcessSpec::new(format!("systemd:{}", task.name), ops).with_nice(0),
        ));
    }
    machine
        .spawn(ProcessSpec::new("systemd-manager", manager_ops).with_nice(cfg.costs.manager_nice));

    // Boot-completion watcher: sets the gate when the definition is met.
    let completion_waits: Vec<Op> = plan
        .completion
        .iter()
        .map(|name| {
            let idx = graph
                .idx(name)
                .unwrap_or_else(|| panic!("completion unit {name} not in graph"));
            assert!(
                jobs.contains(&idx),
                "completion unit {name} not in the transaction"
            );
            Op::WaitFlag(ready_flags[&idx])
        })
        .chain([Op::SetFlag(boot_complete)])
        .collect();
    machine.spawn(ProcessSpec::new("boot-complete-watcher", completion_waits).with_nice(-20));

    let outcome = machine.run();

    // Assemble records from the trace, via dense pid-indexed lifecycle
    // tables — no per-process name clones or per-job full scans on the
    // common (no-restart, no-timeout) path.
    let mut services: BTreeMap<UnitName, ServiceRecord> = BTreeMap::new();
    let n_procs = machine.process_count();
    let mut spawned_at: Vec<Option<SimTime>> = vec![None; n_procs];
    let mut started_at: Vec<Option<SimTime>> = vec![None; n_procs];
    let mut finished_at: Vec<Option<SimTime>> = vec![None; n_procs];
    let mut proc_failed = vec![false; n_procs];
    for e in machine.trace().events() {
        let i = e.pid.index();
        match e.kind {
            bb_sim::TraceKind::Spawned { .. } => spawned_at[i] = Some(e.time),
            bb_sim::TraceKind::FirstRun => started_at[i] = Some(e.time),
            bb_sim::TraceKind::Finished => finished_at[i] = Some(e.time),
            bb_sim::TraceKind::Failed { .. } => proc_failed[i] = true,
            _ => {}
        }
    }
    let pid_at = |i: usize| bb_sim::Pid::from_raw(i as u32);
    let by_name: HashMap<&str, usize> = (0..n_procs)
        .map(|i| (machine.process(pid_at(i)).name.as_str(), i))
        .collect();
    // Who set each readiness flag (to attribute timeout releases); only
    // needed when a timeout watchdog could have forced one.
    let flag_setters: HashMap<FlagId, bb_sim::Pid> = if has_timeouts {
        machine
            .trace()
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                bb_sim::TraceKind::FlagSet { flag } => Some((flag, e.pid)),
                _ => None,
            })
            .collect()
    } else {
        HashMap::new()
    };
    for &j in jobs.iter() {
        let name = &graph.unit(j).name;
        let ready_flag = ready_flags[&j];
        let timed_out = has_timeouts
            && flag_setters
                .get(&ready_flag)
                .is_some_and(|&pid| machine.process(pid).name.starts_with("timeout:"));
        let mut rec = ServiceRecord {
            ready: machine.flag_set_at(ready_flag),
            timed_out,
            ..ServiceRecord::default()
        };
        if let Some(&i) = by_name.get(name.as_str()) {
            rec.spawned = spawned_at[i];
            rec.started = started_at[i];
            rec.finished = finished_at[i];
            rec.failed = proc_failed[i];
        }
        // Respawned incarnations are named `<unit>#<k>`; only supervised
        // units can have any.
        if graph.unit(j).exec.restart.restarts_on_crash() {
            let restart_prefix = format!("{name}#");
            rec.restarts = (0..n_procs)
                .filter(|&i| {
                    machine
                        .process(pid_at(i))
                        .name
                        .strip_prefix(&restart_prefix)
                        .is_some_and(|s| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()))
                })
                .count() as u32;
        }
        if let Some(&(limit_flag, escalate_flag)) = supervised.get(&j) {
            rec.start_limit_hit = machine.flag_set_at(limit_flag).is_some();
            rec.escalated = escalate_flag.is_some_and(|f| machine.flag_set_at(f).is_some());
        }
        services.insert(name.clone(), rec);
    }

    BootRecord {
        services,
        completion_time: machine.flag_set_at(boot_complete),
        userspace_start,
        init_done: machine
            .flag_set_at(init_done_flag)
            .expect("manager always sets the init marker"),
        load_done: machine
            .flag_set_at(load_done_flag)
            .expect("manager always sets the load marker"),
        outcome,
    }
}

/// Builds the simulated process for one job.
#[allow(clippy::too_many_arguments)]
fn service_spec(
    graph: &UnitGraph,
    plan: &BootPlan<'_>,
    workloads: &WorkloadMap,
    cfg: &EngineConfig,
    job: usize,
    is_job: &[bool],
    ready_flags: &JobFlags,
    cond_flags: &[Option<FlagId>],
    boot_complete: FlagId,
    serial_prev: Option<FlagId>,
) -> ProcessSpec {
    let unit = graph.unit(job);
    let isolated = plan.overrides.isolate.contains(&job);

    // Ordering predecessors this service waits for.
    let deps: Vec<usize> = match cfg.mode {
        EngineMode::Serial | EngineMode::OutOfOrder { .. } => Vec::new(),
        EngineMode::InOrder => {
            let mut seen = BTreeSet::new();
            graph
                .ordering_in_edges(job)
                .filter(|e| is_job[e.src])
                .filter(|e| !plan.overrides.drop_edges.contains(&(e.src, e.dst)))
                .filter(|e| {
                    // BB Group isolation: members ignore foreign
                    // declarations and never wait on non-members.
                    !isolated
                        || (plan.overrides.isolate.contains(&e.src)
                            && plan.overrides.isolate.contains(&e.declared_by))
                })
                .map(|e| e.src)
                .filter(|s| seen.insert(*s))
                .collect()
        }
    };

    let mut ops: Vec<Op> = Vec::new();
    if plan.overrides.defer.contains(&job) {
        ops.push(Op::WaitFlag(boot_complete));
    }
    if let Some(prev) = serial_prev {
        ops.push(Op::WaitFlag(prev));
    }
    match cfg.mode {
        EngineMode::InOrder => {
            for d in &deps {
                ops.push(Op::WaitFlag(ready_flags[d]));
            }
        }
        EngineMode::OutOfOrder {
            path_check,
            assert_deps,
        } => {
            let mut seen = BTreeSet::new();
            let raw_deps: Vec<usize> = graph
                .ordering_in_edges(job)
                .filter(|e| is_job[e.src])
                .map(|e| e.src)
                .filter(|s| seen.insert(*s))
                .collect();
            for d in raw_deps {
                if path_check {
                    ops.push(Op::PollFlag {
                        flag: ready_flags[&d],
                        interval: SimDuration::from_millis(50),
                        poll_cost: SimDuration::from_micros(80),
                    });
                } else if assert_deps {
                    ops.push(Op::AssertFlag(ready_flags[&d]));
                }
            }
        }
        EngineMode::Serial => {}
    }

    let fork_cost = plan
        .overrides
        .fork_cost
        .get(&job)
        .copied()
        .unwrap_or(cfg.costs.fork_exec_cost);
    ops.push(Op::Compute(fork_cost));

    let body = unit
        .exec
        .exec_start
        .as_deref()
        .and_then(|e| workloads.get(e))
        .cloned()
        .unwrap_or_else(|| ServiceBody {
            pre_ready: vec![Op::Compute(SimDuration::from_millis(2))],
            post_ready: Vec::new(),
        });
    let ready = ready_flags[&job];
    let cond = cond_flags[job];

    match unit.exec.service_type {
        ServiceType::Simple => {
            // Ready as soon as exec starts; condition skips the body.
            ops.push(Op::SetFlag(ready));
            push_conditional(&mut ops, cond, body.pre_ready);
            push_conditional(&mut ops, cond, body.post_ready);
        }
        ServiceType::Forking | ServiceType::Notify => {
            push_conditional(&mut ops, cond, body.pre_ready);
            ops.push(Op::SetFlag(ready));
            push_conditional(&mut ops, cond, body.post_ready);
        }
        ServiceType::Oneshot => {
            push_conditional(&mut ops, cond, body.pre_ready);
            push_conditional(&mut ops, cond, body.post_ready);
            ops.push(Op::SetFlag(ready));
        }
    }

    let nice = plan
        .overrides
        .nice
        .get(&job)
        .copied()
        .unwrap_or(unit.exec.nice);
    let io_class = plan
        .overrides
        .io_class
        .get(&job)
        .copied()
        .unwrap_or(unit.exec.io_class);
    let io_priority = match io_class {
        IoSchedulingClass::Realtime => bb_sim::IoPriority::Realtime,
        IoSchedulingClass::BestEffort => bb_sim::IoPriority::BestEffort,
        IoSchedulingClass::Idle => bb_sim::IoPriority::Idle,
    };
    ProcessSpec::new(unit.name.as_str(), ops)
        .with_nice(nice)
        .with_io_priority(io_priority)
}

/// Builds the process activating one `OnFailure=` unit. The target need
/// not be part of the transaction: if it is unknown (a rescue shell, a
/// reboot helper) it gets the default small body. Its readiness flag is
/// set so escalation is observable in the record and the trace.
fn escalation_spec(
    graph: &UnitGraph,
    workloads: &WorkloadMap,
    cfg: &EngineConfig,
    target: &UnitName,
    target_ready: FlagId,
) -> ProcessSpec {
    let body = graph
        .idx(target)
        .and_then(|i| graph.unit(i).exec.exec_start.as_deref())
        .and_then(|e| workloads.get(e))
        .cloned()
        .unwrap_or_else(|| ServiceBody {
            pre_ready: vec![Op::Compute(SimDuration::from_millis(2))],
            post_ready: Vec::new(),
        });
    let mut ops = vec![Op::Compute(cfg.costs.fork_exec_cost)];
    ops.extend(body.pre_ready);
    ops.push(Op::SetFlag(target_ready));
    ops.extend(body.post_ready);
    ProcessSpec::new(target.as_str(), ops)
}

/// Appends `body`, wrapped in a conditional skip when `cond` is present.
fn push_conditional(ops: &mut Vec<Op>, cond: Option<FlagId>, body: Vec<Op>) {
    if body.is_empty() {
        return;
    }
    if let Some(flag) = cond {
        ops.push(Op::CondSkip {
            flag,
            skip_ops: body.len() as u32,
        });
    }
    ops.extend(body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::Unit;
    use bb_sim::{DeviceProfile, MachineConfig, OpsBuilder};

    fn svc(name: &str) -> Unit {
        Unit::new(UnitName::new(name)).with_exec(format!("bin:{name}"))
    }

    fn body_ms(ms: u64) -> ServiceBody {
        ServiceBody {
            pre_ready: OpsBuilder::new().compute_ms(ms).build(),
            post_ready: Vec::new(),
        }
    }

    struct Setup {
        machine: Machine,
        cfg: EngineConfig,
    }

    fn setup(cores: usize) -> Setup {
        let mut machine = Machine::new(MachineConfig {
            cores,
            ..MachineConfig::default()
        });
        let device = machine.add_device("emmc", DeviceProfile::tv_emmc());
        let cfg = EngineConfig {
            mode: EngineMode::InOrder,
            load: LoadModel {
                io_bytes: 64 * 1024,
                pattern: AccessPattern::Random,
                cpu: SimDuration::from_millis(5),
            },
            costs: ManagerCosts::default(),
            device,
        };
        Setup { machine, cfg }
    }

    /// Units: a ← b ← c chain plus an independent d; completion = c.
    fn chain_units() -> Vec<Unit> {
        vec![
            Unit::new(UnitName::new("boot.target"))
                .requires("c.service")
                .requires("d.service"),
            svc("a.service").with_type(ServiceType::Forking),
            svc("b.service")
                .needs("a.service")
                .with_type(ServiceType::Forking),
            svc("c.service")
                .needs("b.service")
                .with_type(ServiceType::Forking),
            svc("d.service").with_type(ServiceType::Forking),
        ]
    }

    fn workloads(ms: u64) -> WorkloadMap {
        ["a", "b", "c", "d"]
            .iter()
            .map(|n| (format!("bin:{n}.service"), body_ms(ms)))
            .collect()
    }

    /// Owned plan parts: the engine's `BootPlan` is all borrows, so
    /// tests build (and freely mutate) this and borrow a view per boot.
    struct TestPlan {
        transaction: Transaction,
        completion: Vec<UnitName>,
        overrides: PlanOverrides,
        init_tasks: Vec<ManagerTask>,
        execution_order: Vec<usize>,
    }

    impl TestPlan {
        fn as_plan<'g>(&'g self, graph: &'g UnitGraph) -> BootPlan<'g> {
            BootPlan {
                graph,
                transaction: &self.transaction,
                completion: &self.completion,
                overrides: &self.overrides,
                init_tasks: &self.init_tasks,
                service_phase_tasks: &[],
                execution_order: &self.execution_order,
            }
        }
    }

    fn plan(graph: &UnitGraph, completion: &[&str]) -> TestPlan {
        // `a` is not pulled by the target in chain_units; pull everything
        // required transitively through c.
        let transaction = Transaction::build(graph, "boot.target").unwrap();
        let execution_order = transaction.execution_order(graph);
        TestPlan {
            transaction,
            completion: completion.iter().map(|c| UnitName::new(*c)).collect(),
            overrides: PlanOverrides::default(),
            init_tasks: Vec::new(),
            execution_order,
        }
    }

    #[test]
    fn in_order_respects_dependencies() {
        let graph = UnitGraph::build(chain_units()).unwrap();
        let mut s = setup(4);
        let p = plan(&graph, &["c.service"]);
        let record = run_boot(&mut s.machine, &p.as_plan(&graph), &workloads(10), &s.cfg);
        let a = record.service("a.service").ready.unwrap();
        let b = record.service("b.service").ready.unwrap();
        let c = record.service("c.service").ready.unwrap();
        assert!(a < b && b < c, "chain order violated: {a} {b} {c}");
        assert!(record.completion_time.unwrap() >= c);
        assert!(record.outcome.failed.is_empty());
    }

    #[test]
    fn independent_services_run_in_parallel() {
        let graph = UnitGraph::build(chain_units()).unwrap();
        let mut s = setup(4);
        let p = plan(&graph, &["c.service"]);
        let record = run_boot(&mut s.machine, &p.as_plan(&graph), &workloads(10), &s.cfg);
        // d has no deps: its ready time should be near a's, far before c.
        let a = record.service("a.service").ready.unwrap();
        let d = record.service("d.service").ready.unwrap();
        let c = record.service("c.service").ready.unwrap();
        assert!(d.as_millis() <= a.as_millis() + 15);
        assert!(d < c);
    }

    #[test]
    fn serial_engine_is_slower_than_in_order() {
        let graph = UnitGraph::build(chain_units()).unwrap();
        let mut s1 = setup(4);
        let p1 = plan(&graph, &["c.service"]);
        let inorder = run_boot(
            &mut s1.machine,
            &p1.as_plan(&graph),
            &workloads(10),
            &s1.cfg,
        );

        let mut s2 = setup(4);
        let mut cfg = s2.cfg;
        cfg.mode = EngineMode::Serial;
        let p2 = plan(&graph, &["c.service"]);
        let serial = run_boot(&mut s2.machine, &p2.as_plan(&graph), &workloads(10), &cfg);
        assert!(serial.boot_time() > inorder.boot_time());
        assert!(serial.outcome.failed.is_empty());
    }

    #[test]
    fn out_of_order_with_asserts_fails_dependents() {
        let graph = UnitGraph::build(chain_units()).unwrap();
        let mut s = setup(4);
        let mut cfg = s.cfg;
        cfg.mode = EngineMode::OutOfOrder {
            path_check: false,
            assert_deps: true,
        };
        let p = plan(&graph, &["c.service"]);
        let record = run_boot(&mut s.machine, &p.as_plan(&graph), &workloads(10), &cfg);
        // b and c start immediately, find their prerequisites missing,
        // and crash; the boot never completes.
        assert!(!record.failed_services().is_empty());
        assert!(record.completion_time.is_none());
    }

    #[test]
    fn out_of_order_with_path_check_completes_but_burns_cpu() {
        let graph = UnitGraph::build(chain_units()).unwrap();
        let mut s = setup(4);
        let mut cfg = s.cfg;
        cfg.mode = EngineMode::OutOfOrder {
            path_check: true,
            assert_deps: false,
        };
        let p = plan(&graph, &["c.service"]);
        let record = run_boot(&mut s.machine, &p.as_plan(&graph), &workloads(10), &cfg);
        assert!(record.completion_time.is_some());
        assert!(record.outcome.failed.is_empty());
        // Polling quantizes readiness to the 50 ms retry interval: the
        // chain completes later than the dependency-gated engine would.
        let mut s2 = setup(4);
        let p2 = plan(&graph, &["c.service"]);
        let inorder = run_boot(
            &mut s2.machine,
            &p2.as_plan(&graph),
            &workloads(10),
            &s2.cfg,
        );
        assert!(record.boot_time() > inorder.boot_time());
    }

    #[test]
    fn deferred_services_wait_for_completion() {
        let graph = UnitGraph::build(chain_units()).unwrap();
        let mut s = setup(4);
        let mut p = plan(&graph, &["c.service"]);
        let d = graph.idx_of("d.service");
        p.overrides.defer.insert(d);
        let record = run_boot(&mut s.machine, &p.as_plan(&graph), &workloads(10), &s.cfg);
        let completion = record.completion_time.unwrap();
        let d_ready = record.service("d.service").ready.unwrap();
        assert!(d_ready > completion);
    }

    #[test]
    fn isolation_drops_foreign_before_edges() {
        // Foreign units declare Before=var.mount (the §4.2 abuse): the
        // isolated group ignores them.
        let mut units = vec![
            Unit::new(UnitName::new("boot.target"))
                .requires("dbus.service")
                .requires("slow1.service")
                .requires("slow2.service"),
            svc("var.mount").with_type(ServiceType::Oneshot),
            svc("dbus.service")
                .needs("var.mount")
                .with_type(ServiceType::Forking),
        ];
        for i in 1..=2 {
            units.push(
                svc(&format!("slow{i}.service"))
                    .before("var.mount")
                    .with_type(ServiceType::Forking),
            );
        }
        let graph = UnitGraph::build(units).unwrap();
        let mut wl = WorkloadMap::new();
        wl.insert("bin:var.mount".into(), body_ms(5));
        wl.insert("bin:dbus.service".into(), body_ms(10));
        wl.insert("bin:slow1.service".into(), body_ms(100));
        wl.insert("bin:slow2.service".into(), body_ms(100));

        // Conventional: dbus waits for var.mount which waits for slows.
        let mut s1 = setup(2);
        let p1 = plan(&graph, &["dbus.service"]);
        let conv = run_boot(&mut s1.machine, &p1.as_plan(&graph), &wl, &s1.cfg);

        // Isolated: var.mount + dbus in the BB group.
        let mut s2 = setup(2);
        let mut p2 = plan(&graph, &["dbus.service"]);
        p2.overrides.isolate = [graph.idx_of("var.mount"), graph.idx_of("dbus.service")].into();
        p2.overrides.dispatch_first = vec![graph.idx_of("var.mount"), graph.idx_of("dbus.service")];
        for &j in &p2.overrides.isolate.clone() {
            p2.overrides.nice.insert(j, -15);
        }
        let boosted = run_boot(&mut s2.machine, &p2.as_plan(&graph), &wl, &s2.cfg);

        let conv_dbus = conv.service("dbus.service").ready.unwrap();
        let boosted_dbus = boosted.service("dbus.service").ready.unwrap();
        assert!(
            boosted_dbus.as_millis() * 2 < conv_dbus.as_millis(),
            "isolation did not advance dbus: {boosted_dbus} vs {conv_dbus}"
        );
    }

    #[test]
    fn init_tasks_delay_or_defer() {
        let graph = UnitGraph::build(chain_units()).unwrap();
        let tasks = |deferred: bool| {
            vec![
                ManagerTask::new("enable-logging", SimDuration::from_millis(28)),
                if deferred {
                    ManagerTask::new("setup-hostname", SimDuration::from_millis(13)).deferred()
                } else {
                    ManagerTask::new("setup-hostname", SimDuration::from_millis(13))
                },
            ]
        };
        let mut s1 = setup(4);
        let mut p1 = plan(&graph, &["c.service"]);
        p1.init_tasks = tasks(false);
        let conv = run_boot(&mut s1.machine, &p1.as_plan(&graph), &workloads(5), &s1.cfg);
        assert_eq!(conv.init_done.since(conv.userspace_start).as_millis(), 41);

        let mut s2 = setup(4);
        let mut p2 = plan(&graph, &["c.service"]);
        p2.init_tasks = tasks(true);
        let boosted = run_boot(&mut s2.machine, &p2.as_plan(&graph), &workloads(5), &s2.cfg);
        assert_eq!(
            boosted.init_done.since(boosted.userspace_start).as_millis(),
            28
        );
        assert!(boosted.boot_time() < conv.boot_time());
    }

    #[test]
    fn condition_path_skips_body_but_marks_ready() {
        let mut unit = svc("cond.service").with_type(ServiceType::Oneshot);
        unit.condition_path_exists = Some("/nonexistent".into());
        let units = vec![
            Unit::new(UnitName::new("boot.target")).requires("cond.service"),
            unit,
        ];
        let graph = UnitGraph::build(units).unwrap();
        let mut s = setup(2);
        let mut wl = WorkloadMap::new();
        wl.insert("bin:cond.service".into(), body_ms(500));
        let p = plan(&graph, &["cond.service"]);
        let record = run_boot(&mut s.machine, &p.as_plan(&graph), &wl, &s.cfg);
        // Ready despite the skipped 500 ms body: completion well under it.
        let ready = record.service("cond.service").ready.unwrap();
        assert!(ready.since(record.load_done).as_millis() < 50);
    }

    #[test]
    fn priority_override_wins_cpu_contention() {
        // One core, two independent services; the prioritized one
        // finishes first even though dispatched second.
        let units = vec![
            Unit::new(UnitName::new("boot.target"))
                .requires("hi.service")
                .requires("lo.service"),
            svc("hi.service").with_type(ServiceType::Oneshot),
            svc("lo.service").with_type(ServiceType::Oneshot),
        ];
        let graph = UnitGraph::build(units).unwrap();
        let mut s = setup(1);
        let mut wl = WorkloadMap::new();
        wl.insert("bin:hi.service".into(), body_ms(20));
        wl.insert("bin:lo.service".into(), body_ms(20));
        let mut p = plan(&graph, &["hi.service", "lo.service"]);
        p.overrides.nice.insert(graph.idx_of("hi.service"), -15);
        let record = run_boot(&mut s.machine, &p.as_plan(&graph), &wl, &s.cfg);
        let hi = record.service("hi.service").ready.unwrap();
        let lo = record.service("lo.service").ready.unwrap();
        assert!(hi < lo, "priority override ineffective: {hi} vs {lo}");
    }

    #[test]
    fn crashed_service_is_restarted_and_boot_completes() {
        let mut units = chain_units();
        units[2] = svc("b.service")
            .needs("a.service")
            .with_type(ServiceType::Forking)
            .with_restart(crate::unit::RestartPolicy::OnFailure)
            .with_restart_sec_ms(50);
        let graph = UnitGraph::build(units).unwrap();
        let mut s = setup(4);
        s.machine.install_fault_plan(&bb_sim::FaultPlan {
            faults: vec![bb_sim::Fault::CrashAtReadiness {
                process: "b.service".into(),
                hits: 1,
            }],
            seed: 0,
        });
        let p = plan(&graph, &["c.service"]);
        let record = run_boot(&mut s.machine, &p.as_plan(&graph), &workloads(10), &s.cfg);
        let b = record.service("b.service");
        assert_eq!(b.restarts, 1);
        assert_eq!(b.outcome(), UnitOutcome::Restarted(1));
        assert!(!b.start_limit_hit);
        assert!(b.ready.is_some(), "respawned b never became ready");
        let c = record.service("c.service");
        assert_eq!(c.outcome(), UnitOutcome::Clean);
        assert!(
            c.ready.unwrap() > b.ready.unwrap(),
            "c must wait for the respawned b"
        );
        assert!(record.completion_time.is_some());
    }

    #[test]
    fn start_limit_breaks_restart_loop_and_escalates() {
        let mut units = chain_units();
        units[2] = svc("b.service")
            .needs("a.service")
            .with_type(ServiceType::Forking)
            .with_restart(crate::unit::RestartPolicy::Always)
            .with_restart_sec_ms(10)
            .with_start_limit_burst(2)
            .on_failure("rescue.service");
        let graph = UnitGraph::build(units).unwrap();
        let mut s = setup(4);
        s.machine.install_fault_plan(&bb_sim::FaultPlan {
            faults: vec![bb_sim::Fault::CrashAtReadiness {
                process: "b.service".into(),
                hits: 10,
            }],
            seed: 0,
        });
        let p = plan(&graph, &["c.service"]);
        let record = run_boot(&mut s.machine, &p.as_plan(&graph), &workloads(10), &s.cfg);
        let b = record.service("b.service");
        // Original + 2 respawns all crash; the chain stops at the burst.
        assert_eq!(b.restarts, 2);
        assert!(b.start_limit_hit);
        assert!(b.escalated);
        assert_eq!(b.outcome(), UnitOutcome::Escalated);
        assert!(b.ready.is_none());
        // c depends on b: the boot never completes (fallback territory).
        assert!(record.completion_time.is_none());
        // The escalation unit ran: its readiness flag was set.
        let rescue = s.machine.flag("ready:rescue.service");
        assert!(s.machine.flag_set_at(rescue).is_some());
    }

    #[test]
    fn unsupervised_crash_is_attributed_as_failed() {
        let graph = UnitGraph::build(chain_units()).unwrap();
        let mut s = setup(4);
        s.machine.install_fault_plan(&bb_sim::FaultPlan {
            faults: vec![bb_sim::Fault::CrashAtReadiness {
                process: "d.service".into(),
                hits: 1,
            }],
            seed: 0,
        });
        let p = plan(&graph, &["c.service"]);
        let record = run_boot(&mut s.machine, &p.as_plan(&graph), &workloads(10), &s.cfg);
        let d = record.service("d.service");
        assert_eq!(d.outcome(), UnitOutcome::Failed);
        assert_eq!(d.restarts, 0);
        assert!(d.ready.is_none());
    }

    #[test]
    fn timeout_watchdog_does_not_outlive_a_ready_service() {
        let mut unit = svc("t.service").with_type(ServiceType::Forking);
        unit.exec.timeout_ms = 60_000;
        let units = vec![
            Unit::new(UnitName::new("boot.target")).requires("t.service"),
            unit,
        ];
        let graph = UnitGraph::build(units).unwrap();
        let mut s = setup(2);
        let mut wl = WorkloadMap::new();
        wl.insert("bin:t.service".into(), body_ms(10));
        let p = plan(&graph, &["t.service"]);
        let record = run_boot(&mut s.machine, &p.as_plan(&graph), &wl, &s.cfg);
        assert!(!record.service("t.service").timed_out);
        // The watchdog exits when readiness appears: quiescence arrives
        // long before the 60 s timeout would.
        assert!(record.outcome.end_time.as_millis() < 1_000);
    }

    #[test]
    fn boot_record_phases_are_ordered() {
        let graph = UnitGraph::build(chain_units()).unwrap();
        let mut s = setup(4);
        let mut p = plan(&graph, &["c.service"]);
        p.init_tasks = vec![ManagerTask::new("x", SimDuration::from_millis(5))];
        let record = run_boot(&mut s.machine, &p.as_plan(&graph), &workloads(5), &s.cfg);
        assert!(record.userspace_start <= record.init_done);
        assert!(record.init_done <= record.load_done);
        assert!(record.load_done <= record.completion_time.unwrap());
    }
}
