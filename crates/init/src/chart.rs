//! Bootchart rendering and boot-time analysis.
//!
//! Reproduces the systemd-bootchart visualizations of the paper's
//! Figures 5(a) and 7 (services as horizontal bars over time, CPU
//! utilization in the background) as ASCII and SVG, plus the
//! `systemd-analyze blame` / `critical-chain` style reports used to
//! attribute boot time.

use std::fmt::Write as _;

use bb_sim::{Machine, SimTime};

use crate::engine::BootRecord;
use crate::graph::UnitGraph;
use crate::unit::UnitName;

/// One row of a bootchart.
#[derive(Debug, Clone)]
pub struct ChartRow {
    /// Unit name.
    pub name: UnitName,
    /// When the process was spawned (queued).
    pub spawned: SimTime,
    /// First CPU dispatch.
    pub started: SimTime,
    /// Readiness signal.
    pub ready: SimTime,
}

/// A bootchart: rows sorted by start time plus utilization samples.
#[derive(Debug, Clone)]
pub struct Bootchart {
    /// Rows in start order.
    pub rows: Vec<ChartRow>,
    /// End of the charted window (boot completion or last ready).
    pub end: SimTime,
    /// CPU utilization (0–1) per [`Bootchart::SAMPLES`] buckets.
    pub utilization: Vec<f64>,
}

impl Bootchart {
    /// Number of utilization buckets sampled across the window.
    pub const SAMPLES: usize = 60;

    /// Builds a chart from a boot record and the machine that ran it.
    pub fn build(record: &BootRecord, machine: &Machine) -> Bootchart {
        let mut rows: Vec<ChartRow> = record
            .services
            .iter()
            .filter_map(|(name, r)| {
                Some(ChartRow {
                    name: name.clone(),
                    spawned: r.spawned?,
                    started: r.started?,
                    ready: r.ready?,
                })
            })
            .collect();
        rows.sort_by_key(|r| (r.started, r.name.clone()));
        let end = record
            .completion_time
            .into_iter()
            .chain(rows.iter().map(|r| r.ready))
            .max()
            .unwrap_or(SimTime::ZERO);
        let cores = machine.config().cores;
        let mut utilization = Vec::with_capacity(Self::SAMPLES);
        let span = end.saturating_since(SimTime::ZERO);
        for i in 0..Self::SAMPLES {
            let lo = SimTime::ZERO + span.scale(i as f64 / Self::SAMPLES as f64);
            let hi = SimTime::ZERO + span.scale((i + 1) as f64 / Self::SAMPLES as f64);
            utilization.push(machine.trace().utilization(lo, hi, cores));
        }
        Bootchart {
            rows,
            end,
            utilization,
        }
    }

    /// Renders an ASCII chart: one row per service, `.` queued,
    /// `=` running-to-ready, `#` the ready instant; a CPU row on top.
    ///
    /// # Panics
    ///
    /// Panics if `width < 10` (too narrow to render anything).
    pub fn to_ascii(&self, width: usize) -> String {
        assert!(width >= 10, "chart width must be at least 10");
        let mut s = String::new();
        let total = self.end.as_nanos().max(1);
        let col =
            |t: SimTime| ((t.as_nanos() as u128 * (width as u128 - 1)) / total as u128) as usize;
        let _ = writeln!(s, "time: 0 .. {}", self.end);
        // CPU utilization sparkline.
        let levels = [' ', '.', ':', '-', '=', '+', '*', '#'];
        let mut cpu_row = String::with_capacity(width);
        for i in 0..width {
            let bucket = i * Self::SAMPLES / width;
            let u = self.utilization.get(bucket).copied().unwrap_or(0.0);
            let lvl = ((u * (levels.len() - 1) as f64).round() as usize).min(levels.len() - 1);
            cpu_row.push(levels[lvl]);
        }
        let _ = writeln!(s, "{:>24} |{}|", "cpu", cpu_row);
        for row in &self.rows {
            let mut line = vec![' '; width];
            let (q, st, rd) = (col(row.spawned), col(row.started), col(row.ready));
            for c in line.iter_mut().take(st).skip(q) {
                *c = '.';
            }
            for c in line.iter_mut().take(rd).skip(st) {
                *c = '=';
            }
            line[rd.min(width - 1)] = '#';
            let _ = writeln!(
                s,
                "{:>24} |{}| {:.0}ms",
                truncate(row.name.as_str(), 24),
                line.iter().collect::<String>(),
                row.ready.as_millis_f64()
            );
        }
        s
    }

    /// Renders an SVG chart in the systemd-bootchart style.
    pub fn to_svg(&self) -> String {
        let width = 900.0;
        let row_h = 14.0;
        let top = 40.0;
        let height = top + self.rows.len() as f64 * row_h + 20.0;
        let total = self.end.as_nanos().max(1) as f64;
        let x = |t: SimTime| 180.0 + (t.as_nanos() as f64 / total) * (width - 200.0);
        let mut s = String::new();
        let _ = writeln!(
            s,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="monospace" font-size="10">"#
        );
        // CPU utilization background.
        for (i, u) in self.utilization.iter().enumerate() {
            let bx = 180.0 + (i as f64 / Self::SAMPLES as f64) * (width - 200.0);
            let bw = (width - 200.0) / Self::SAMPLES as f64;
            let _ = writeln!(
                s,
                r##"<rect x="{bx:.1}" y="{top}" width="{bw:.1}" height="{:.1}" fill="#d0e0ff" opacity="{:.2}"/>"##,
                self.rows.len() as f64 * row_h,
                u
            );
        }
        for (i, row) in self.rows.iter().enumerate() {
            let y = top + i as f64 * row_h;
            let _ = writeln!(
                s,
                r#"<text x="2" y="{:.1}">{}</text>"#,
                y + row_h - 4.0,
                row.name
            );
            let _ = writeln!(
                s,
                r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#cccccc"/>"##,
                x(row.spawned),
                y + 3.0,
                (x(row.started) - x(row.spawned)).max(0.5),
                row_h - 6.0
            );
            let _ = writeln!(
                s,
                r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#4a90d9"/>"##,
                x(row.started),
                y + 3.0,
                (x(row.ready) - x(row.started)).max(0.5),
                row_h - 6.0
            );
        }
        let _ = writeln!(
            s,
            r#"<text x="180" y="20">boot 0 .. {} ({} services)</text>"#,
            self.end,
            self.rows.len()
        );
        s.push_str("</svg>\n");
        s
    }
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((idx, _)) => &s[..idx],
        None => s,
    }
}

/// `systemd-analyze time`-style summary of a boot record.
pub fn time_summary(record: &BootRecord) -> String {
    let kernel = record.userspace_start;
    let init = record.init_done.saturating_since(record.userspace_start);
    let load = record.load_done.saturating_since(record.init_done);
    match record.completion_time {
        Some(done) => {
            let services = done.saturating_since(record.load_done);
            format!(
                "Startup finished in {kernel} (firmware+kernel) + {init} (init) + {load} (units) + {services} (services) = {done}"
            )
        }
        None => format!(
            "Startup DID NOT FINISH: {kernel} (firmware+kernel) + {init} (init) + {load} (units), then stalled"
        ),
    }
}

/// Renders a critical chain as the indented tree `systemd-analyze
/// critical-chain` prints (latest unit first, each line showing the
/// gating unit's readiness time).
pub fn render_critical_chain(chain: &[(UnitName, SimTime)]) -> String {
    let mut s = String::new();
    for (depth, (name, ready)) in chain.iter().enumerate() {
        let indent = "  ".repeat(depth);
        let _ = writeln!(s, "{indent}{name} @{ready}");
    }
    s
}

/// `systemd-analyze blame`: units by activation time (first dispatch to
/// readiness — queueing behind dependencies is not charged), descending.
pub fn blame(record: &BootRecord) -> Vec<(UnitName, bb_sim::SimDuration)> {
    let mut v: Vec<(UnitName, bb_sim::SimDuration)> = record
        .services
        .iter()
        .filter_map(|(n, r)| {
            let started = r.started?;
            let ready = r.ready?;
            Some((n.clone(), ready.saturating_since(started)))
        })
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

/// `systemd-analyze critical-chain`: walks from `from` backwards through
/// the ordering predecessor that became ready last, yielding the chain
/// that gated each step (latest-ready first element is `from` itself).
pub fn critical_chain(
    record: &BootRecord,
    graph: &UnitGraph,
    from: &UnitName,
) -> Vec<(UnitName, SimTime)> {
    let mut chain = Vec::new();
    let mut current = graph.idx(from);
    while let Some(idx) = current {
        let name = &graph.unit(idx).name;
        let Some(rec) = record.services.get(name) else {
            break;
        };
        let Some(ready) = rec.ready else { break };
        chain.push((name.clone(), ready));
        // The gating predecessor is the one ready last among those ready
        // *before* this unit — a BB-isolated unit may have ignored
        // declared predecessors entirely, in which case the chain ends.
        current = graph
            .ordering_preds(idx)
            .into_iter()
            .filter_map(|p| {
                let pname = &graph.unit(p).name;
                record
                    .services
                    .get(pname)
                    .and_then(|r| r.ready)
                    .filter(|&t| t <= ready)
                    .map(|t| (p, t))
            })
            .max_by_key(|&(_, t)| t)
            .map(|(p, _)| p);
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{
        run_boot, BootPlan, EngineConfig, EngineMode, LoadModel, ManagerCosts, PlanOverrides,
        ServiceBody, WorkloadMap,
    };
    use crate::transaction::Transaction;
    use crate::unit::{ServiceType, Unit};
    use bb_sim::{AccessPattern, DeviceProfile, MachineConfig, OpsBuilder, SimDuration};

    fn boot() -> (BootRecord, Machine, UnitGraph) {
        let units = vec![
            Unit::new(UnitName::new("boot.target")).requires("b.service"),
            Unit::new(UnitName::new("a.service"))
                .with_exec("bin:a")
                .with_type(ServiceType::Forking),
            Unit::new(UnitName::new("b.service"))
                .needs("a.service")
                .with_exec("bin:b")
                .with_type(ServiceType::Forking),
        ];
        let graph = UnitGraph::build(units).unwrap();
        let mut machine = Machine::new(MachineConfig::default());
        let device = machine.add_device("emmc", DeviceProfile::tv_emmc());
        let mut wl = WorkloadMap::new();
        for (k, ms) in [("bin:a", 20u64), ("bin:b", 10)] {
            wl.insert(
                k.into(),
                ServiceBody {
                    pre_ready: OpsBuilder::new().compute_ms(ms).build(),
                    post_ready: Vec::new(),
                },
            );
        }
        let transaction = Transaction::build(&graph, "boot.target").unwrap();
        let execution_order = transaction.execution_order(&graph);
        let completion = vec![UnitName::new("b.service")];
        let overrides = PlanOverrides::default();
        let plan = BootPlan {
            graph: &graph,
            transaction: &transaction,
            completion: &completion,
            overrides: &overrides,
            init_tasks: &[],
            service_phase_tasks: &[],
            execution_order: &execution_order,
        };
        let cfg = EngineConfig {
            mode: EngineMode::InOrder,
            load: LoadModel {
                io_bytes: 1024,
                pattern: AccessPattern::Random,
                cpu: SimDuration::from_millis(1),
            },
            costs: ManagerCosts::default(),
            device,
        };
        let record = run_boot(&mut machine, &plan, &wl, &cfg);
        (record, machine, graph)
    }

    #[test]
    fn chart_rows_are_ordered_and_complete() {
        let (record, machine, _) = boot();
        let chart = Bootchart::build(&record, &machine);
        assert_eq!(chart.rows.len(), 3); // a, b, boot.target
        assert!(chart.rows.windows(2).all(|w| w[0].started <= w[1].started));
        assert_eq!(chart.utilization.len(), Bootchart::SAMPLES);
        assert!(chart.utilization.iter().all(|u| (0.0..=1.0).contains(u)));
    }

    #[test]
    fn ascii_chart_mentions_services() {
        let (record, machine, _) = boot();
        let chart = Bootchart::build(&record, &machine);
        let text = chart.to_ascii(80);
        assert!(text.contains("a.service"));
        assert!(text.contains("b.service"));
        assert!(text.contains("cpu"));
    }

    #[test]
    fn svg_chart_is_wellformed_enough() {
        let (record, machine, _) = boot();
        let chart = Bootchart::build(&record, &machine);
        let svg = chart.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<text").count(), chart.rows.len() + 1);
    }

    #[test]
    fn blame_orders_by_duration() {
        let (record, _, _) = boot();
        let b = blame(&record);
        assert!(b.windows(2).all(|w| w[0].1 >= w[1].1));
        // a.service has the 20 ms body, so it ranks first among services.
        assert_eq!(b[0].0.as_str(), "a.service");
    }

    #[test]
    fn time_summary_reads_like_systemd_analyze() {
        let (record, _, _) = boot();
        let text = time_summary(&record);
        assert!(text.starts_with("Startup finished in"));
        assert!(text.contains("(services)"));
    }

    #[test]
    fn chain_renderer_indents() {
        let (record, _, graph) = boot();
        let chain = critical_chain(&record, &graph, &UnitName::new("b.service"));
        let text = render_critical_chain(&chain);
        assert!(text.contains("b.service"));
        assert!(text.contains("  a.service"));
    }

    #[test]
    fn critical_chain_walks_ordering() {
        let (record, _, graph) = boot();
        let chain = critical_chain(&record, &graph, &UnitName::new("b.service"));
        let names: Vec<&str> = chain.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["b.service", "a.service"]);
        assert!(chain[0].1 > chain[1].1);
    }
}
#[cfg(test)]
mod regression_tests {
    use super::truncate;

    #[test]
    fn truncate_respects_char_boundaries() {
        assert_eq!(truncate("télévision-décodeur.service", 4), "télé");
        assert_eq!(truncate("short", 24), "short");
        assert_eq!(truncate("", 3), "");
    }
}
