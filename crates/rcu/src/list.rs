//! An RCU-protected singly-linked list, after the kernel's `list_rcu`
//! pattern: readers traverse lock-free inside a read-side critical
//! section; writers serialize among themselves with a mutex, publish
//! with atomic pointer stores, and reclaim removed nodes only after a
//! grace period.
//!
//! This is the data-structure shape boot-time kernel code protects with
//! the `synchronize_rcu` calls the RCU Booster accelerates: frequently
//! read registries (drivers, notifier chains, module lists) with rare
//! writes.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::domain::{RcuDomain, ReadGuard};

struct Node<T> {
    value: T,
    next: AtomicPtr<Node<T>>,
}

/// An RCU-protected singly-linked list.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use bb_rcu::{RcuDomain, RcuList, WaitStrategy};
///
/// let domain = Arc::new(RcuDomain::new(WaitStrategy::Boosted));
/// let list = RcuList::new(Arc::clone(&domain));
/// list.push_front(2);
/// list.push_front(1);
/// let handle = domain.register_reader();
/// let guard = handle.read_lock();
/// let items: Vec<i32> = list.iter(&guard).copied().collect();
/// assert_eq!(items, vec![1, 2]);
/// ```
pub struct RcuList<T: Send + Sync> {
    head: AtomicPtr<Node<T>>,
    domain: Arc<RcuDomain>,
    /// Serializes writers (the kernel's external update-side lock).
    writer: Mutex<()>,
}

impl<T: Send + Sync> std::fmt::Debug for RcuList<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RcuList").finish_non_exhaustive()
    }
}

impl<T: Send + Sync> RcuList<T> {
    /// Creates an empty list protected by `domain`.
    pub fn new(domain: Arc<RcuDomain>) -> Self {
        RcuList {
            head: AtomicPtr::new(std::ptr::null_mut()),
            domain,
            writer: Mutex::new(()),
        }
    }

    /// Inserts at the front (publish with a single pointer store).
    pub fn push_front(&self, value: T) {
        let _w = self.writer.lock();
        let old_head = self.head.load(Ordering::SeqCst);
        let node = Box::into_raw(Box::new(Node {
            value,
            next: AtomicPtr::new(old_head),
        }));
        self.head.store(node, Ordering::SeqCst);
    }

    /// Removes the first element matching `pred`, returning whether one
    /// was removed. Blocks for a grace period before freeing the node.
    pub fn remove_first(&self, mut pred: impl FnMut(&T) -> bool) -> bool {
        let _w = self.writer.lock();
        // Unlink under the writer lock, searching via raw pointers.
        let mut link: &AtomicPtr<Node<T>> = &self.head;
        loop {
            let cur = link.load(Ordering::SeqCst);
            if cur.is_null() {
                return false;
            }
            // SAFETY: `cur` is non-null and owned by the list; only this
            // writer (we hold the lock) can unlink or free nodes, so it
            // is valid for the duration of this critical section.
            let node = unsafe { &*cur };
            if pred(&node.value) {
                let next = node.next.load(Ordering::SeqCst);
                // Publish the unlink; readers that already loaded `cur`
                // may still be traversing it.
                link.store(next, Ordering::SeqCst);
                // Wait for those readers, then reclaim.
                self.domain.synchronize();
                // SAFETY: `cur` was created by `Box::into_raw`, has been
                // unlinked (no new readers can reach it), and the grace
                // period guarantees pre-existing readers are done.
                drop(unsafe { Box::from_raw(cur) });
                return true;
            }
            link = &node.next;
        }
    }

    /// Iterates inside a read-side critical section.
    ///
    /// The guard must come from a reader registered with this list's
    /// domain; the items borrow from the guard's lifetime.
    pub fn iter<'g>(&'g self, _guard: &'g ReadGuard<'_>) -> Iter<'g, T> {
        Iter {
            cur: self.head.load(Ordering::SeqCst),
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of elements (snapshot taken inside a temporary read lock).
    pub fn len(&self) -> usize {
        let handle = self.domain.register_reader();
        let guard = handle.read_lock();
        self.iter(&guard).count()
    }

    /// True if the list currently has no elements.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::SeqCst).is_null()
    }

    /// The protecting domain.
    pub fn domain(&self) -> &Arc<RcuDomain> {
        &self.domain
    }
}

impl<T: Send + Sync> Drop for RcuList<T> {
    fn drop(&mut self) {
        // Exclusive access: free the remaining chain directly.
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive (`&mut self`) access; every node came
            // from `Box::into_raw` and is freed exactly once here.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next.load(Ordering::Relaxed);
        }
    }
}

// SAFETY: All shared mutation is via atomics under the writer mutex;
// readers only obtain `&T`. Same reasoning as `RcuCell`.
unsafe impl<T: Send + Sync> Send for RcuList<T> {}
// SAFETY: As above.
unsafe impl<T: Send + Sync> Sync for RcuList<T> {}

/// Lock-free iterator over a read-side snapshot of the list.
pub struct Iter<'g, T> {
    cur: *mut Node<T>,
    _marker: std::marker::PhantomData<&'g T>,
}

impl<'g, T> Iterator for Iter<'g, T> {
    type Item = &'g T;

    fn next(&mut self) -> Option<&'g T> {
        if self.cur.is_null() {
            return None;
        }
        // SAFETY: nodes reachable inside a read-side critical section
        // are kept alive until a grace period after their unlink; the
        // guard bound to `'g` keeps our section open.
        let node = unsafe { &*self.cur };
        self.cur = node.next.load(Ordering::SeqCst);
        Some(&node.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::WaitStrategy;
    use std::sync::atomic::{AtomicBool, AtomicUsize};
    use std::thread;

    fn list() -> (Arc<RcuDomain>, RcuList<u64>) {
        let domain = Arc::new(RcuDomain::new(WaitStrategy::Boosted));
        let list = RcuList::new(Arc::clone(&domain));
        (domain, list)
    }

    #[test]
    fn push_iter_remove() {
        let (domain, list) = list();
        assert!(list.is_empty());
        for v in [3u64, 2, 1] {
            list.push_front(v);
        }
        assert_eq!(list.len(), 3);
        {
            let h = domain.register_reader();
            let g = h.read_lock();
            let items: Vec<u64> = list.iter(&g).copied().collect();
            assert_eq!(items, vec![1, 2, 3]);
        }
        assert!(list.remove_first(|&v| v == 2));
        assert!(!list.remove_first(|&v| v == 99));
        assert_eq!(list.len(), 2);
        let h = domain.register_reader();
        let g = h.read_lock();
        let items: Vec<u64> = list.iter(&g).copied().collect();
        assert_eq!(items, vec![1, 3]);
    }

    #[test]
    fn removal_waits_for_readers() {
        struct DropFlag(Arc<AtomicUsize>);
        impl Drop for DropFlag {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let domain = Arc::new(RcuDomain::new(WaitStrategy::Boosted));
        let list = Arc::new(RcuList::new(Arc::clone(&domain)));
        let drops = Arc::new(AtomicUsize::new(0));
        list.push_front(DropFlag(Arc::clone(&drops)));

        let entered = Arc::new(AtomicBool::new(false));
        let reader = {
            let domain = Arc::clone(&domain);
            let list = Arc::clone(&list);
            let entered = Arc::clone(&entered);
            let drops = Arc::clone(&drops);
            thread::spawn(move || {
                let h = domain.register_reader();
                let g = h.read_lock();
                let count = list.iter(&g).count();
                assert_eq!(count, 1);
                entered.store(true, Ordering::SeqCst);
                thread::sleep(std::time::Duration::from_millis(80));
                // Still inside the section: the node must be alive.
                assert_eq!(drops.load(Ordering::SeqCst), 0);
            })
        };
        while !entered.load(Ordering::SeqCst) {
            thread::yield_now();
        }
        assert!(list.remove_first(|_| true));
        // remove_first returned → grace period passed → node freed, and
        // the reader must have exited first.
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        reader.join().unwrap();
    }

    #[test]
    fn concurrent_stress_readers_never_see_torn_state() {
        for strategy in [WaitStrategy::ClassicSpin, WaitStrategy::Boosted] {
            let domain = Arc::new(RcuDomain::new(strategy));
            let list = Arc::new(RcuList::new(Arc::clone(&domain)));
            let stop = Arc::new(AtomicBool::new(false));
            // Seed with even numbers; writers add/remove odd numbers, so
            // readers must always see all evens present.
            for v in [0u64, 2, 4, 6] {
                list.push_front(v);
            }
            let mut readers = Vec::new();
            for _ in 0..3 {
                let domain = Arc::clone(&domain);
                let list = Arc::clone(&list);
                let stop = Arc::clone(&stop);
                readers.push(thread::spawn(move || {
                    let h = domain.register_reader();
                    while !stop.load(Ordering::SeqCst) {
                        let g = h.read_lock();
                        let evens = list.iter(&g).filter(|&&v| v % 2 == 0).count();
                        assert_eq!(evens, 4, "lost an even element");
                    }
                }));
            }
            for i in 0..50u64 {
                let odd = i * 2 + 1;
                list.push_front(odd);
                assert!(list.remove_first(|&v| v == odd));
            }
            stop.store(true, Ordering::SeqCst);
            for r in readers {
                r.join().unwrap();
            }
            assert_eq!(list.len(), 4);
        }
    }

    #[test]
    fn drop_frees_everything() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let domain = Arc::new(RcuDomain::new(WaitStrategy::ClassicSpin));
            let list = RcuList::new(domain);
            for _ in 0..5 {
                list.push_front(Counted(Arc::clone(&drops)));
            }
        }
        assert_eq!(drops.load(Ordering::SeqCst), 5);
    }
}
