//! `RcuCell<T>`: a pointer to immutable data, readable without locks and
//! replaceable by writers who reclaim the old value after a grace period.
//!
//! This is the classic RCU usage pattern the kernel applies to routing
//! tables, module lists and the like: readers dereference the current
//! pointer inside a read-side critical section; writers publish a new
//! version with an atomic swap and free the old version only after
//! [`RcuDomain::synchronize`] guarantees no reader can still see it.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use crate::domain::{RcuDomain, ReadGuard, ReaderHandle};

/// An RCU-protected value.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use bb_rcu::{RcuCell, RcuDomain, WaitStrategy};
///
/// let domain = Arc::new(RcuDomain::new(WaitStrategy::Boosted));
/// let cell = RcuCell::new(1u32, Arc::clone(&domain));
/// let handle = domain.register_reader();
/// {
///     let guard = handle.read_lock();
///     assert_eq!(*cell.read(&guard), 1);
/// }
/// cell.update(2);
/// let guard = handle.read_lock();
/// assert_eq!(*cell.read(&guard), 2);
/// ```
#[derive(Debug)]
pub struct RcuCell<T: Send + Sync> {
    ptr: AtomicPtr<T>,
    domain: Arc<RcuDomain>,
}

impl<T: Send + Sync> RcuCell<T> {
    /// Creates a cell holding `value`, protected by `domain`.
    pub fn new(value: T, domain: Arc<RcuDomain>) -> Self {
        RcuCell {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
            domain,
        }
    }

    /// The protecting domain.
    pub fn domain(&self) -> &Arc<RcuDomain> {
        &self.domain
    }

    /// Dereferences the current version inside a read-side critical
    /// section.
    ///
    /// The guard must come from a [`ReaderHandle`] registered with this
    /// cell's domain; the reference it returns is valid until the guard
    /// is dropped.
    pub fn read<'g>(&'g self, _guard: &'g ReadGuard<'_>) -> &'g T {
        let p = self.ptr.load(Ordering::SeqCst);
        // SAFETY: `p` was produced by `Box::into_raw` and is only freed
        // by `update`/`Drop` after a grace period; the live `ReadGuard`
        // (whose lifetime bounds the returned reference) keeps the
        // reader's epoch slot active, so the grace period for any
        // version visible here cannot complete while the guard lives.
        unsafe { &*p }
    }

    /// Convenience: registers a temporary reader, reads, and clones.
    pub fn read_cloned(&self) -> T
    where
        T: Clone,
    {
        let handle: ReaderHandle<'_> = self.domain.register_reader();
        let guard = handle.read_lock();
        self.read(&guard).clone()
    }

    /// Publishes a new version and reclaims the old one after a grace
    /// period. Blocks (or spins, per the domain strategy) for that grace
    /// period.
    pub fn update(&self, value: T) {
        let new = Box::into_raw(Box::new(value));
        let old = self.ptr.swap(new, Ordering::SeqCst);
        self.domain.synchronize();
        // SAFETY: `old` came from `Box::into_raw` at construction or a
        // prior update, the swap above removed the only shared path to
        // it, and `synchronize()` guarantees every reader that could
        // have loaded `old` has exited its critical section.
        drop(unsafe { Box::from_raw(old) });
    }

    /// Publishes `f(current)` computed from the current version.
    ///
    /// The closure runs inside a read-side critical section of a
    /// temporary reader registration. Note this is not a compare-and-swap
    /// loop: concurrent writers serialize only at `synchronize()`, so
    /// last-publisher-wins applies, as with kernel RCU under an external
    /// update-side lock.
    pub fn update_with(&self, f: impl FnOnce(&T) -> T) {
        let handle = self.domain.register_reader();
        let new = {
            let guard = handle.read_lock();
            f(self.read(&guard))
        };
        drop(handle);
        self.update(new);
    }
}

impl<T: Send + Sync> Drop for RcuCell<T> {
    fn drop(&mut self) {
        let p = *self.ptr.get_mut();
        // SAFETY: `Drop` has exclusive access; no reader can hold a guard
        // borrowing `self` anymore, and `p` is the sole owner pointer.
        drop(unsafe { Box::from_raw(p) });
    }
}

// SAFETY: The cell hands out `&T` only and owns its allocation; `T` is
// required `Send + Sync`, and reclamation is serialized by the domain.
unsafe impl<T: Send + Sync> Send for RcuCell<T> {}
// SAFETY: As above; all shared-state mutation is via atomics.
unsafe impl<T: Send + Sync> Sync for RcuCell<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::WaitStrategy;
    use std::sync::atomic::{AtomicBool, AtomicUsize};
    use std::thread;

    /// A value that counts its drops, to verify deferred reclamation.
    struct DropCounter(Arc<AtomicUsize>, u64);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn read_sees_latest_update() {
        let d = Arc::new(RcuDomain::new(WaitStrategy::Boosted));
        let cell = RcuCell::new(10u64, Arc::clone(&d));
        assert_eq!(cell.read_cloned(), 10);
        cell.update(20);
        assert_eq!(cell.read_cloned(), 20);
        cell.update_with(|v| v + 5);
        assert_eq!(cell.read_cloned(), 25);
    }

    #[test]
    fn old_versions_are_reclaimed() {
        let drops = Arc::new(AtomicUsize::new(0));
        let d = Arc::new(RcuDomain::new(WaitStrategy::Boosted));
        let cell = RcuCell::new(DropCounter(Arc::clone(&drops), 0), Arc::clone(&d));
        for i in 1..=5 {
            cell.update(DropCounter(Arc::clone(&drops), i));
        }
        assert_eq!(drops.load(Ordering::SeqCst), 5);
        drop(cell);
        assert_eq!(drops.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn concurrent_readers_and_writer_stress() {
        for strategy in [WaitStrategy::ClassicSpin, WaitStrategy::Boosted] {
            let d = Arc::new(RcuDomain::new(strategy));
            let cell = Arc::new(RcuCell::new(0u64, Arc::clone(&d)));
            let stop = Arc::new(AtomicBool::new(false));
            let mut readers = Vec::new();
            for _ in 0..4 {
                let d = Arc::clone(&d);
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                readers.push(thread::spawn(move || {
                    let h = d.register_reader();
                    let mut last = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        let g = h.read_lock();
                        let v = *cell.read(&g);
                        // Values are published in increasing order; a
                        // reader may lag but never observe regression
                        // beyond a concurrent swap window going backwards.
                        assert!(v + 1 >= last, "regressed from {last} to {v}");
                        last = v;
                    }
                }));
            }
            for i in 1..=200 {
                cell.update(i);
            }
            stop.store(true, Ordering::SeqCst);
            for r in readers {
                r.join().unwrap();
            }
            assert_eq!(cell.read_cloned(), 200);
        }
    }

    #[test]
    fn reader_pins_its_version_until_guard_drop() {
        // A reader holding a guard across an update must still see a
        // valid (old or new) value; the old one must not be freed under
        // it. DropCounter + explicit ordering verifies the free happens
        // only after the guard drops.
        let drops = Arc::new(AtomicUsize::new(0));
        let d = Arc::new(RcuDomain::new(WaitStrategy::Boosted));
        let cell = Arc::new(RcuCell::new(
            DropCounter(Arc::clone(&drops), 1),
            Arc::clone(&d),
        ));
        let entered = Arc::new(AtomicBool::new(false));
        let reader = {
            let d = Arc::clone(&d);
            let cell = Arc::clone(&cell);
            let entered = Arc::clone(&entered);
            let drops = Arc::clone(&drops);
            thread::spawn(move || {
                let h = d.register_reader();
                let g = h.read_lock();
                let v = cell.read(&g);
                entered.store(true, Ordering::SeqCst);
                thread::sleep(std::time::Duration::from_millis(100));
                // Still inside the critical section: our version must not
                // have been dropped.
                assert_eq!(drops.load(Ordering::SeqCst), 0);
                assert_eq!(v.1, 1);
            })
        };
        while !entered.load(Ordering::SeqCst) {
            thread::yield_now();
        }
        cell.update(DropCounter(Arc::clone(&drops), 2));
        // update() returned, so the grace period has passed and the old
        // version is gone; the reader must have exited first.
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        reader.join().unwrap();
    }
}
