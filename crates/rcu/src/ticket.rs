//! A ticket spinlock, as used by the kernel since Linux 2.6.25.
//!
//! The paper's Algorithm 1 serializes `synchronize_rcu` callers on a
//! ticket spinlock: each caller takes a ticket and spins until the lock's
//! "now serving" counter reaches it. Spinning occupies the CPU for the
//! whole wait — exactly the boot-time pathology the RCU Booster removes.
//!
//! FIFO fairness (tickets are granted in order) is preserved, matching
//! the kernel implementation.

use core::sync::atomic::{AtomicU64, Ordering};

/// A FIFO spinlock: waiters take numbered tickets and busy-wait.
#[derive(Debug, Default)]
pub struct TicketLock {
    next_ticket: AtomicU64,
    now_serving: AtomicU64,
}

/// RAII guard releasing the [`TicketLock`] on drop.
#[derive(Debug)]
pub struct TicketGuard<'a> {
    lock: &'a TicketLock,
}

impl TicketLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        TicketLock {
            next_ticket: AtomicU64::new(0),
            now_serving: AtomicU64::new(0),
        }
    }

    /// Acquires the lock, spinning until granted.
    ///
    /// The returned guard releases the lock when dropped. The spin loop
    /// uses [`core::hint::spin_loop`] but never yields to the scheduler —
    /// this is the deliberate "waste CPU cycles" behaviour of
    /// Algorithm 1.
    pub fn lock(&self) -> TicketGuard<'_> {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        while self.now_serving.load(Ordering::Acquire) != ticket {
            core::hint::spin_loop();
        }
        TicketGuard { lock: self }
    }

    /// Attempts to acquire the lock without waiting.
    pub fn try_lock(&self) -> Option<TicketGuard<'_>> {
        let serving = self.now_serving.load(Ordering::Acquire);
        if self
            .next_ticket
            .compare_exchange(serving, serving + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(TicketGuard { lock: self })
        } else {
            None
        }
    }

    /// Number of waiters currently queued (including the holder).
    pub fn queue_depth(&self) -> u64 {
        self.next_ticket
            .load(Ordering::Relaxed)
            .saturating_sub(self.now_serving.load(Ordering::Relaxed))
    }
}

impl Drop for TicketGuard<'_> {
    fn drop(&mut self) {
        self.lock.now_serving.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_unlock_cycle() {
        let lock = TicketLock::new();
        {
            let _g = lock.lock();
            assert_eq!(lock.queue_depth(), 1);
        }
        assert_eq!(lock.queue_depth(), 0);
        let _g2 = lock.lock();
    }

    #[test]
    fn try_lock_fails_when_held() {
        let lock = TicketLock::new();
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let lock = Arc::new(TicketLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    let _g = lock.lock();
                    // Non-atomic increment protected by the lock.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8000);
    }

    #[test]
    fn fifo_ordering() {
        // A held lock plus two queued waiters: the first queued waiter
        // must acquire before the second. We verify tickets are granted
        // in order by recording acquisition order.
        let lock = Arc::new(TicketLock::new());
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let g = lock.lock();
        let mut handles = Vec::new();
        for i in 0..2 {
            let lock = Arc::clone(&lock);
            let order = Arc::clone(&order);
            handles.push(thread::spawn(move || {
                // Stagger ticket acquisition deterministically.
                thread::sleep(std::time::Duration::from_millis(20 * (i as u64 + 1)));
                let _g = lock.lock();
                order.lock().push(i);
            }));
        }
        thread::sleep(std::time::Duration::from_millis(100));
        drop(g);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1]);
    }
}
