//! `call_rcu`-style deferred callbacks: batch reclamation work behind a
//! single grace period.
//!
//! `RcuCell::update` waits one grace period per update. The kernel
//! instead queues reclamation with `call_rcu` and amortizes one grace
//! period over many callbacks — the boot-relevant pattern, since
//! boot-time code frees many short-lived configuration objects.
//! [`DeferQueue`] provides that: [`DeferQueue::defer`] enqueues work,
//! [`DeferQueue::flush`] waits a single grace period (using whatever
//! waiter strategy the domain currently has) and then runs everything
//! enqueued before the flush began.

use parking_lot::Mutex;

use crate::domain::RcuDomain;

/// Type-erased deferred work.
type Callback = Box<dyn FnOnce() + Send>;

/// A batched deferred-callback queue over an [`RcuDomain`].
pub struct DeferQueue<'d> {
    domain: &'d RcuDomain,
    pending: Mutex<Vec<Callback>>,
}

impl std::fmt::Debug for DeferQueue<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeferQueue")
            .field("pending", &self.pending.lock().len())
            .finish()
    }
}

impl<'d> DeferQueue<'d> {
    /// Creates an empty queue over `domain`.
    pub fn new(domain: &'d RcuDomain) -> Self {
        DeferQueue {
            domain,
            pending: Mutex::new(Vec::new()),
        }
    }

    /// Enqueues work to run after the next flushed grace period.
    ///
    /// Safe to call concurrently from any thread, including from inside
    /// read-side critical sections (it never waits).
    pub fn defer(&self, f: impl FnOnce() + Send + 'static) {
        self.pending.lock().push(Box::new(f));
    }

    /// Number of callbacks waiting for a flush.
    pub fn pending(&self) -> usize {
        self.pending.lock().len()
    }

    /// Waits one grace period and runs every callback that was enqueued
    /// before the flush began. Returns how many ran.
    ///
    /// Callbacks enqueued concurrently with the flush land in the next
    /// batch (they may not be covered by this grace period).
    pub fn flush(&self) -> usize {
        let batch: Vec<Callback> = std::mem::take(&mut *self.pending.lock());
        if batch.is_empty() {
            return 0;
        }
        self.domain.synchronize();
        let n = batch.len();
        for cb in batch {
            cb();
        }
        n
    }
}

impl Drop for DeferQueue<'_> {
    /// Unflushed callbacks run on drop (after a final grace period), so
    /// deferred frees are never leaked.
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::WaitStrategy;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn flush_runs_batch_after_one_grace_period() {
        let domain = RcuDomain::new(WaitStrategy::Boosted);
        let queue = DeferQueue::new(&domain);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            queue.defer(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(queue.pending(), 10);
        assert_eq!(counter.load(Ordering::SeqCst), 0);
        let before = domain.stats().grace_periods;
        assert_eq!(queue.flush(), 10);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        // One grace period amortized over the whole batch.
        assert_eq!(domain.stats().grace_periods, before + 1);
        assert_eq!(queue.flush(), 0);
    }

    #[test]
    fn empty_flush_skips_the_grace_period() {
        let domain = RcuDomain::new(WaitStrategy::ClassicSpin);
        let queue = DeferQueue::new(&domain);
        assert_eq!(queue.flush(), 0);
        assert_eq!(domain.stats().grace_periods, 0);
    }

    #[test]
    fn drop_flushes_leftovers() {
        let domain = RcuDomain::new(WaitStrategy::Boosted);
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let queue = DeferQueue::new(&domain);
            let c = Arc::clone(&counter);
            queue.defer(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_deferers_all_run() {
        let domain = RcuDomain::new(WaitStrategy::Boosted);
        let queue = DeferQueue::new(&domain);
        let counter = Arc::new(AtomicUsize::new(0));
        crossbeam::scope(|scope| {
            for _ in 0..8 {
                let queue = &queue;
                let counter = Arc::clone(&counter);
                scope.spawn(move |_| {
                    for _ in 0..100 {
                        let c = Arc::clone(&counter);
                        queue.defer(move || {
                            c.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        })
        .expect("threads join");
        assert_eq!(queue.pending(), 800);
        assert_eq!(queue.flush(), 800);
        assert_eq!(counter.load(Ordering::SeqCst), 800);
    }

    #[test]
    fn readers_do_not_block_defer() {
        // defer() inside a read-side critical section must not deadlock
        // (it never synchronizes).
        let domain = RcuDomain::new(WaitStrategy::ClassicSpin);
        let queue = DeferQueue::new(&domain);
        let handle = domain.register_reader();
        {
            let _g = handle.read_lock();
            queue.defer(|| {});
            assert_eq!(queue.pending(), 1);
        }
        assert_eq!(queue.flush(), 1);
    }
}
