//! RCU domain: reader registration, grace-period detection, and the two
//! writer wait strategies.
//!
//! A [`RcuDomain`] tracks read-side critical sections with per-reader
//! epoch slots. `synchronize()` publishes a new global epoch and waits
//! until every reader that entered under an older epoch has exited —
//! i.e. one grace period.
//!
//! The *wait strategy* is selectable at run time, mirroring the paper's
//! RCU Booster Control sysfs knob:
//!
//! * [`WaitStrategy::ClassicSpin`] — Algorithm 1. Writers serialize on a
//!   [ticket spinlock](crate::ticket::TicketLock) and busy-wait for
//!   reader quiescence. The waiting CPU is unavailable to other threads.
//! * [`WaitStrategy::Boosted`] — Algorithm 2. Writers serialize on a
//!   blocking mutex; while waiting for readers they yield to the
//!   scheduler ("force all RCU readers onto task lists; do synchronized
//!   scheduling"), with SMP memory barriers and a reader-state snapshot
//!   comparison around the wait.

use core::sync::atomic::{fence, AtomicU64, AtomicU8, Ordering};

use parking_lot::Mutex;

use crate::ticket::TicketLock;

/// Maximum number of concurrently registered reader threads per domain.
pub const MAX_READERS: usize = 128;

/// Slot state meaning "no read-side critical section active".
const IDLE: u64 = 0;

/// How `synchronize()` waits for a grace period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitStrategy {
    /// Algorithm 1: ticket spinlock + busy-wait (CPU burning).
    ClassicSpin,
    /// Algorithm 2: blocking mutex + scheduler yields (CPU releasing).
    Boosted,
}

impl WaitStrategy {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => WaitStrategy::ClassicSpin,
            _ => WaitStrategy::Boosted,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            WaitStrategy::ClassicSpin => 0,
            WaitStrategy::Boosted => 1,
        }
    }
}

#[derive(Debug, Default)]
#[repr(align(64))] // One cache line per slot to avoid false sharing.
struct ReaderSlot {
    /// `IDLE`, or the global epoch value observed at read-lock entry
    /// (always >= 1 because the global epoch starts at 1).
    state: AtomicU64,
    /// 1 if a `ReaderHandle` owns this slot.
    claimed: AtomicU64,
}

/// Grace-period statistics, for benchmarks and reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct DomainStats {
    /// Completed `synchronize()` calls.
    pub grace_periods: u64,
    /// Calls that used the classic spinning path.
    pub classic_waits: u64,
    /// Calls that used the boosted blocking path.
    pub boosted_waits: u64,
}

/// An RCU domain: a set of readers and a grace-period machine.
#[derive(Debug)]
pub struct RcuDomain {
    /// Monotone epoch; starts at 1 so `IDLE` (0) is never a valid epoch.
    global_epoch: AtomicU64,
    slots: Box<[ReaderSlot]>,
    strategy: AtomicU8,
    writer_ticket: TicketLock,
    writer_mutex: Mutex<()>,
    grace_periods: AtomicU64,
    classic_waits: AtomicU64,
    boosted_waits: AtomicU64,
}

impl Default for RcuDomain {
    fn default() -> Self {
        Self::new(WaitStrategy::ClassicSpin)
    }
}

impl RcuDomain {
    /// Creates a domain with the given initial wait strategy.
    pub fn new(strategy: WaitStrategy) -> Self {
        let slots = (0..MAX_READERS).map(|_| ReaderSlot::default()).collect();
        RcuDomain {
            global_epoch: AtomicU64::new(1),
            slots,
            strategy: AtomicU8::new(strategy.as_u8()),
            writer_ticket: TicketLock::new(),
            writer_mutex: Mutex::new(()),
            grace_periods: AtomicU64::new(0),
            classic_waits: AtomicU64::new(0),
            boosted_waits: AtomicU64::new(0),
        }
    }

    /// The active wait strategy for new `synchronize()` calls.
    pub fn strategy(&self) -> WaitStrategy {
        WaitStrategy::from_u8(self.strategy.load(Ordering::Acquire))
    }

    /// Switches the wait strategy (the RCU Booster Control knob).
    pub fn set_strategy(&self, strategy: WaitStrategy) {
        self.strategy.store(strategy.as_u8(), Ordering::Release);
    }

    /// Statistics so far.
    pub fn stats(&self) -> DomainStats {
        DomainStats {
            grace_periods: self.grace_periods.load(Ordering::Relaxed),
            classic_waits: self.classic_waits.load(Ordering::Relaxed),
            boosted_waits: self.boosted_waits.load(Ordering::Relaxed),
        }
    }

    /// Registers the calling thread as a reader.
    ///
    /// # Panics
    ///
    /// Panics if all [`MAX_READERS`] slots are taken.
    pub fn register_reader(&self) -> ReaderHandle<'_> {
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .claimed
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return ReaderHandle {
                    domain: self,
                    slot: i,
                };
            }
        }
        panic!("rcu domain reader slots exhausted ({MAX_READERS})");
    }

    /// Number of readers currently inside read-side critical sections.
    pub fn active_readers(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.state.load(Ordering::Relaxed) != IDLE)
            .count()
    }

    /// Waits for one grace period: every read-side critical section that
    /// was active when this call began has ended when it returns.
    pub fn synchronize(&self) {
        match self.strategy() {
            WaitStrategy::ClassicSpin => self.synchronize_classic(),
            WaitStrategy::Boosted => self.synchronize_boosted(),
        }
        self.grace_periods.fetch_add(1, Ordering::Relaxed);
    }

    /// Algorithm 1: serialize on the ticket spinlock, then busy-wait for
    /// pre-existing readers. The processor is "busy doing nothing until
    /// lock is granted, wasting CPU cycles".
    fn synchronize_classic(&self) {
        self.classic_waits.fetch_add(1, Ordering::Relaxed);
        let _writer = self.writer_ticket.lock();
        let target = self.global_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        // Busy-wait: spin until every active reader entered at or after
        // `target` (i.e. after our epoch bump) or has exited.
        while !self.readers_quiesced(target) {
            core::hint::spin_loop();
        }
    }

    /// Algorithm 2: SMP barriers, snapshot, blocking mutex acquisition,
    /// scheduler-yield waits, snapshot comparison, unlock.
    fn synchronize_boosted(&self) {
        self.boosted_waits.fetch_add(1, Ordering::Relaxed);
        // SMP memory barrier; snapshot accessed by other CPUs.
        fence(Ordering::SeqCst);
        let snapshot = self.reader_snapshot();
        // SMP memory barrier.
        fence(Ordering::SeqCst);
        // "While mutex lock not locked: try mutex lock" — a blocking
        // acquisition; contended waiters sleep instead of spinning.
        let guard = self.writer_mutex.lock();
        let target = self.global_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        // Force all RCU readers onto task lists; do synchronized
        // scheduling: yield the CPU while pre-existing readers drain.
        while !self.readers_quiesced(target) {
            std::thread::yield_now();
        }
        // SMP memory barrier; compare snapshot (debug validation that no
        // reader from the snapshot is still in its original section).
        fence(Ordering::SeqCst);
        debug_assert!(self.snapshot_drained(&snapshot, target));
        drop(guard);
        fence(Ordering::SeqCst);
    }

    /// True when no reader slot holds an epoch older than `target`.
    fn readers_quiesced(&self, target: u64) -> bool {
        self.slots.iter().all(|s| {
            let st = s.state.load(Ordering::SeqCst);
            st == IDLE || st >= target
        })
    }

    fn reader_snapshot(&self) -> Vec<u64> {
        self.slots
            .iter()
            .map(|s| s.state.load(Ordering::SeqCst))
            .collect()
    }

    fn snapshot_drained(&self, snapshot: &[u64], target: u64) -> bool {
        self.slots.iter().zip(snapshot).all(|(s, &old)| {
            let now = s.state.load(Ordering::SeqCst);
            // A reader observed active before our epoch bump must have
            // exited or re-entered at a newer epoch.
            old == IDLE || old >= target || now == IDLE || now > old
        })
    }
}

/// A registered reader thread's handle; entry point for read locks.
#[derive(Debug)]
pub struct ReaderHandle<'d> {
    domain: &'d RcuDomain,
    slot: usize,
}

impl<'d> ReaderHandle<'d> {
    /// Enters a read-side critical section.
    ///
    /// Read-side entry is wait-free: a couple of atomic stores. The
    /// returned guard marks quiescence on drop.
    ///
    /// # Panics
    ///
    /// Panics on nested read locks from the same handle (the slot
    /// protocol is non-reentrant; take one guard at a time).
    pub fn read_lock(&self) -> ReadGuard<'_> {
        let slot = &self.domain.slots[self.slot];
        assert_eq!(
            slot.state.load(Ordering::Relaxed),
            IDLE,
            "nested rcu read lock on one handle"
        );
        let epoch = self.domain.global_epoch.load(Ordering::SeqCst);
        slot.state.store(epoch, Ordering::SeqCst);
        ReadGuard { slot }
    }

    /// The domain this handle reads under.
    pub fn domain(&self) -> &'d RcuDomain {
        self.domain
    }
}

impl Drop for ReaderHandle<'_> {
    fn drop(&mut self) {
        let slot = &self.domain.slots[self.slot];
        debug_assert_eq!(slot.state.load(Ordering::Relaxed), IDLE);
        slot.claimed.store(0, Ordering::Release);
    }
}

/// An active read-side critical section.
#[derive(Debug)]
pub struct ReadGuard<'h> {
    slot: &'h ReaderSlot,
}

impl Drop for ReadGuard<'_> {
    fn drop(&mut self) {
        self.slot.state.store(IDLE, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn synchronize_with_no_readers_returns() {
        for strat in [WaitStrategy::ClassicSpin, WaitStrategy::Boosted] {
            let d = RcuDomain::new(strat);
            d.synchronize();
            d.synchronize();
            assert_eq!(d.stats().grace_periods, 2);
        }
    }

    #[test]
    fn reader_registration_and_activity() {
        let d = RcuDomain::new(WaitStrategy::Boosted);
        let h = d.register_reader();
        assert_eq!(d.active_readers(), 0);
        {
            let _g = h.read_lock();
            assert_eq!(d.active_readers(), 1);
        }
        assert_eq!(d.active_readers(), 0);
    }

    #[test]
    #[should_panic(expected = "nested rcu read lock")]
    fn nested_read_lock_panics() {
        let d = RcuDomain::default();
        let h = d.register_reader();
        let _g1 = h.read_lock();
        let _g2 = h.read_lock();
    }

    #[test]
    fn slot_reuse_after_handle_drop() {
        let d = RcuDomain::default();
        for _ in 0..(MAX_READERS * 2) {
            let h = d.register_reader();
            let _g = h.read_lock();
        }
    }

    #[test]
    fn strategy_switch_is_visible() {
        let d = RcuDomain::new(WaitStrategy::ClassicSpin);
        assert_eq!(d.strategy(), WaitStrategy::ClassicSpin);
        d.set_strategy(WaitStrategy::Boosted);
        assert_eq!(d.strategy(), WaitStrategy::Boosted);
        d.synchronize();
        assert_eq!(d.stats().boosted_waits, 1);
        assert_eq!(d.stats().classic_waits, 0);
    }

    fn grace_period_waits_for_reader(strategy: WaitStrategy) {
        let d = Arc::new(RcuDomain::new(strategy));
        let entered = Arc::new(AtomicBool::new(false));
        let exited = Arc::new(AtomicBool::new(false));
        let gp_done = Arc::new(AtomicBool::new(false));

        let reader = {
            let d = Arc::clone(&d);
            let entered = Arc::clone(&entered);
            let exited = Arc::clone(&exited);
            thread::spawn(move || {
                let h = d.register_reader();
                let g = h.read_lock();
                entered.store(true, Ordering::SeqCst);
                thread::sleep(Duration::from_millis(100));
                exited.store(true, Ordering::SeqCst);
                drop(g);
            })
        };
        while !entered.load(Ordering::SeqCst) {
            thread::yield_now();
        }
        let writer = {
            let d = Arc::clone(&d);
            let gp_done = Arc::clone(&gp_done);
            thread::spawn(move || {
                d.synchronize();
                gp_done.store(true, Ordering::SeqCst);
            })
        };
        writer.join().unwrap();
        // The grace period must not have completed before the reader
        // exited its critical section.
        assert!(exited.load(Ordering::SeqCst));
        reader.join().unwrap();
    }

    #[test]
    fn classic_grace_period_waits_for_preexisting_reader() {
        grace_period_waits_for_reader(WaitStrategy::ClassicSpin);
    }

    #[test]
    fn boosted_grace_period_waits_for_preexisting_reader() {
        grace_period_waits_for_reader(WaitStrategy::Boosted);
    }

    #[test]
    fn new_readers_do_not_block_grace_period() {
        // A reader that enters *after* synchronize() begins must not be
        // waited for. We check this by having a long-lived late reader
        // while synchronize() completes promptly.
        let d = Arc::new(RcuDomain::new(WaitStrategy::Boosted));
        let d2 = Arc::clone(&d);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let late = thread::spawn(move || {
            let h = d2.register_reader();
            // Repeatedly hold short read sections until told to stop.
            while !stop2.load(Ordering::SeqCst) {
                let _g = h.read_lock();
                std::hint::black_box(());
            }
        });
        for _ in 0..50 {
            d.synchronize();
        }
        stop.store(true, Ordering::SeqCst);
        late.join().unwrap();
        assert_eq!(d.stats().grace_periods, 50);
    }

    #[test]
    fn concurrent_writers_all_complete() {
        for strategy in [WaitStrategy::ClassicSpin, WaitStrategy::Boosted] {
            let d = Arc::new(RcuDomain::new(strategy));
            let mut handles = Vec::new();
            for _ in 0..4 {
                let d = Arc::clone(&d);
                handles.push(thread::spawn(move || {
                    for _ in 0..20 {
                        d.synchronize();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(d.stats().grace_periods, 80);
        }
    }
}
