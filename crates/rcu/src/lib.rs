//! # bb-rcu — a real user-space RCU with the paper's two waiter modes
//!
//! The BB paper's *RCU Booster* (Core Engine, §3.1) replaces the ticket
//! spinlock serializing `synchronize_rcu()` callers with a blocking mutex
//! so boot-time waiters sleep instead of burning CPU (Algorithms 1 & 2).
//! The trade-off (§4.3): with 0–1 contending writers the classic spin is
//! cheaper; with many, the boosted path wins by releasing cores.
//!
//! This crate reproduces both algorithms *for real* — actual threads,
//! actual atomics — so the crossover can be measured on the host rather
//! than merely simulated:
//!
//! * [`TicketLock`] — the kernel's FIFO ticket spinlock (Linux ≥ 2.6.25).
//! * [`RcuDomain`] — epoch-based grace-period detection with a runtime
//!   switch between [`WaitStrategy::ClassicSpin`] and
//!   [`WaitStrategy::Boosted`] (the RCU Booster Control knob).
//! * [`RcuCell`] — an RCU-protected value: lock-free readers, writers
//!   that reclaim old versions after a grace period.
//! * [`DeferQueue`] — `call_rcu`-style batched deferred reclamation:
//!   many callbacks amortized behind one grace period.
//! * [`RcuList`] — a kernel-style `list_rcu`: lock-free read-side
//!   traversal, mutex-serialized writers, grace-period reclamation.
//!
//! The whole-boot effect of the waiter choice is modelled in `bb-sim`'s
//! RCU engine; the Criterion bench `rcu_contention` in `bb-bench` drives
//! this crate to reproduce the §4.3 contention crossover.

pub mod callback;
pub mod cell;
pub mod domain;
pub mod list;
pub mod ticket;

pub use callback::DeferQueue;
pub use cell::RcuCell;
pub use domain::{DomainStats, RcuDomain, ReadGuard, ReaderHandle, WaitStrategy, MAX_READERS};
pub use list::RcuList;
pub use ticket::{TicketGuard, TicketLock};
