//! Simulated processes: programs as operation lists.
//!
//! A simulated process executes a straight-line list of [`Op`]s. This is
//! deliberately not a general programming model: boot-time work is
//! overwhelmingly "compute a bit, read something from flash, synchronize,
//! signal readiness", and a flat op list keeps the simulator fully
//! deterministic and inspectable. Control flow across processes is
//! expressed with flags ([`Op::WaitFlag`]/[`Op::SetFlag`]) and process
//! spawning ([`Op::Spawn`]).

use std::collections::VecDeque;

use crate::ids::{DeviceId, FlagId, Pid};
use crate::time::{SimDuration, SimTime};

/// Storage access pattern, selecting which bandwidth figure of a device
/// applies to a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Sequential read (large contiguous transfer).
    Sequential,
    /// Random read (many small scattered transfers).
    Random,
}

/// One step of a simulated process.
#[derive(Debug, Clone)]
pub enum Op {
    /// Occupy a core for the given amount of *reference* CPU time.
    ///
    /// The actual wall-clock cost is `duration / core_speed` of the
    /// machine the process runs on, and the scheduler may time-slice it.
    Compute(SimDuration),
    /// Read `bytes` from `device` with the given access `pattern`,
    /// blocking off-CPU until the device completes the request.
    IoRead {
        /// Target storage device.
        device: DeviceId,
        /// Transfer size in bytes.
        bytes: u64,
        /// Sequential or random access.
        pattern: AccessPattern,
    },
    /// Sleep off-CPU for a fixed duration (timers, debounce waits).
    Sleep(SimDuration),
    /// Invoke `synchronize_rcu()`: wait for an RCU grace period using the
    /// machine's current waiter mode (spin = burn a core; block = sleep).
    RcuSync,
    /// Hold an RCU read-side critical section on-CPU for the duration.
    ///
    /// Readers never block; this is compute time that additionally
    /// registers read-side activity with the RCU engine, lengthening
    /// concurrent grace periods.
    RcuReadHold(SimDuration),
    /// Block until the given flag has been set.
    WaitFlag(FlagId),
    /// Block until the given flag has been set *or* `timeout` elapses,
    /// whichever comes first.
    ///
    /// This is the primitive under start-timeout watchdogs: unlike a
    /// `Sleep`, a watcher built on `TimedWaitFlag` exits as soon as the
    /// flag appears and therefore never outlives the work it guards.
    TimedWaitFlag {
        /// Flag to wait for.
        flag: FlagId,
        /// Give up after this long.
        timeout: SimDuration,
    },
    /// Poll for a flag: check it on-CPU (costing `poll_cost` per check),
    /// and if unset, sleep `interval` and check again.
    ///
    /// This is the "path-check" retry loop that out-of-order init schemes
    /// bolt on (§2.5.1); unlike [`Op::WaitFlag`] it repeatedly burns CPU.
    PollFlag {
        /// Flag standing in for the watched file path.
        flag: FlagId,
        /// Sleep between checks.
        interval: SimDuration,
        /// On-CPU cost of each check.
        poll_cost: SimDuration,
    },
    /// Abort the process if the given flag is not yet set.
    ///
    /// Models a service that crashes when its prerequisite is unavailable,
    /// for init-scheme correctness experiments.
    AssertFlag(FlagId),
    /// If the flag is unset when this op is reached, skip the next
    /// `skip_ops` ops.
    ///
    /// Models systemd `ConditionPathExists=`: conditions are evaluated
    /// when the job starts; an unmet condition skips the unit body but
    /// still counts the unit as processed (its ready flag, placed after
    /// the skipped body, is still set).
    CondSkip {
        /// Condition flag (stands in for the watched path).
        flag: FlagId,
        /// Number of following ops to skip when the flag is unset.
        skip_ops: u32,
    },
    /// Set the given flag, waking all current and future waiters. Free.
    SetFlag(FlagId),
    /// Spawn a child process that becomes ready immediately. Free; the
    /// fork cost, if any, should be modelled as an explicit `Compute`.
    Spawn(ProcessSpec),
    /// Relinquish the core and go to the back of the ready queue.
    Yield,
    /// Switch the machine's RCU waiter mode. Free.
    ///
    /// This is the paper's RCU Booster Control sysfs knob: the Boot-up
    /// Engine enables the boosted mode as systemd's first task and a
    /// control process disables it at boot completion (§3.2).
    SetRcuMode(crate::rcu::RcuMode),
}

/// Static description of a process: what to run and how urgent it is.
#[derive(Debug, Clone)]
pub struct ProcessSpec {
    /// Human-readable name, recorded in traces (e.g. `dbus.service`).
    pub name: String,
    /// Unix-style nice value: −20 (highest priority) to 19 (lowest).
    pub nice: i8,
    /// I/O scheduling class for the process's storage requests.
    pub io_priority: crate::io::IoPriority,
    /// The program to execute.
    pub ops: Vec<Op>,
}

impl ProcessSpec {
    /// Creates a spec with default priority (nice 0).
    pub fn new(name: impl Into<String>, ops: Vec<Op>) -> Self {
        ProcessSpec {
            name: name.into(),
            nice: 0,
            io_priority: crate::io::IoPriority::BestEffort,
            ops,
        }
    }

    /// Sets the I/O scheduling class.
    pub fn with_io_priority(mut self, priority: crate::io::IoPriority) -> Self {
        self.io_priority = priority;
        self
    }

    /// Sets the nice value (−20 highest priority … 19 lowest).
    ///
    /// # Panics
    ///
    /// Panics if `nice` is outside the Unix range −20..=19.
    pub fn with_nice(mut self, nice: i8) -> Self {
        assert!((-20..=19).contains(&nice), "nice out of range: {nice}");
        self.nice = nice;
        self
    }

    /// Total reference CPU time of all `Compute` and `RcuReadHold` ops;
    /// useful for workload reports.
    pub fn total_compute(&self) -> SimDuration {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Compute(d) | Op::RcuReadHold(d) => *d,
                _ => SimDuration::ZERO,
            })
            .sum()
    }
}

/// Why a process is currently off the ready queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting for a storage request to complete.
    Io,
    /// Sleeping until a deadline.
    Sleep,
    /// Waiting (off-CPU) for an RCU grace period in blocking mode.
    RcuBlocked,
    /// Waiting for a flag to be set.
    Flag(FlagId),
}

/// Dynamic scheduling state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Eligible to run, waiting for a core.
    Ready,
    /// Executing (or spin-waiting) on a core.
    Running,
    /// Off-CPU, waiting for the given reason.
    Blocked(BlockReason),
    /// All ops completed.
    Done,
}

/// A live process inside the simulator.
#[derive(Debug)]
pub struct Process {
    /// This process's id.
    pub pid: Pid,
    /// Name from the spec.
    pub name: String,
    /// Nice value from the spec.
    pub nice: i8,
    /// I/O scheduling class from the spec.
    pub io_priority: crate::io::IoPriority,
    /// Remaining ops; front is the current op.
    pub ops: VecDeque<Op>,
    /// Remaining reference CPU time of the *current* compute op, if it
    /// was partially executed before being preempted.
    pub compute_left: SimDuration,
    /// Scheduling state.
    pub state: ProcState,
    /// When the process was spawned.
    pub spawned_at: SimTime,
    /// When the process finished, if done.
    pub finished_at: Option<SimTime>,
    /// Monotone counter used for FIFO ordering within a priority level.
    pub ready_seq: u64,
    /// True once the process has been dispatched onto a core.
    pub first_dispatched: bool,
    /// Accumulated on-CPU time (including spin-waiting), for reports.
    pub cpu_time: SimDuration,
    /// Generation counter for [`Op::TimedWaitFlag`]: incremented on every
    /// wake (flag or timeout) so stale timeout events can be recognized
    /// and dropped.
    pub timed_wait_seq: u64,
}

impl Process {
    /// Instantiates a spec into a live process.
    pub fn from_spec(pid: Pid, spec: ProcessSpec, now: SimTime) -> Self {
        Process {
            pid,
            name: spec.name,
            nice: spec.nice,
            io_priority: spec.io_priority,
            ops: spec.ops.into(),
            compute_left: SimDuration::ZERO,
            state: ProcState::Ready,
            spawned_at: now,
            finished_at: None,
            ready_seq: 0,
            first_dispatched: false,
            cpu_time: SimDuration::ZERO,
            timed_wait_seq: 0,
        }
    }

    /// True if there are no ops left to execute.
    pub fn is_finished(&self) -> bool {
        self.ops.is_empty() && self.compute_left.is_zero()
    }

    /// Effective scheduling priority: lower sorts first (runs earlier).
    pub fn priority_key(&self) -> (i8, u64) {
        (self.nice, self.ready_seq)
    }
}

/// Convenience builder for op lists, used heavily by workload generators.
#[derive(Debug, Default)]
pub struct OpsBuilder {
    ops: Vec<Op>,
}

impl OpsBuilder {
    /// Starts an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a compute op.
    pub fn compute(mut self, d: SimDuration) -> Self {
        self.ops.push(Op::Compute(d));
        self
    }

    /// Appends a compute op given milliseconds of reference CPU time.
    pub fn compute_ms(self, ms: u64) -> Self {
        self.compute(SimDuration::from_millis(ms))
    }

    /// Appends a sequential read.
    pub fn read_seq(mut self, device: DeviceId, bytes: u64) -> Self {
        self.ops.push(Op::IoRead {
            device,
            bytes,
            pattern: AccessPattern::Sequential,
        });
        self
    }

    /// Appends a random-access read.
    pub fn read_rand(mut self, device: DeviceId, bytes: u64) -> Self {
        self.ops.push(Op::IoRead {
            device,
            bytes,
            pattern: AccessPattern::Random,
        });
        self
    }

    /// Appends a sleep.
    pub fn sleep(mut self, d: SimDuration) -> Self {
        self.ops.push(Op::Sleep(d));
        self
    }

    /// Appends `n` `synchronize_rcu()` calls separated by `between`
    /// compute time each (modelling RCU-heavy initialization code).
    pub fn rcu_syncs(mut self, n: usize, between: SimDuration) -> Self {
        for _ in 0..n {
            if !between.is_zero() {
                self.ops.push(Op::Compute(between));
            }
            self.ops.push(Op::RcuSync);
        }
        self
    }

    /// Appends an RCU read-side critical section.
    pub fn rcu_read(mut self, d: SimDuration) -> Self {
        self.ops.push(Op::RcuReadHold(d));
        self
    }

    /// Appends a flag wait.
    pub fn wait_flag(mut self, flag: FlagId) -> Self {
        self.ops.push(Op::WaitFlag(flag));
        self
    }

    /// Appends a flag wait bounded by a timeout.
    pub fn timed_wait_flag(mut self, flag: FlagId, timeout: SimDuration) -> Self {
        self.ops.push(Op::TimedWaitFlag { flag, timeout });
        self
    }

    /// Appends a path-check style polling wait.
    pub fn poll_flag(
        mut self,
        flag: FlagId,
        interval: SimDuration,
        poll_cost: SimDuration,
    ) -> Self {
        self.ops.push(Op::PollFlag {
            flag,
            interval,
            poll_cost,
        });
        self
    }

    /// Appends a flag assertion (abort if unset).
    pub fn assert_flag(mut self, flag: FlagId) -> Self {
        self.ops.push(Op::AssertFlag(flag));
        self
    }

    /// Appends a conditional skip over the next `skip_ops` ops.
    pub fn cond_skip(mut self, flag: FlagId, skip_ops: u32) -> Self {
        self.ops.push(Op::CondSkip { flag, skip_ops });
        self
    }

    /// Appends a flag set.
    pub fn set_flag(mut self, flag: FlagId) -> Self {
        self.ops.push(Op::SetFlag(flag));
        self
    }

    /// Appends a child spawn.
    pub fn spawn(mut self, spec: ProcessSpec) -> Self {
        self.ops.push(Op::Spawn(spec));
        self
    }

    /// Appends a yield.
    pub fn yield_now(mut self) -> Self {
        self.ops.push(Op::Yield);
        self
    }

    /// Finishes the program.
    pub fn build(self) -> Vec<Op> {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_and_totals() {
        let spec = ProcessSpec::new(
            "svc",
            OpsBuilder::new()
                .compute_ms(5)
                .read_seq(DeviceId::from_raw(0), 4096)
                .rcu_read(SimDuration::from_millis(2))
                .build(),
        )
        .with_nice(-5);
        assert_eq!(spec.nice, -5);
        assert_eq!(spec.ops.len(), 3);
        assert_eq!(spec.total_compute(), SimDuration::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "nice out of range")]
    fn nice_range_checked() {
        ProcessSpec::new("x", vec![]).with_nice(42);
    }

    #[test]
    fn process_lifecycle_flags() {
        let spec = ProcessSpec::new("p", vec![Op::Compute(SimDuration::from_millis(1))]);
        let mut p = Process::from_spec(Pid::from_raw(0), spec, SimTime::ZERO);
        assert_eq!(p.state, ProcState::Ready);
        assert!(!p.is_finished());
        p.ops.pop_front();
        assert!(p.is_finished());
    }

    #[test]
    fn priority_key_orders_by_nice_then_fifo() {
        let mk = |nice, seq| {
            let mut p = Process::from_spec(
                Pid::from_raw(0),
                ProcessSpec::new("p", vec![]).with_nice(nice),
                SimTime::ZERO,
            );
            p.ready_seq = seq;
            p
        };
        assert!(mk(-20, 9).priority_key() < mk(0, 1).priority_key());
        assert!(mk(0, 1).priority_key() < mk(0, 2).priority_key());
    }

    #[test]
    fn rcu_syncs_builder_shapes() {
        let ops = OpsBuilder::new()
            .rcu_syncs(3, SimDuration::from_micros(100))
            .build();
        // Each sync is preceded by a compute gap: C S C S C S.
        assert_eq!(ops.len(), 6);
        assert!(matches!(ops[0], Op::Compute(_)));
        assert!(matches!(ops[1], Op::RcuSync));
        let ops = OpsBuilder::new().rcu_syncs(2, SimDuration::ZERO).build();
        assert_eq!(ops.len(), 2);
    }
}
