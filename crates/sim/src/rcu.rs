//! Simulated RCU synchronization engine.
//!
//! Models the cost of `synchronize_rcu()` during boot, following the
//! paper's Algorithms 1 and 2.
//!
//! # Grace periods are batched
//!
//! As in the kernel, a grace period is a *global* event: every waiter
//! that called `synchronize_rcu` before a grace period started is
//! released when it completes. The engine keeps one grace period in
//! flight; callers arriving meanwhile form the next batch. Under
//! contention, throughput therefore scales with batch size rather than
//! serializing per call.
//!
//! # The waiter modes differ in *how* they wait
//!
//! * **Classic** (Algorithm 1): the wait queue is protected by a ticket
//!   spinlock. An *uncontended* caller parks cheaply (uninterruptible
//!   sleep) — which is why the paper keeps this path after boot (§4.3).
//!   A caller that finds other waiters present hammers the contended
//!   ticket lock and effectively *busy-waits on its core* until its
//!   grace period completes ("Processor is busy doing nothing until
//!   lock is granted, wasting CPU cycles").
//! * **Boosted** (Algorithm 2): memory barriers + a blocking mutex;
//!   waiters always sleep, paying a context-switch cost on wake and a
//!   slightly higher fixed overhead per call.
//!
//! The machine layer executes these behaviours: a spinning waiter keeps
//! its core; a sleeping waiter frees it.

use crate::ids::Pid;
use crate::time::{SimDuration, SimTime};

/// Which `synchronize_rcu` waiter strategy is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RcuMode {
    /// Algorithm 1: ticket spinlock; contended waiters spin on-CPU.
    ClassicSpin,
    /// Algorithm 2: blocking mutex; waiters sleep off-CPU.
    Boosted,
}

/// Cost parameters of the RCU engine.
#[derive(Debug, Clone, Copy)]
pub struct RcuParams {
    /// Minimum grace-period length with no active readers.
    pub base_grace_period: SimDuration,
    /// Grace-period extension per active read-side critical section at
    /// grace-period start.
    pub per_reader_extension: SimDuration,
    /// On-CPU cost charged to a boosted waiter when it is woken
    /// (context switch + scheduler pass).
    pub ctx_switch_cost: SimDuration,
    /// Fixed per-sync overhead of the boosted path (barriers, snapshot,
    /// mutex handshake), charged before the wait.
    pub boosted_overhead: SimDuration,
    /// Fixed per-sync overhead of the classic path (ticket acquire),
    /// charged before the wait. Cheaper than the boosted path.
    pub classic_overhead: SimDuration,
}

impl Default for RcuParams {
    fn default() -> Self {
        RcuParams {
            base_grace_period: SimDuration::from_micros(400),
            per_reader_extension: SimDuration::from_micros(150),
            ctx_switch_cost: SimDuration::from_micros(30),
            boosted_overhead: SimDuration::from_micros(8),
            classic_overhead: SimDuration::from_micros(1),
        }
    }
}

/// How a particular waiter is waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKind {
    /// On-core busy wait (classic path under contention).
    Spinning,
    /// Off-core sleep, no wake cost (classic path, uncontended park).
    SleepingClassic,
    /// Off-core sleep, context-switch cost on wake (boosted path).
    SleepingBoosted,
}

/// One waiter of a pending grace period.
#[derive(Debug, Clone, Copy)]
pub struct Waiter {
    /// The calling process.
    pub pid: Pid,
    /// How it waits.
    pub kind: WaitKind,
    /// Submission time, for wait statistics.
    pub submitted_at: SimTime,
}

/// Aggregate statistics of the engine, for experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RcuStats {
    /// Completed `synchronize_rcu` calls.
    pub syncs_completed: u64,
    /// Grace periods that ran (≤ syncs thanks to batching).
    pub grace_periods: u64,
    /// Total wall time callers spent between submit and release.
    pub total_wait: SimDuration,
    /// Longest single wait.
    pub max_wait: SimDuration,
    /// Completed calls that used the classic path.
    pub classic_syncs: u64,
    /// Completed calls that used the boosted path.
    pub boosted_syncs: u64,
    /// Classic calls that spun on-CPU (contended).
    pub spinning_syncs: u64,
    /// Peak number of simultaneously pending syncs (contention level).
    pub peak_pending: usize,
}

/// The simulated RCU engine: batched grace periods plus reader tracking.
#[derive(Debug)]
pub struct RcuEngine {
    pub(crate) mode: RcuMode,
    pub(crate) params: RcuParams,
    /// Waiters covered by the in-flight grace period.
    pub(crate) current: Vec<Waiter>,
    /// Waiters for the next grace period.
    pub(crate) next: Vec<Waiter>,
    pub(crate) grace_end: Option<SimTime>,
    pub(crate) active_readers: u32,
    pub(crate) stats: RcuStats,
}

impl RcuEngine {
    /// Creates an idle engine in the given initial mode.
    pub fn new(mode: RcuMode, params: RcuParams) -> Self {
        RcuEngine {
            mode,
            params,
            current: Vec::new(),
            next: Vec::new(),
            grace_end: None,
            active_readers: 0,
            stats: RcuStats::default(),
        }
    }

    /// The currently active waiter mode for *new* syncs.
    pub fn mode(&self) -> RcuMode {
        self.mode
    }

    /// Switches the waiter mode (the RCU Booster Control sysfs knob).
    /// In-flight waiters keep the behaviour they were submitted with.
    pub fn set_mode(&mut self, mode: RcuMode) {
        self.mode = mode;
    }

    /// Engine cost parameters.
    pub fn params(&self) -> &RcuParams {
        &self.params
    }

    /// Statistics so far.
    pub fn stats(&self) -> RcuStats {
        self.stats
    }

    /// Number of pending (waiting) syncs.
    pub fn pending(&self) -> usize {
        self.current.len() + self.next.len()
    }

    /// Currently active read-side critical sections.
    pub fn active_readers(&self) -> u32 {
        self.active_readers
    }

    /// Fixed on-CPU overhead charged to a caller *before* waiting, by the
    /// mode that will govern its wait.
    pub fn submit_overhead(&self) -> SimDuration {
        match self.mode {
            RcuMode::ClassicSpin => self.params.classic_overhead,
            RcuMode::Boosted => self.params.boosted_overhead,
        }
    }

    /// Registers entry into a read-side critical section.
    pub fn reader_enter(&mut self) {
        self.active_readers += 1;
    }

    /// Registers exit from a read-side critical section.
    ///
    /// # Panics
    ///
    /// Panics on unbalanced exit (a machine-layer logic error).
    pub fn reader_exit(&mut self) {
        assert!(self.active_readers > 0, "unbalanced rcu reader exit");
        self.active_readers -= 1;
    }

    /// Submits a `synchronize_rcu` call. Returns the waiter's wait kind
    /// and, if this call started a new grace period (engine was idle),
    /// the time it will end.
    pub fn submit(&mut self, pid: Pid, now: SimTime) -> (WaitKind, Option<SimTime>) {
        let contended = self.pending() > 0;
        let kind = match self.mode {
            RcuMode::ClassicSpin if contended => WaitKind::Spinning,
            RcuMode::ClassicSpin => WaitKind::SleepingClassic,
            RcuMode::Boosted => WaitKind::SleepingBoosted,
        };
        if kind == WaitKind::Spinning {
            self.stats.spinning_syncs += 1;
        }
        let waiter = Waiter {
            pid,
            kind,
            submitted_at: now,
        };
        let started = if self.grace_end.is_none() {
            debug_assert!(self.current.is_empty());
            self.current.push(waiter);
            Some(self.start_grace_period(now))
        } else {
            self.next.push(waiter);
            None
        };
        self.stats.peak_pending = self.stats.peak_pending.max(self.pending());
        (kind, started)
    }

    /// Completes the in-flight grace period: releases its waiters and,
    /// if more arrived meanwhile, starts the next one.
    ///
    /// # Panics
    ///
    /// Panics if no grace period is in flight.
    pub fn complete_grace_period(&mut self, now: SimTime) -> (Vec<Waiter>, Option<SimTime>) {
        assert!(self.grace_end.is_some(), "grace completion on idle engine");
        self.grace_end = None;
        let released = std::mem::take(&mut self.current);
        for w in &released {
            let waited = now.saturating_since(w.submitted_at);
            self.stats.syncs_completed += 1;
            self.stats.total_wait += waited;
            self.stats.max_wait = self.stats.max_wait.max(waited);
            match w.kind {
                WaitKind::Spinning | WaitKind::SleepingClassic => self.stats.classic_syncs += 1,
                WaitKind::SleepingBoosted => self.stats.boosted_syncs += 1,
            }
        }
        let next_end = if self.next.is_empty() {
            None
        } else {
            self.current = std::mem::take(&mut self.next);
            Some(self.start_grace_period(now))
        };
        (released, next_end)
    }

    /// Length of a grace period starting now, given current reader load.
    pub fn grace_period_length(&self) -> SimDuration {
        self.params.base_grace_period
            + self.params.per_reader_extension * u64::from(self.active_readers)
    }

    fn start_grace_period(&mut self, now: SimTime) -> SimTime {
        debug_assert!(!self.current.is_empty());
        self.stats.grace_periods += 1;
        let end = now + self.grace_period_length();
        self.grace_end = Some(end);
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(mode: RcuMode) -> RcuEngine {
        RcuEngine::new(
            mode,
            RcuParams {
                base_grace_period: SimDuration::from_millis(1),
                per_reader_extension: SimDuration::from_micros(500),
                ..RcuParams::default()
            },
        )
    }

    #[test]
    fn single_sync_runs_immediately_and_parks() {
        let mut e = engine(RcuMode::ClassicSpin);
        let (kind, end) = e.submit(Pid::from_raw(1), SimTime::ZERO);
        assert_eq!(kind, WaitKind::SleepingClassic);
        let end = end.unwrap();
        assert_eq!(end.as_millis(), 1);
        let (released, next) = e.complete_grace_period(end);
        assert_eq!(released.len(), 1);
        assert!(next.is_none());
        assert_eq!(e.stats().syncs_completed, 1);
        assert_eq!(e.stats().grace_periods, 1);
        assert_eq!(e.stats().spinning_syncs, 0);
    }

    #[test]
    fn contended_classic_waiters_spin() {
        let mut e = engine(RcuMode::ClassicSpin);
        let (_, end) = e.submit(Pid::from_raw(1), SimTime::ZERO);
        let (k2, none) = e.submit(Pid::from_raw(2), SimTime::ZERO);
        assert_eq!(k2, WaitKind::Spinning);
        assert!(none.is_none());
        assert_eq!(e.stats().spinning_syncs, 1);
        let _ = end;
    }

    #[test]
    fn grace_periods_batch_waiters() {
        // Three boosted waiters arrive during the first grace period:
        // they are released together by the *second* grace period.
        let mut e = engine(RcuMode::Boosted);
        let t0 = SimTime::ZERO;
        let (_, end1) = e.submit(Pid::from_raw(1), t0);
        let end1 = end1.unwrap();
        for pid in 2..=4 {
            let (k, started) = e.submit(Pid::from_raw(pid), t0);
            assert_eq!(k, WaitKind::SleepingBoosted);
            assert!(started.is_none());
        }
        assert_eq!(e.pending(), 4);
        let (released1, end2) = e.complete_grace_period(end1);
        assert_eq!(released1.len(), 1);
        let end2 = end2.unwrap();
        assert_eq!(end2.as_millis(), 2);
        let (released2, none) = e.complete_grace_period(end2);
        assert_eq!(released2.len(), 3);
        assert!(none.is_none());
        // Four syncs, only two grace periods: batching works.
        assert_eq!(e.stats().syncs_completed, 4);
        assert_eq!(e.stats().grace_periods, 2);
        assert_eq!(e.stats().max_wait.as_millis(), 2);
    }

    #[test]
    fn readers_extend_grace_periods() {
        let mut e = engine(RcuMode::ClassicSpin);
        e.reader_enter();
        e.reader_enter();
        assert_eq!(e.grace_period_length().as_micros(), 2000);
        e.reader_exit();
        assert_eq!(e.grace_period_length().as_micros(), 1500);
        e.reader_exit();
        assert_eq!(e.grace_period_length().as_micros(), 1000);
    }

    #[test]
    fn mode_is_captured_at_submit() {
        let mut e = engine(RcuMode::ClassicSpin);
        let (k1, end1) = e.submit(Pid::from_raw(1), SimTime::ZERO);
        assert_eq!(k1, WaitKind::SleepingClassic);
        e.set_mode(RcuMode::Boosted);
        let (k2, _) = e.submit(Pid::from_raw(2), SimTime::ZERO);
        assert_eq!(k2, WaitKind::SleepingBoosted);
        let (r1, end2) = e.complete_grace_period(end1.unwrap());
        assert_eq!(r1[0].kind, WaitKind::SleepingClassic);
        let (r2, _) = e.complete_grace_period(end2.unwrap());
        assert_eq!(r2[0].kind, WaitKind::SleepingBoosted);
        assert_eq!(e.stats().classic_syncs, 1);
        assert_eq!(e.stats().boosted_syncs, 1);
    }

    #[test]
    fn submit_overhead_follows_mode() {
        let mut e = engine(RcuMode::ClassicSpin);
        let classic = e.submit_overhead();
        e.set_mode(RcuMode::Boosted);
        assert!(e.submit_overhead() > classic);
    }

    #[test]
    #[should_panic(expected = "unbalanced rcu reader exit")]
    fn unbalanced_reader_exit_panics() {
        engine(RcuMode::Boosted).reader_exit();
    }

    #[test]
    #[should_panic(expected = "grace completion on idle engine")]
    fn completion_on_idle_panics() {
        engine(RcuMode::Boosted).complete_grace_period(SimTime::ZERO);
    }
}
