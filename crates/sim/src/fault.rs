//! Deterministic fault injection: seeded plans of crashes, hangs, and
//! device degradation applied to a [`crate::machine::Machine`] run.
//!
//! The paper's deployment constraint is that a misbehaving service must
//! never brick the boot: the Service Engine has to detect the failure
//! and degrade rather than hang (§3.4 discussion of deployment risks).
//! To measure that failure envelope the simulator can carry a
//! [`FaultPlan`] — a fixed list of faults resolved before the run starts
//! — so a chaos sweep over `{seed × plan × config}` is exactly as
//! reproducible as a fault-free run. Every injected fault is recorded in
//! the trace as [`crate::trace::TraceKind::FaultInjected`].
//!
//! Fault vocabulary (matched to observed CE failure modes):
//!
//! - [`Fault::CrashAtReadiness`]: the process aborts at its readiness
//!   boundary (first `SetFlag`), before signalling — the classic
//!   "service died during start-up" case supervision must catch.
//! - [`Fault::HangBeforeReady`]: the process blocks forever at the same
//!   boundary — only timeouts or a boot deadline can detect this.
//! - [`Fault::TransientIoError`]: a bounded number of storage reads fail
//!   and are retried after a delay (flaky flash/eMMC link).
//! - [`Fault::SlowDevice`]: the device's bandwidth is divided and its
//!   request latency multiplied by a factor for the whole run (the
//!   degraded-flash tail behaviour device profiling studies report).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// One fault to inject during a run.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Crash the named process at its readiness boundary (the first
    /// `SetFlag` it executes). Injected into the first `hits` matching
    /// process incarnations — respawned attempts named `name#k` also
    /// match, so `hits: 2` crashes the original and its first respawn.
    ///
    /// The crash additionally sets the flag `fault:crashed:<process>`
    /// (using the incarnation's full name), which supervision watchers
    /// wait on to trigger a respawn.
    CrashAtReadiness {
        /// Process (unit) name to afflict.
        process: String,
        /// Number of incarnations to crash.
        hits: u32,
    },
    /// Hang the named process indefinitely at its readiness boundary:
    /// its remaining ops are replaced by a wait on a flag nobody sets.
    HangBeforeReady {
        /// Process (unit) name to afflict.
        process: String,
        /// Number of incarnations to hang.
        hits: u32,
    },
    /// Fail the next `failures` read requests on the named device; each
    /// failure costs the issuing process a `retry_delay` sleep before
    /// the read is retried.
    TransientIoError {
        /// Device name (as given to `Machine::add_device`).
        device: String,
        /// Number of reads that fail before the device heals.
        failures: u32,
        /// Off-CPU retry backoff per failure.
        retry_delay: SimDuration,
    },
    /// Degrade the named device for the whole run: sequential and random
    /// bandwidth divided by `factor`, request latency multiplied by it.
    SlowDevice {
        /// Device name (as given to `Machine::add_device`).
        device: String,
        /// Degradation factor (> 1.0 slows the device down).
        factor: f64,
    },
}

impl Fault {
    /// Short human-readable description, used for trace records.
    pub fn describe(&self) -> String {
        match self {
            Fault::CrashAtReadiness { process, .. } => {
                format!("crash at readiness: {process}")
            }
            Fault::HangBeforeReady { process, .. } => {
                format!("hang before ready: {process}")
            }
            Fault::TransientIoError { device, .. } => {
                format!("transient I/O error: {device}")
            }
            Fault::SlowDevice { device, factor } => {
                format!("slow device ×{factor}: {device}")
            }
        }
    }
}

/// Candidate targets for seeded plan generation.
#[derive(Debug, Clone, Default)]
pub struct FaultTargets {
    /// Process (unit) names eligible for crash/hang faults.
    pub processes: Vec<String>,
    /// Device names eligible for I/O faults.
    pub devices: Vec<String>,
}

/// A fixed, reproducible set of faults for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Faults to install, applied in order.
    pub faults: Vec<Fault>,
    /// Seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
}

impl FaultPlan {
    /// The empty plan: installing it is a strict no-op.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Generates a plan from a seed: 1–3 faults drawn over the given
    /// targets. The same `(seed, targets)` always yields the same plan.
    pub fn seeded(seed: u64, targets: &FaultTargets) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut faults = Vec::new();
        let n = rng.gen_range(1u32..=3);
        for _ in 0..n {
            // Device faults need devices, process faults need processes;
            // fall through to whichever target set is populated.
            let want_device = rng.gen_range(0u32..4) == 0;
            if want_device && !targets.devices.is_empty() {
                let device = targets.devices[rng.gen_range(0..targets.devices.len())].clone();
                if rng.gen_range(0u32..2) == 0 {
                    faults.push(Fault::TransientIoError {
                        device,
                        failures: rng.gen_range(1u32..=3),
                        retry_delay: SimDuration::from_millis(rng.gen_range(5u64..=40)),
                    });
                } else {
                    faults.push(Fault::SlowDevice {
                        device,
                        factor: rng.gen_range(2u64..=6) as f64,
                    });
                }
            } else if !targets.processes.is_empty() {
                let process = targets.processes[rng.gen_range(0..targets.processes.len())].clone();
                if rng.gen_range(0u32..3) == 0 {
                    faults.push(Fault::HangBeforeReady { process, hits: 1 });
                } else {
                    faults.push(Fault::CrashAtReadiness {
                        process,
                        hits: rng.gen_range(1u32..=3),
                    });
                }
            }
        }
        FaultPlan { faults, seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets() -> FaultTargets {
        FaultTargets {
            processes: vec!["a.service".into(), "b.service".into()],
            devices: vec!["boot-storage".into()],
        }
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let t = targets();
        assert_eq!(FaultPlan::seeded(7, &t), FaultPlan::seeded(7, &t));
        assert!(!FaultPlan::seeded(7, &t).is_empty());
    }

    #[test]
    fn different_seeds_eventually_differ() {
        let t = targets();
        let base = FaultPlan::seeded(0, &t);
        assert!((1..32).any(|s| FaultPlan::seeded(s, &t) != base));
    }

    #[test]
    fn empty_targets_yield_empty_plan() {
        let plan = FaultPlan::seeded(3, &FaultTargets::default());
        assert!(plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn descriptions_name_the_target() {
        let f = Fault::CrashAtReadiness {
            process: "x.service".into(),
            hits: 1,
        };
        assert!(f.describe().contains("x.service"));
    }
}
