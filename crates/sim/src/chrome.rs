//! Chrome trace-event export: open simulation runs in `chrome://tracing`
//! or [Perfetto](https://ui.perfetto.dev).
//!
//! Core busy spans become complete ("X") events on one track per CPU,
//! and flag sets become instant ("i") events — so a whole boot can be
//! inspected interactively: which services held which cores when, where
//! the RCU storms are, and what gated the critical chain.

use crate::machine::Machine;
use crate::trace::TraceKind;

/// Minimal JSON string escaping (names are ASCII identifiers, but unit
/// descriptions could surprise us).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine's trace in Chrome trace-event JSON array format.
///
/// Load the output in `chrome://tracing` or Perfetto. Span recording
/// must be enabled on the machine (it is by default).
pub fn chrome_trace(machine: &Machine) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let push = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&s);
    };

    // Core busy spans: pid 1 = "machine", tid = core index.
    for span in machine.trace().spans() {
        let name = escape(&machine.process(span.pid).name);
        let ts = span.start.as_nanos() as f64 / 1000.0;
        let dur = span.end.saturating_since(span.start).as_nanos() as f64 / 1000.0;
        push(
            format!(
                r#"  {{"name":"{name}","cat":"cpu","ph":"X","ts":{ts:.3},"dur":{dur:.3},"pid":1,"tid":{}}}"#,
                span.core.as_raw()
            ),
            &mut out,
            &mut first,
        );
    }
    // Flag sets as instant events on a dedicated track.
    for e in machine.trace().events() {
        if let TraceKind::FlagSet { flag } = e.kind {
            let name = escape(machine.flag_name(flag));
            let ts = e.time.as_nanos() as f64 / 1000.0;
            push(
                format!(
                    r#"  {{"name":"{name}","cat":"flag","ph":"i","ts":{ts:.3},"pid":1,"tid":999,"s":"g"}}"#
                ),
                &mut out,
                &mut first,
            );
        }
    }
    // Track names.
    for core in 0..machine.config().cores {
        push(
            format!(
                r#"  {{"name":"thread_name","ph":"M","pid":1,"tid":{core},"args":{{"name":"cpu{core}"}}}}"#
            ),
            &mut out,
            &mut first,
        );
    }
    push(
        r#"  {"name":"thread_name","ph":"M","pid":1,"tid":999,"args":{"name":"flags"}}"#.to_owned(),
        &mut out,
        &mut first,
    );
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::process::{OpsBuilder, ProcessSpec};

    #[test]
    fn trace_is_valid_json_shaped_and_complete() {
        let mut m = Machine::new(MachineConfig {
            cores: 2,
            ..MachineConfig::default()
        });
        let f = m.flag("the-flag");
        m.spawn(ProcessSpec::new(
            "svc \"quoted\"",
            OpsBuilder::new().compute_ms(2).set_flag(f).build(),
        ));
        m.run();
        let json = chrome_trace(&m);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with("]"));
        // Escaped name present, flag instant present, track metadata.
        assert!(json.contains(r#"svc \"quoted\""#));
        assert!(json.contains(r#""cat":"flag""#));
        assert!(json.contains(r#""name":"the-flag""#));
        assert!(json.contains(r#""name":"cpu1""#));
        // Balanced braces (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
    }
}
