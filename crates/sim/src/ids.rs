//! Identifier newtypes for simulator entities.
//!
//! Each entity class (process, core, device, flag) gets its own index
//! newtype so the type system prevents cross-class mixups in the
//! scheduler and event queue.

use core::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index.
            pub const fn from_raw(raw: u32) -> Self {
                $name(raw)
            }

            /// The raw index backing this id.
            pub const fn as_raw(self) -> u32 {
                self.0
            }

            /// The raw index as `usize`, for table lookups.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a simulated process.
    Pid,
    "pid"
);
id_type!(
    /// Identifies a CPU core of the simulated machine.
    CoreId,
    "cpu"
);
id_type!(
    /// Identifies a storage device of the simulated machine.
    DeviceId,
    "dev"
);
id_type!(
    /// Identifies a named synchronization flag (a one-shot event that
    /// processes may wait on, like a condition that is signalled once).
    FlagId,
    "flag"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let p = Pid::from_raw(7);
        assert_eq!(p.as_raw(), 7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.to_string(), "pid7");
        assert_eq!(CoreId::from_raw(1).to_string(), "cpu1");
        assert_eq!(DeviceId::from_raw(0).to_string(), "dev0");
        assert_eq!(FlagId::from_raw(3).to_string(), "flag3");
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(Pid::from_raw(1) < Pid::from_raw(2));
        assert_eq!(Pid::from_raw(5), Pid::from_raw(5));
    }
}
