//! Zero-cost-when-disabled telemetry: named spans plus a counter /
//! histogram registry.
//!
//! The simulator already records a [`Trace`](crate::trace::Trace) of
//! scheduling events; telemetry is the *aggregated* view: named spans
//! (an interval with a start and an end) and a [`MetricsRegistry`] of
//! monotonic counters and raw-sample histograms. Like the fault plan,
//! telemetry follows the `Option<..>` pattern on
//! [`Machine`](crate::machine::Machine): when disabled the field is
//! `None` and the hot-path hooks reduce to a single `is_some()` check,
//! so timelines — and therefore the calibration pins — are untouched.
//!
//! Metric names are dotted lowercase strings (`rcu.sync.wait_ns`);
//! durations are recorded in raw nanoseconds so aggregation stays
//! exact. Histograms keep every sample: the simulated workloads are
//! small enough (thousands of samples per boot) that exactness beats
//! the memory savings of bucketing, and exact samples make fleet-level
//! percentile aggregation bit-reproducible.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// Number of RCU synchronizations submitted (counter).
pub const RCU_SYNCS: &str = "rcu.syncs";
/// Wait time of each RCU synchronization, submit-to-release (histogram, ns).
pub const RCU_SYNC_WAIT_NS: &str = "rcu.sync.wait_ns";
/// Ready-queue depth observed at each dispatch (histogram, processes).
pub const RUN_QUEUE_DEPTH: &str = "sched.run_queue.depth";
/// Latency of each I/O request, submit-to-complete (histogram, ns).
pub const IO_REQUEST_LATENCY_NS: &str = "io.request.latency_ns";

/// A named interval on the simulated timeline.
///
/// Spans are half-open conceptually but stored as `[start, end]`
/// instants; `end >= start` always holds for spans produced by the
/// simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Span name, e.g. `"unit/dbus.service"` or `"kernel/initcalls"`.
    pub name: String,
    /// When the interval opened.
    pub start: SimTime,
    /// When the interval closed.
    pub end: SimTime,
}

impl Span {
    /// Creates a span; `end` is clamped up to `start` if it precedes it.
    pub fn new(name: impl Into<String>, start: SimTime, end: SimTime) -> Self {
        Span {
            name: name.into(),
            start,
            end: end.max(start),
        }
    }

    /// The length of the interval.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// An exact-sample histogram: every recorded value is kept.
///
/// Percentiles use the nearest-rank method on the sorted sample set,
/// which is deterministic and merge-stable (merging two histograms and
/// taking a percentile equals taking it over the concatenated samples).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    samples: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.samples
            .iter()
            .fold(0u64, |acc, &s| acc.saturating_add(s))
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Arithmetic mean, truncating; `None` if empty.
    pub fn mean(&self) -> Option<u64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum() / self.samples.len() as u64)
        }
    }

    /// Nearest-rank percentile for `p` in `1..=100`; `None` if empty.
    pub fn percentile(&self, p: u32) -> Option<u64> {
        percentile_of(&self.sorted(), p)
    }

    /// The raw samples, in recording order.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// A sorted copy of the samples.
    pub fn sorted(&self) -> Vec<u64> {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        sorted
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
    }
}

/// Nearest-rank percentile over an already-sorted slice.
///
/// `p` is clamped to `1..=100`; returns `None` on an empty slice.
pub fn percentile_of(sorted: &[u64], p: u32) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let p = p.clamp(1, 100) as usize;
    let rank = (p * sorted.len()).div_ceil(100);
    Some(sorted[rank - 1])
}

/// A registry of named counters and histograms.
///
/// Keyed by `&'static str` metric names (the simulator's metric set is
/// closed) stored in `BTreeMap`s so iteration order — and therefore
/// every JSON rendering — is deterministic.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter, creating it at zero.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        let c = self.counters.entry(name).or_insert(0);
        *c = c.saturating_add(delta);
    }

    /// Records one histogram sample, creating the histogram if needed.
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

/// The telemetry sink installed on a [`Machine`](crate::machine::Machine).
///
/// Holds the machine-level metrics registry; span assembly happens in
/// `bb-core`, which sees the unit graph and pass provenance the
/// simulator deliberately knows nothing about.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Counters and histograms recorded by the machine's hot-path hooks.
    pub metrics: MetricsRegistry,
}

impl Telemetry {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Telemetry::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [30, 10, 20, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 100);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(40));
        assert_eq!(h.mean(), Some(25));
        assert_eq!(h.percentile(50), Some(20));
        assert_eq!(h.percentile(75), Some(30));
        assert_eq!(h.percentile(100), Some(40));
        assert_eq!(h.percentile(1), Some(10));
    }

    #[test]
    fn empty_histogram_is_all_none() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(99), None);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted: Vec<u64> = (1..=10).collect();
        assert_eq!(percentile_of(&sorted, 50), Some(5));
        assert_eq!(percentile_of(&sorted, 95), Some(10));
        assert_eq!(percentile_of(&sorted, 99), Some(10));
        assert_eq!(percentile_of(&sorted, 10), Some(1));
        assert_eq!(percentile_of(&[], 50), None);
    }

    #[test]
    fn merge_matches_concatenation() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [5, 1, 9] {
            a.record(v);
        }
        for v in [2, 8] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        let mut all = Histogram::new();
        for v in [5, 1, 9, 2, 8] {
            all.record(v);
        }
        assert_eq!(merged.sorted(), all.sorted());
        assert_eq!(merged.percentile(50), all.percentile(50));
    }

    #[test]
    fn registry_counters_and_iteration_order() {
        let mut r = MetricsRegistry::new();
        r.add(RCU_SYNCS, 2);
        r.add(RCU_SYNCS, 3);
        r.record(RUN_QUEUE_DEPTH, 7);
        r.record(IO_REQUEST_LATENCY_NS, 1_000);
        assert_eq!(r.counter(RCU_SYNCS), 5);
        assert_eq!(r.counter("never.touched"), 0);
        let names: Vec<&str> = r.histograms().map(|(n, _)| n).collect();
        assert_eq!(names, vec![IO_REQUEST_LATENCY_NS, RUN_QUEUE_DEPTH]);
    }

    #[test]
    fn span_duration_and_clamping() {
        let s = Span::new(
            "unit/a.service",
            SimTime::from_nanos(100),
            SimTime::from_nanos(250),
        );
        assert_eq!(s.duration(), SimDuration::from_nanos(150));
        let clamped = Span::new("x", SimTime::from_nanos(10), SimTime::ZERO);
        assert_eq!(clamped.end, clamped.start);
        assert!(clamped.duration().is_zero());
    }
}
