//! Simulated time: nanosecond-resolution instants and durations.
//!
//! All simulation state is keyed on [`SimTime`], a monotonically
//! non-decreasing virtual clock starting at the power-on signal (t = 0).
//! Durations are represented by [`SimDuration`]. Both are thin `u64`
//! newtypes so they are `Copy`, totally ordered, and cheap to store in
//! event queues.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in simulated time, in nanoseconds since power-on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time (the power-on signal).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since power-on.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since power-on.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since power-on (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since power-on (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since power-on as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since power-on as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; the simulator never runs
    /// time backwards, so this indicates a logic error.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "time ran backwards: {earlier} > {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference; zero if `earlier` is later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds (for cost models).
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Milliseconds as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction; zero if `other` is larger.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the duration by a factor, e.g. dividing CPU work by a core
    /// speed multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid scale factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("subtraction before power-on"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative duration"))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl core::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{}us", self.as_micros())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimTime::from_nanos(1_500_000).as_millis(), 1);
        assert_eq!(SimTime::from_nanos(1_500_000).as_micros(), 1_500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 5);
        let d = t.since(SimTime::from_nanos(1_000_000));
        assert_eq!(d.as_millis(), 4);
        assert_eq!(
            SimDuration::from_millis(10) - SimDuration::from_millis(4),
            SimDuration::from_millis(6)
        );
        assert_eq!(
            SimDuration::from_millis(3) * 4,
            SimDuration::from_millis(12)
        );
        assert_eq!(
            SimDuration::from_millis(12) / 4,
            SimDuration::from_millis(3)
        );
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.scale(0.5), SimDuration::from_millis(50));
        assert_eq!(d.scale(2.0), SimDuration::from_millis(200));
        assert_eq!(d.scale(0.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_nanos(10));
        assert_eq!(
            SimDuration::from_nanos(5).saturating_sub(SimDuration::from_nanos(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "time ran backwards")]
    fn since_panics_on_backwards_time() {
        SimTime::from_nanos(1).since(SimTime::from_nanos(2));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
