//! Simulation trace: the timeline every chart and assertion reads.
//!
//! The machine appends [`TraceEvent`]s as the run progresses. The init
//! layer and the bootchart renderer reconstruct service timelines from
//! process spawn/first-run/finish events and flag-set times; core busy
//! spans feed CPU-utilization rows (the shaded background of
//! systemd-bootchart graphs, Figure 5(a) / Figure 7 of the paper).

use std::collections::HashMap;

use crate::ids::{CoreId, FlagId, Pid};
use crate::time::{SimDuration, SimTime};

/// What a trace entry records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A process was created.
    Spawned {
        /// Process name from its spec.
        name: String,
    },
    /// A process was dispatched onto a core for the first time.
    FirstRun,
    /// A process completed all its ops.
    Finished,
    /// A process hit an [`crate::process::Op`]`::AssertFlag` whose flag
    /// was unset and aborted.
    Failed {
        /// The flag that was not yet set.
        flag: FlagId,
    },
    /// A flag was set.
    FlagSet {
        /// The flag.
        flag: FlagId,
    },
    /// A `synchronize_rcu` call completed.
    RcuSyncDone {
        /// Wall time from submission to grace-period end.
        waited: SimDuration,
    },
    /// An installed [`crate::fault::FaultPlan`] injected a fault. The pid
    /// is the afflicted process (or `u32::MAX` for device-level faults).
    FaultInjected {
        /// Human-readable description of the injected fault.
        description: String,
    },
}

/// One timestamped trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// The process it concerns (the setter, for `FlagSet`).
    pub pid: Pid,
    /// What happened.
    pub kind: TraceKind,
}

/// A contiguous interval during which a core executed (or spin-waited
/// on behalf of) one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreSpan {
    /// The core.
    pub core: CoreId,
    /// The occupying process.
    pub pid: Pid,
    /// Span start.
    pub start: SimTime,
    /// Span end.
    pub end: SimTime,
}

/// Collected timeline of one simulation run.
#[derive(Debug, Default)]
pub struct Trace {
    pub(crate) events: Vec<TraceEvent>,
    pub(crate) spans: Vec<CoreSpan>,
    /// Disable span recording for very long runs.
    pub record_spans: bool,
}

impl Trace {
    /// Creates an empty trace with span recording enabled.
    pub fn new() -> Self {
        Trace {
            events: Vec::new(),
            spans: Vec::new(),
            record_spans: true,
        }
    }

    /// Empties the trace back to the [`Trace::new`] state, keeping the
    /// event and span allocations (machine recycling).
    pub(crate) fn reset(&mut self) {
        self.events.clear();
        self.spans.clear();
        self.record_spans = true;
    }

    /// Appends an event.
    pub fn push(&mut self, time: SimTime, pid: Pid, kind: TraceKind) {
        self.events.push(TraceEvent { time, pid, kind });
    }

    /// Appends a core busy span (no-op if span recording is off).
    pub fn push_span(&mut self, span: CoreSpan) {
        if self.record_spans {
            self.spans.push(span);
        }
    }

    /// All events in time order (the machine appends monotonically).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// All core busy spans.
    pub fn spans(&self) -> &[CoreSpan] {
        &self.spans
    }

    /// Time the given flag was set, if it was.
    pub fn flag_set_time(&self, flag: FlagId) -> Option<SimTime> {
        self.events.iter().find_map(|e| match e.kind {
            TraceKind::FlagSet { flag: f } if f == flag => Some(e.time),
            _ => None,
        })
    }

    /// Spawn, first-run, and finish times per process.
    pub fn process_timeline(&self) -> HashMap<Pid, ProcessTimeline> {
        let mut map: HashMap<Pid, ProcessTimeline> = HashMap::new();
        for e in &self.events {
            let entry = map.entry(e.pid).or_default();
            match &e.kind {
                TraceKind::Spawned { name } => {
                    entry.name = name.clone();
                    entry.spawned = Some(e.time);
                }
                TraceKind::FirstRun => entry.first_run = Some(e.time),
                TraceKind::Finished => entry.finished = Some(e.time),
                TraceKind::Failed { .. } => entry.failed = true,
                _ => {}
            }
        }
        map
    }

    /// Total busy time summed over all cores within `[start, end)`.
    pub fn busy_time_in(&self, start: SimTime, end: SimTime) -> SimDuration {
        self.spans
            .iter()
            .map(|s| {
                let lo = s.start.max(start);
                let hi = if s.end <= end { s.end } else { end };
                hi.saturating_since(lo)
            })
            .sum()
    }

    /// Mean CPU utilization over `[start, end)` for a machine with
    /// `cores` cores (0.0–1.0).
    pub fn utilization(&self, start: SimTime, end: SimTime, cores: usize) -> f64 {
        let window = end.saturating_since(start);
        if window.is_zero() || cores == 0 {
            return 0.0;
        }
        self.busy_time_in(start, end).as_nanos() as f64 / (window.as_nanos() as f64 * cores as f64)
    }
}

/// Per-process lifecycle summary extracted from a trace.
#[derive(Debug, Clone, Default)]
pub struct ProcessTimeline {
    /// Process name.
    pub name: String,
    /// Spawn time.
    pub spawned: Option<SimTime>,
    /// First dispatch onto a core.
    pub first_run: Option<SimTime>,
    /// Completion time.
    pub finished: Option<SimTime>,
    /// True if the process aborted on an unmet flag assertion.
    pub failed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_set_time_finds_first() {
        let mut t = Trace::new();
        let f = FlagId::from_raw(2);
        t.push(
            SimTime::from_nanos(5),
            Pid::from_raw(0),
            TraceKind::FlagSet { flag: f },
        );
        assert_eq!(t.flag_set_time(f), Some(SimTime::from_nanos(5)));
        assert_eq!(t.flag_set_time(FlagId::from_raw(9)), None);
    }

    #[test]
    fn process_timeline_assembles_lifecycle() {
        let mut t = Trace::new();
        let p = Pid::from_raw(3);
        t.push(
            SimTime::from_nanos(1),
            p,
            TraceKind::Spawned { name: "svc".into() },
        );
        t.push(SimTime::from_nanos(4), p, TraceKind::FirstRun);
        t.push(SimTime::from_nanos(9), p, TraceKind::Finished);
        let tl = &t.process_timeline()[&p];
        assert_eq!(tl.name, "svc");
        assert_eq!(tl.spawned.unwrap().as_nanos(), 1);
        assert_eq!(tl.first_run.unwrap().as_nanos(), 4);
        assert_eq!(tl.finished.unwrap().as_nanos(), 9);
        assert!(!tl.failed);
    }

    #[test]
    fn utilization_from_spans() {
        let mut t = Trace::new();
        // One core busy for 50 of 100 ns, the other idle: 25% on 2 cores.
        t.push_span(CoreSpan {
            core: CoreId::from_raw(0),
            pid: Pid::from_raw(0),
            start: SimTime::from_nanos(0),
            end: SimTime::from_nanos(50),
        });
        let u = t.utilization(SimTime::ZERO, SimTime::from_nanos(100), 2);
        assert!((u - 0.25).abs() < 1e-9);
    }

    #[test]
    fn spans_clip_to_window() {
        let mut t = Trace::new();
        t.push_span(CoreSpan {
            core: CoreId::from_raw(0),
            pid: Pid::from_raw(0),
            start: SimTime::from_nanos(0),
            end: SimTime::from_nanos(100),
        });
        let busy = t.busy_time_in(SimTime::from_nanos(40), SimTime::from_nanos(60));
        assert_eq!(busy.as_nanos(), 20);
    }

    #[test]
    fn span_recording_can_be_disabled() {
        let mut t = Trace::new();
        t.record_spans = false;
        t.push_span(CoreSpan {
            core: CoreId::from_raw(0),
            pid: Pid::from_raw(0),
            start: SimTime::ZERO,
            end: SimTime::from_nanos(1),
        });
        assert!(t.spans().is_empty());
    }
}
