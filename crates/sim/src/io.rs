//! Storage device model.
//!
//! A [`Device`] services read requests in FIFO order, one at a time
//! (eMMC-class devices have effectively one channel; this is also the
//! conservative model for boot-time queueing). Each request costs a fixed
//! per-request latency plus `bytes / bandwidth(pattern)` transfer time.
//!
//! Bandwidth figures for the profiles used in experiments come straight
//! from the paper's §4: the UE48H6200 eMMC reads 117 MiB/s sequential and
//! 37 MiB/s random; a Samsung 850 Evo SSD 515/379 MiB/s; a Barracuda HDD
//! 165/65 MB/s.

use std::collections::BTreeMap;

use crate::ids::{DeviceId, Pid};
use crate::process::AccessPattern;
use crate::time::{SimDuration, SimTime};

/// One mebibyte, for bandwidth conversions.
pub const MIB: u64 = 1024 * 1024;

/// I/O scheduling priority of a request (the init scheme's
/// `IOSchedulingClass=` knob, set via `ioprio_set`, §2.5).
///
/// Lower values are served first; within a class, FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum IoPriority {
    /// Preferential service (`realtime`).
    Realtime,
    /// Kernel default (`best-effort`).
    #[default]
    BestEffort,
    /// Served only when nothing else is queued (`idle`).
    Idle,
}

/// Static performance parameters of a storage device.
#[derive(Debug, Clone, Copy)]
pub struct DeviceProfile {
    /// Sequential read bandwidth in bytes per second.
    pub seq_read_bps: u64,
    /// Random read bandwidth in bytes per second.
    pub rand_read_bps: u64,
    /// Fixed latency charged per request (command issue + seek).
    pub request_latency: SimDuration,
}

impl DeviceProfile {
    /// Creates a profile from MiB/s figures and a per-request latency.
    ///
    /// # Panics
    ///
    /// Panics if either bandwidth is zero.
    pub fn from_mibs(seq_mibs: u64, rand_mibs: u64, request_latency: SimDuration) -> Self {
        assert!(seq_mibs > 0 && rand_mibs > 0, "bandwidth must be nonzero");
        DeviceProfile {
            seq_read_bps: seq_mibs * MIB,
            rand_read_bps: rand_mibs * MIB,
            request_latency,
        }
    }

    /// The eMMC of the Samsung UE48H6200 TV (117/37 MiB/s, §4).
    pub fn tv_emmc() -> Self {
        Self::from_mibs(117, 37, SimDuration::from_micros(150))
    }

    /// A consumer SSD (Samsung 850 Evo class, 515/379 MiB/s, §4).
    pub fn consumer_ssd() -> Self {
        Self::from_mibs(515, 379, SimDuration::from_micros(60))
    }

    /// A consumer HDD (Seagate Barracuda class, ~157/62 MiB/s, §4; the
    /// paper quotes 165/65 MB/s which is 157/62 MiB/s).
    pub fn consumer_hdd() -> Self {
        DeviceProfile {
            seq_read_bps: 165_000_000,
            rand_read_bps: 65_000_000,
            request_latency: SimDuration::from_millis(4),
        }
    }

    /// UFS 2.0 flash of a Galaxy-S6-class phone (~300 MiB/s sequential,
    /// §2.1).
    pub fn ufs20() -> Self {
        Self::from_mibs(300, 120, SimDuration::from_micros(80))
    }

    /// Pure transfer + latency cost of a read with this profile.
    pub fn service_time(&self, bytes: u64, pattern: AccessPattern) -> SimDuration {
        let bps = match pattern {
            AccessPattern::Sequential => self.seq_read_bps,
            AccessPattern::Random => self.rand_read_bps,
        };
        let transfer_ns = (bytes as u128)
            .saturating_mul(1_000_000_000)
            .div_ceil(bps as u128);
        self.request_latency + SimDuration::from_nanos(transfer_ns.min(u64::MAX as u128) as u64)
    }
}

/// A pending read request.
#[derive(Debug, Clone, Copy)]
pub struct IoRequest {
    /// Process to wake when the request completes.
    pub pid: Pid,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Access pattern.
    pub pattern: AccessPattern,
    /// Scheduling class.
    pub priority: IoPriority,
    /// When the request was submitted (for queueing-delay stats).
    pub submitted_at: SimTime,
}

/// A storage device instance with a priority request queue (requests
/// are serviced one at a time: highest class first, FIFO within a
/// class; the in-flight request is never preempted).
#[derive(Debug)]
pub struct Device {
    /// This device's id.
    pub id: DeviceId,
    /// Human-readable name (for traces).
    pub name: String,
    /// Performance parameters.
    pub profile: DeviceProfile,
    /// Waiting requests keyed by (class, submission sequence).
    pub(crate) queue: BTreeMap<(IoPriority, u64), IoRequest>,
    pub(crate) next_seq: u64,
    pub(crate) in_flight: Option<IoRequest>,
    pub(crate) busy_until: Option<SimTime>,
    /// Total bytes read, for reports.
    pub bytes_read: u64,
    /// Total time requests spent queued before service, for reports.
    pub total_queue_delay: SimDuration,
}

impl Device {
    /// Creates an idle device.
    pub fn new(id: DeviceId, name: impl Into<String>, profile: DeviceProfile) -> Self {
        Device {
            id,
            name: name.into(),
            profile,
            queue: BTreeMap::new(),
            next_seq: 0,
            in_flight: None,
            busy_until: None,
            bytes_read: 0,
            total_queue_delay: SimDuration::ZERO,
        }
    }

    /// True if a request is in flight.
    pub fn is_busy(&self) -> bool {
        self.busy_until.is_some()
    }

    /// Number of requests waiting or in flight.
    pub fn queue_len(&self) -> usize {
        self.queue.len() + usize::from(self.in_flight.is_some())
    }

    /// Submits a request. Returns the completion time if the device was
    /// idle and service starts immediately; otherwise the request queues
    /// and `None` is returned (the completion event for it will be
    /// scheduled when it is selected).
    pub fn submit(&mut self, req: IoRequest, now: SimTime) -> Option<SimTime> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.insert((req.priority, seq), req);
        if self.busy_until.is_none() {
            Some(self.start_next(now))
        } else {
            None
        }
    }

    /// Completes the in-flight request, returning the finished request and
    /// the completion time of the next one, if any starts.
    ///
    /// # Panics
    ///
    /// Panics if the device is idle; completion events are only scheduled
    /// for busy devices.
    pub fn complete_head(&mut self, now: SimTime) -> (IoRequest, Option<SimTime>) {
        assert!(self.busy_until.is_some(), "completion on idle device");
        let done = self.in_flight.take().expect("busy device has a request");
        self.bytes_read += done.bytes;
        self.busy_until = None;
        let next = if self.queue.is_empty() {
            None
        } else {
            Some(self.start_next(now))
        };
        (done, next)
    }

    fn start_next(&mut self, now: SimTime) -> SimTime {
        let (&key, _) = self
            .queue
            .iter()
            .next()
            .expect("start_next with empty queue");
        let head = self.queue.remove(&key).expect("key exists");
        self.total_queue_delay += now.saturating_since(head.submitted_at);
        let done_at = now + self.profile.service_time(head.bytes, head.pattern);
        self.in_flight = Some(head);
        self.busy_until = Some(done_at);
        done_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(pid: u32, bytes: u64, pattern: AccessPattern, at: SimTime) -> IoRequest {
        req_prio(pid, bytes, pattern, IoPriority::BestEffort, at)
    }

    fn req_prio(
        pid: u32,
        bytes: u64,
        pattern: AccessPattern,
        priority: IoPriority,
        at: SimTime,
    ) -> IoRequest {
        IoRequest {
            pid: Pid::from_raw(pid),
            bytes,
            pattern,
            priority,
            submitted_at: at,
        }
    }

    #[test]
    fn service_time_sequential_vs_random() {
        let p = DeviceProfile::from_mibs(100, 10, SimDuration::ZERO);
        let seq = p.service_time(100 * MIB, AccessPattern::Sequential);
        let rand = p.service_time(100 * MIB, AccessPattern::Random);
        assert_eq!(seq.as_millis(), 1000);
        assert_eq!(rand.as_millis(), 10_000);
    }

    #[test]
    fn request_latency_is_charged() {
        let p = DeviceProfile::from_mibs(100, 100, SimDuration::from_millis(5));
        assert_eq!(p.service_time(0, AccessPattern::Random).as_millis(), 5);
    }

    #[test]
    fn fifo_queueing_serializes_requests() {
        let prof = DeviceProfile::from_mibs(1, 1, SimDuration::ZERO); // 1 MiB/s
        let mut dev = Device::new(DeviceId::from_raw(0), "emmc", prof);
        let t0 = SimTime::ZERO;
        let c1 = dev.submit(req(1, MIB, AccessPattern::Sequential, t0), t0);
        assert_eq!(c1.unwrap().as_millis(), 1000);
        // Second request queues behind the first.
        let c2 = dev.submit(req(2, MIB, AccessPattern::Sequential, t0), t0);
        assert!(c2.is_none());
        assert_eq!(dev.queue_len(), 2);
        // First completes; second starts and finishes one second later.
        let (done, next) = dev.complete_head(c1.unwrap());
        assert_eq!(done.pid, Pid::from_raw(1));
        assert_eq!(next.unwrap().as_millis(), 2000);
        let (done2, next2) = dev.complete_head(next.unwrap());
        assert_eq!(done2.pid, Pid::from_raw(2));
        assert!(next2.is_none());
        assert!(!dev.is_busy());
        assert_eq!(dev.bytes_read, 2 * MIB);
    }

    #[test]
    fn realtime_requests_jump_the_queue() {
        let prof = DeviceProfile::from_mibs(1, 1, SimDuration::ZERO); // 1 MiB/s
        let mut dev = Device::new(DeviceId::from_raw(0), "emmc", prof);
        let t0 = SimTime::ZERO;
        // Best-effort request in flight, another queued, then a realtime
        // arrival: the realtime one is served next, the idle one last.
        let c1 = dev
            .submit(req(1, MIB, AccessPattern::Sequential, t0), t0)
            .unwrap();
        dev.submit(req(2, MIB, AccessPattern::Sequential, t0), t0);
        dev.submit(
            req_prio(3, MIB, AccessPattern::Sequential, IoPriority::Idle, t0),
            t0,
        );
        dev.submit(
            req_prio(4, MIB, AccessPattern::Sequential, IoPriority::Realtime, t0),
            t0,
        );
        let mut order = Vec::new();
        let (done, mut next) = dev.complete_head(c1);
        order.push(done.pid.as_raw());
        while let Some(at) = next {
            let (done, n) = dev.complete_head(at);
            order.push(done.pid.as_raw());
            next = n;
        }
        assert_eq!(order, vec![1, 4, 2, 3]);
    }

    #[test]
    fn priority_order_is_realtime_first() {
        assert!(IoPriority::Realtime < IoPriority::BestEffort);
        assert!(IoPriority::BestEffort < IoPriority::Idle);
        assert_eq!(IoPriority::default(), IoPriority::BestEffort);
    }

    #[test]
    fn queue_delay_accounting() {
        let prof = DeviceProfile::from_mibs(1, 1, SimDuration::ZERO);
        let mut dev = Device::new(DeviceId::from_raw(0), "emmc", prof);
        let t0 = SimTime::ZERO;
        let c1 = dev
            .submit(req(1, MIB, AccessPattern::Sequential, t0), t0)
            .unwrap();
        dev.submit(req(2, MIB, AccessPattern::Sequential, t0), t0);
        dev.complete_head(c1);
        // Second request waited a full second.
        assert_eq!(dev.total_queue_delay.as_millis(), 1000);
    }

    #[test]
    #[should_panic(expected = "completion on idle device")]
    fn completion_on_idle_panics() {
        let mut dev = Device::new(
            DeviceId::from_raw(0),
            "emmc",
            DeviceProfile::from_mibs(1, 1, SimDuration::ZERO),
        );
        dev.complete_head(SimTime::ZERO);
    }

    #[test]
    fn paper_profiles_are_sane() {
        let tv = DeviceProfile::tv_emmc();
        assert_eq!(tv.seq_read_bps / MIB, 117);
        assert_eq!(tv.rand_read_bps / MIB, 37);
        let ssd = DeviceProfile::consumer_ssd();
        assert!(ssd.seq_read_bps > tv.seq_read_bps * 4);
        let hdd = DeviceProfile::consumer_hdd();
        assert!(hdd.request_latency > tv.request_latency);
    }
}
