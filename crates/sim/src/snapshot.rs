//! Versioned machine save-states.
//!
//! Serializes a complete [`Machine`] — sim clock, pending event queue,
//! process arena, I/O queues, RCU state, fault-plan cursor — to a
//! length-prefixed little-endian binary format and restores it
//! *bit-identically*: a restored machine replays the remainder of a run
//! event-for-event equal to the uninterrupted original. This is the
//! substrate for checkpoint-fork fleet sweeps (simulate the shared
//! kernel phase once, fork N cheap resumes) and for the suspend-to-RAM
//! instant-on scenario.
//!
//! # Format
//!
//! ```text
//! header   magic "BBSNAPSH" | version u32 | config_hash u64
//!          | pin_conv u64 | pin_bb u64 | payload_len u64
//! payload  sections, each: id u32 | len u64 | body
//!          1 config   2 clock    3 events   4 procs   5 sched
//!          6 devices  7 flags    8 rcu      9 trace  10 spawns
//!          11 faults
//! footer   (v2+) payload_checksum u64   FNV-1a over the payload
//! ```
//!
//! All integers are little-endian; `f64` travels as IEEE-754 bits;
//! strings and vectors carry a length prefix. `config_hash` is FNV-1a
//! over the encoded config section, so a snapshot cannot be restored
//! into a build whose machine parameters drifted. The calibration pins
//! tag the cost-model epoch (the headline boot times in microseconds);
//! changing the calibration invalidates old snapshots by design.
//!
//! Format v2 appends a whole-payload FNV-1a checksum after the payload
//! (the header layout is unchanged, and `payload_len` still counts only
//! the sections). A random bit flip anywhere in the payload is detected
//! as [`SnapshotError::ChecksumMismatch`] *before* decoding, instead of
//! surfacing as an arbitrary structural error — the recovery chain in
//! `bb-core` keys off this to discard the image and cold-boot. v1
//! images (no footer) are still decoded; their integrity rests on the
//! structural checks alone.
//!
//! # Invariants
//!
//! * **Telemetry must be off.** A telemetry sink is a host-side metrics
//!   object whose presence is deliberately excluded from the
//!   bit-identical path; [`save`] refuses a machine with telemetry
//!   enabled rather than silently dropping it.
//! * **Heaps are stored canonically.** The event queue and ready queue
//!   are binary heaps; their elements are totally ordered (unique
//!   sequence numbers), so the pop order is fully determined by the
//!   element multiset. They are written sorted and rebuilt by pushes,
//!   which preserves behaviour even though the internal array layout
//!   may differ.
//! * **Derived state is rebuilt, not stored.** The flag name index is
//!   reconstructed from the flag table on restore.

use std::fmt;

use smallvec::SmallVec;

use crate::event::{EventKind, EventQueue, QueuedEvent};
use crate::ids::{CoreId, DeviceId, FlagId, Pid};
use crate::io::{Device, DeviceProfile, IoPriority, IoRequest};
use crate::machine::{
    FaultState, FlagState, IoFaultArm, Machine, MachineConfig, ProcFaultArm, ReadyQueue, Running,
};
use crate::process::{AccessPattern, BlockReason, Op, ProcState, Process, ProcessSpec};
use crate::rcu::{RcuEngine, RcuMode, RcuParams, RcuStats, WaitKind, Waiter};
use crate::time::{SimDuration, SimTime};
use crate::trace::{CoreSpan, Trace, TraceEvent, TraceKind};

/// Identifies a BB machine snapshot; constant across format versions.
pub const MAGIC: [u8; 8] = *b"BBSNAPSH";

/// Current snapshot format version. Bump on any layout change.
///
/// v1: sections only. v2: a trailing FNV-1a payload checksum follows
/// the payload. [`restore`] accepts both; [`save`] writes v2.
pub const FORMAT_VERSION: u32 = 2;

/// Oldest format version [`restore`] still decodes.
pub const MIN_SUPPORTED_VERSION: u32 = 1;

/// Bytes of the v2 trailing payload checksum.
const CHECKSUM_LEN: usize = 8;

/// Calibration-epoch pins: the headline conventional and full-BB TV
/// boot times in microseconds (8614.474 ms / 3200.077 ms). A snapshot
/// written under a different calibration is rejected on restore.
pub const CALIBRATION_PIN_CONVENTIONAL_US: u64 = 8_614_474;
/// See [`CALIBRATION_PIN_CONVENTIONAL_US`].
pub const CALIBRATION_PIN_BB_US: u64 = 3_200_077;

const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 8;

const SEC_CONFIG: u32 = 1;
const SEC_CLOCK: u32 = 2;
const SEC_EVENTS: u32 = 3;
const SEC_PROCS: u32 = 4;
const SEC_SCHED: u32 = 5;
const SEC_DEVICES: u32 = 6;
const SEC_FLAGS: u32 = 7;
const SEC_RCU: u32 = 8;
const SEC_TRACE: u32 = 9;
const SEC_SPAWNS: u32 = 10;
const SEC_FAULTS: u32 = 11;

/// Why a snapshot could not be written or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The snapshot was written by a different format version.
    VersionMismatch {
        /// Version recorded in the snapshot header.
        found: u32,
        /// Version this build reads ([`FORMAT_VERSION`]).
        expected: u32,
    },
    /// The snapshot's machine configuration hash does not match.
    ConfigHashMismatch {
        /// Hash recorded in the snapshot header.
        found: u64,
        /// Hash of the configuration being restored.
        expected: u64,
    },
    /// The snapshot was written under a different cost-model calibration.
    CalibrationMismatch {
        /// (conventional, bb) pins recorded in the header, in µs.
        found: (u64, u64),
    },
    /// The payload bytes do not hash to the trailing checksum (v2+):
    /// the image was damaged after it was written — a bit flip, torn
    /// write, or zeroed page somewhere in the payload.
    ChecksumMismatch {
        /// Checksum recorded in the snapshot footer.
        found: u64,
        /// FNV-1a of the payload as read.
        expected: u64,
    },
    /// The buffer ended before the structure it promises.
    Truncated,
    /// Bytes remain after the last section.
    TrailingBytes,
    /// A structural invariant of the format was violated.
    Corrupt(&'static str),
    /// [`save`] was called on a machine with telemetry enabled; the
    /// telemetry sink is host-side state excluded from the
    /// bit-identical path and cannot be captured.
    TelemetryEnabled,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a BB machine snapshot (bad magic)"),
            SnapshotError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot format version {found} is not the supported version {expected}"
            ),
            SnapshotError::ConfigHashMismatch { found, expected } => write!(
                f,
                "snapshot config hash {found:#018x} does not match {expected:#018x}"
            ),
            SnapshotError::CalibrationMismatch { found } => write!(
                f,
                "snapshot calibration pins ({}, {}) µs do not match this build ({}, {}) µs",
                found.0, found.1, CALIBRATION_PIN_CONVENTIONAL_US, CALIBRATION_PIN_BB_US
            ),
            SnapshotError::ChecksumMismatch { found, expected } => write!(
                f,
                "snapshot payload checksum {found:#018x} does not match computed {expected:#018x}"
            ),
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::TrailingBytes => write!(f, "snapshot has trailing bytes"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot is corrupt: {what}"),
            SnapshotError::TelemetryEnabled => write!(
                f,
                "cannot snapshot a machine with telemetry enabled; telemetry is host-side \
                 state outside the bit-identical path"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Parsed snapshot header, for metadata reports and format checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version the snapshot was written with.
    pub version: u32,
    /// FNV-1a hash of the encoded machine configuration.
    pub config_hash: u64,
    /// Calibration pins (conventional, bb) in µs.
    pub calibration: (u64, u64),
    /// Length of the payload following the header, in bytes.
    pub payload_len: u64,
}

/// Reads and validates the header without decoding the payload.
pub fn read_header(bytes: &[u8]) -> Result<SnapshotHeader, SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut r = Reader { buf: bytes, pos: 8 };
    let version = r.u32()?;
    let config_hash = r.u64()?;
    let pin_conv = r.u64()?;
    let pin_bb = r.u64()?;
    let payload_len = r.u64()?;
    Ok(SnapshotHeader {
        version,
        config_hash,
        calibration: (pin_conv, pin_bb),
        payload_len,
    })
}

/// FNV-1a hash of the machine configuration as encoded in the snapshot;
/// two configurations hash equal iff every parameter is bit-identical.
pub fn config_hash(cfg: &MachineConfig) -> u64 {
    let mut w = Writer::new();
    encode_config(&mut w, cfg);
    fnv1a(&w.buf)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Serializes the machine to the versioned snapshot format.
///
/// # Errors
///
/// Returns [`SnapshotError::TelemetryEnabled`] if a telemetry sink is
/// installed; snapshots capture only the bit-identical simulation state.
pub fn save(machine: &Machine) -> Result<Vec<u8>, SnapshotError> {
    if machine.telemetry.is_some() {
        return Err(SnapshotError::TelemetryEnabled);
    }
    let mut payload = Writer::new();

    let mut cfg = Writer::new();
    encode_config(&mut cfg, &machine.cfg);
    let hash = fnv1a(&cfg.buf);
    payload.section(SEC_CONFIG, cfg);

    let mut w = Writer::new();
    w.u64(machine.now.as_nanos());
    payload.section(SEC_CLOCK, w);

    let mut w = Writer::new();
    encode_events(&mut w, &machine.events);
    payload.section(SEC_EVENTS, w);

    let mut w = Writer::new();
    w.len(machine.procs.len());
    for p in &machine.procs {
        encode_process(&mut w, p);
    }
    payload.section(SEC_PROCS, w);

    let mut w = Writer::new();
    encode_sched(&mut w, machine);
    payload.section(SEC_SCHED, w);

    let mut w = Writer::new();
    w.len(machine.devices.len());
    for d in &machine.devices {
        encode_device(&mut w, d);
    }
    payload.section(SEC_DEVICES, w);

    let mut w = Writer::new();
    w.len(machine.flags.len());
    for f in &machine.flags {
        w.str(&f.name);
        w.opt_u64(f.set_at.map(SimTime::as_nanos));
        w.len(f.waiters.len());
        for &pid in &f.waiters {
            w.u32(pid.as_raw());
        }
    }
    payload.section(SEC_FLAGS, w);

    let mut w = Writer::new();
    encode_rcu(&mut w, &machine.rcu);
    payload.section(SEC_RCU, w);

    let mut w = Writer::new();
    encode_trace(&mut w, &machine.trace);
    payload.section(SEC_TRACE, w);

    let mut w = Writer::new();
    w.len(machine.pending_spawns.len());
    for slot in &machine.pending_spawns {
        match slot {
            Some(spec) => {
                w.u8(1);
                encode_spec(&mut w, spec);
            }
            None => w.u8(0),
        }
    }
    payload.section(SEC_SPAWNS, w);

    let mut w = Writer::new();
    encode_faults(&mut w, machine.faults.as_ref());
    payload.section(SEC_FAULTS, w);

    let mut out = Vec::with_capacity(HEADER_LEN + payload.buf.len() + CHECKSUM_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&hash.to_le_bytes());
    out.extend_from_slice(&CALIBRATION_PIN_CONVENTIONAL_US.to_le_bytes());
    out.extend_from_slice(&CALIBRATION_PIN_BB_US.to_le_bytes());
    out.extend_from_slice(&(payload.buf.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload.buf);
    out.extend_from_slice(&fnv1a(&payload.buf).to_le_bytes());
    Ok(out)
}

/// Restores a machine from a snapshot produced by [`save`].
///
/// # Errors
///
/// Rejects buffers with a wrong magic, format version, calibration
/// epoch, or config hash, and any truncated or structurally corrupt
/// payload. Never panics on malformed input.
pub fn restore(bytes: &[u8]) -> Result<Machine, SnapshotError> {
    let header = read_header(bytes)?;
    if !(MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&header.version) {
        return Err(SnapshotError::VersionMismatch {
            found: header.version,
            expected: FORMAT_VERSION,
        });
    }
    if header.calibration != (CALIBRATION_PIN_CONVENTIONAL_US, CALIBRATION_PIN_BB_US) {
        return Err(SnapshotError::CalibrationMismatch {
            found: header.calibration,
        });
    }
    // v1 images end at the payload; v2 carries a trailing checksum.
    let footer_len = if header.version >= 2 { CHECKSUM_LEN } else { 0 };
    let expected_total = (HEADER_LEN + footer_len) as u64 + header.payload_len;
    if bytes.len() as u64 != expected_total {
        return Err(if (bytes.len() as u64) < expected_total {
            SnapshotError::Truncated
        } else {
            SnapshotError::TrailingBytes
        });
    }
    let payload = &bytes[HEADER_LEN..bytes.len() - footer_len];
    if footer_len > 0 {
        let found = u64::from_le_bytes(
            bytes[bytes.len() - CHECKSUM_LEN..]
                .try_into()
                .expect("8 bytes"),
        );
        let expected = fnv1a(payload);
        if found != expected {
            return Err(SnapshotError::ChecksumMismatch { found, expected });
        }
    }
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };

    let mut sec = r.section(SEC_CONFIG)?;
    let actual_hash = fnv1a(sec.buf);
    if actual_hash != header.config_hash {
        return Err(SnapshotError::ConfigHashMismatch {
            found: header.config_hash,
            expected: actual_hash,
        });
    }
    let cfg = decode_config(&mut sec)?;
    sec.finish()?;

    let mut sec = r.section(SEC_CLOCK)?;
    let now = SimTime::from_nanos(sec.u64()?);
    sec.finish()?;

    let mut sec = r.section(SEC_EVENTS)?;
    let events = decode_events(&mut sec)?;
    sec.finish()?;

    let mut sec = r.section(SEC_PROCS)?;
    let n = sec.vec_len(8)?;
    let mut procs = Vec::with_capacity(n);
    for _ in 0..n {
        procs.push(decode_process(&mut sec)?);
    }
    sec.finish()?;

    let mut sec = r.section(SEC_SCHED)?;
    let (cores, running, ready, ready_seq, work, failed, sched_stats) =
        decode_sched(&mut sec, cfg.cores, procs.len())?;
    sec.finish()?;

    let mut sec = r.section(SEC_DEVICES)?;
    let n = sec.vec_len(8)?;
    let mut devices = Vec::with_capacity(n);
    for _ in 0..n {
        devices.push(decode_device(&mut sec)?);
    }
    sec.finish()?;

    let mut sec = r.section(SEC_FLAGS)?;
    let n = sec.vec_len(8)?;
    let mut flags = Vec::with_capacity(n);
    for _ in 0..n {
        let name = sec.str()?;
        let set_at = sec.opt_u64()?.map(SimTime::from_nanos);
        let waiters_len = sec.vec_len(4)?;
        let mut waiters = SmallVec::with_capacity(waiters_len);
        for _ in 0..waiters_len {
            waiters.push(Pid::from_raw(sec.u32()?));
        }
        flags.push(FlagState {
            name,
            set_at,
            waiters,
        });
    }
    sec.finish()?;
    // The name interner is derived state (not serialized): rebuild it
    // by sorting the flag ids by name.
    let mut flag_lookup: Vec<FlagId> = (0..flags.len() as u32).map(FlagId::from_raw).collect();
    flag_lookup.sort_by(|a, b| flags[a.index()].name.cmp(&flags[b.index()].name));

    let mut sec = r.section(SEC_RCU)?;
    let rcu = decode_rcu(&mut sec)?;
    sec.finish()?;

    let mut sec = r.section(SEC_TRACE)?;
    let trace = decode_trace(&mut sec)?;
    sec.finish()?;

    let mut sec = r.section(SEC_SPAWNS)?;
    let n = sec.vec_len(1)?;
    let mut pending_spawns = Vec::with_capacity(n);
    for _ in 0..n {
        pending_spawns.push(match sec.u8()? {
            0 => None,
            1 => Some(decode_spec(&mut sec)?),
            _ => return Err(SnapshotError::Corrupt("spawn slot tag")),
        });
    }
    sec.finish()?;

    let mut sec = r.section(SEC_FAULTS)?;
    let faults = decode_faults(&mut sec)?;
    sec.finish()?;

    if r.pos != r.buf.len() {
        return Err(SnapshotError::TrailingBytes);
    }

    Ok(Machine {
        cfg,
        now,
        events,
        procs,
        cores,
        running,
        ready,
        ready_seq,
        devices,
        flags,
        flag_lookup,
        rcu,
        trace,
        pending_spawns,
        work,
        failed,
        sched_stats,
        faults,
        telemetry: None,
    })
}

// ---- codec: sections ---------------------------------------------------

fn encode_config(w: &mut Writer, cfg: &MachineConfig) {
    w.u64(cfg.cores as u64);
    w.f64(cfg.core_speed);
    w.u64(cfg.quantum.as_nanos());
    w.u64(cfg.rcu_params.base_grace_period.as_nanos());
    w.u64(cfg.rcu_params.per_reader_extension.as_nanos());
    w.u64(cfg.rcu_params.ctx_switch_cost.as_nanos());
    w.u64(cfg.rcu_params.boosted_overhead.as_nanos());
    w.u64(cfg.rcu_params.classic_overhead.as_nanos());
    w.u8(rcu_mode_tag(cfg.rcu_mode));
}

fn decode_config(r: &mut Reader<'_>) -> Result<MachineConfig, SnapshotError> {
    let cores = r.u64()? as usize;
    if cores == 0 {
        return Err(SnapshotError::Corrupt("zero cores"));
    }
    let core_speed = r.f64()?;
    if !core_speed.is_finite() || core_speed <= 0.0 {
        return Err(SnapshotError::Corrupt("non-positive core speed"));
    }
    let quantum = SimDuration::from_nanos(r.u64()?);
    if quantum.is_zero() {
        return Err(SnapshotError::Corrupt("zero quantum"));
    }
    let rcu_params = RcuParams {
        base_grace_period: SimDuration::from_nanos(r.u64()?),
        per_reader_extension: SimDuration::from_nanos(r.u64()?),
        ctx_switch_cost: SimDuration::from_nanos(r.u64()?),
        boosted_overhead: SimDuration::from_nanos(r.u64()?),
        classic_overhead: SimDuration::from_nanos(r.u64()?),
    };
    let rcu_mode = decode_rcu_mode(r.u8()?)?;
    Ok(MachineConfig {
        cores,
        core_speed,
        quantum,
        rcu_params,
        rcu_mode,
    })
}

fn encode_events(w: &mut Writer, events: &EventQueue) {
    // The queue's pop order is fully determined by its element multiset
    // (sequence numbers are unique), so the canonical sorted view
    // (`EventQueue::sorted_events`) restores identical behaviour
    // regardless of internal layout — the front-slot/heap split never
    // reaches the wire, keeping the v1 bytes stable across layouts.
    let queued = events.sorted_events();
    w.u64(events.next_seq());
    w.len(queued.len());
    for e in &queued {
        w.u64(e.time().as_nanos());
        w.u64(e.seq());
        encode_event_kind(w, e.kind);
    }
}

fn decode_events(r: &mut Reader<'_>) -> Result<EventQueue, SnapshotError> {
    let next_seq = r.u64()?;
    let n = r.vec_len(17)?;
    let mut queued = Vec::with_capacity(n);
    for _ in 0..n {
        let time = SimTime::from_nanos(r.u64()?);
        let seq = r.u64()?;
        let kind = decode_event_kind(r)?;
        queued.push(QueuedEvent::new(time, seq, kind));
    }
    Ok(EventQueue::from_parts(next_seq, queued))
}

fn encode_event_kind(w: &mut Writer, kind: EventKind) {
    match kind {
        EventKind::SliceDone { pid, core } => {
            w.u8(0);
            w.u32(pid.as_raw());
            w.u32(core.as_raw());
        }
        EventKind::ReadHoldDone { pid, core } => {
            w.u8(1);
            w.u32(pid.as_raw());
            w.u32(core.as_raw());
        }
        EventKind::IoDone { device } => {
            w.u8(2);
            w.u32(device.as_raw());
        }
        EventKind::RcuGraceDone => w.u8(3),
        EventKind::WakeUp { pid } => {
            w.u8(4);
            w.u32(pid.as_raw());
        }
        EventKind::ExternalSpawn { spawn_slot } => {
            w.u8(5);
            w.u32(spawn_slot);
        }
        EventKind::FlagWaitTimeout { pid, seq } => {
            w.u8(6);
            w.u32(pid.as_raw());
            w.u64(seq);
        }
    }
}

fn decode_event_kind(r: &mut Reader<'_>) -> Result<EventKind, SnapshotError> {
    Ok(match r.u8()? {
        0 => EventKind::SliceDone {
            pid: Pid::from_raw(r.u32()?),
            core: CoreId::from_raw(r.u32()?),
        },
        1 => EventKind::ReadHoldDone {
            pid: Pid::from_raw(r.u32()?),
            core: CoreId::from_raw(r.u32()?),
        },
        2 => EventKind::IoDone {
            device: DeviceId::from_raw(r.u32()?),
        },
        3 => EventKind::RcuGraceDone,
        4 => EventKind::WakeUp {
            pid: Pid::from_raw(r.u32()?),
        },
        5 => EventKind::ExternalSpawn {
            spawn_slot: r.u32()?,
        },
        6 => EventKind::FlagWaitTimeout {
            pid: Pid::from_raw(r.u32()?),
            seq: r.u64()?,
        },
        _ => return Err(SnapshotError::Corrupt("event kind tag")),
    })
}

fn encode_process(w: &mut Writer, p: &Process) {
    w.u32(p.pid.as_raw());
    w.str(&p.name);
    w.i8(p.nice);
    w.u8(io_priority_tag(p.io_priority));
    w.len(p.ops.len());
    for op in &p.ops {
        encode_op(w, op);
    }
    w.u64(p.compute_left.as_nanos());
    encode_proc_state(w, p.state);
    w.u64(p.spawned_at.as_nanos());
    w.opt_u64(p.finished_at.map(SimTime::as_nanos));
    w.u64(p.ready_seq);
    w.bool(p.first_dispatched);
    w.u64(p.cpu_time.as_nanos());
    w.u64(p.timed_wait_seq);
}

fn decode_process(r: &mut Reader<'_>) -> Result<Process, SnapshotError> {
    let pid = Pid::from_raw(r.u32()?);
    let name = r.str()?;
    let nice = r.i8()?;
    let io_priority = decode_io_priority(r.u8()?)?;
    let n = r.vec_len(1)?;
    let mut ops = std::collections::VecDeque::with_capacity(n);
    for _ in 0..n {
        ops.push_back(decode_op(r)?);
    }
    Ok(Process {
        pid,
        name,
        nice,
        io_priority,
        ops,
        compute_left: SimDuration::from_nanos(r.u64()?),
        state: decode_proc_state(r)?,
        spawned_at: SimTime::from_nanos(r.u64()?),
        finished_at: r.opt_u64()?.map(SimTime::from_nanos),
        ready_seq: r.u64()?,
        first_dispatched: r.bool()?,
        cpu_time: SimDuration::from_nanos(r.u64()?),
        timed_wait_seq: r.u64()?,
    })
}

fn encode_proc_state(w: &mut Writer, state: ProcState) {
    match state {
        ProcState::Ready => w.u8(0),
        ProcState::Running => w.u8(1),
        ProcState::Blocked(reason) => {
            w.u8(2);
            match reason {
                BlockReason::Io => w.u8(0),
                BlockReason::Sleep => w.u8(1),
                BlockReason::RcuBlocked => w.u8(2),
                BlockReason::Flag(flag) => {
                    w.u8(3);
                    w.u32(flag.as_raw());
                }
            }
        }
        ProcState::Done => w.u8(3),
    }
}

fn decode_proc_state(r: &mut Reader<'_>) -> Result<ProcState, SnapshotError> {
    Ok(match r.u8()? {
        0 => ProcState::Ready,
        1 => ProcState::Running,
        2 => ProcState::Blocked(match r.u8()? {
            0 => BlockReason::Io,
            1 => BlockReason::Sleep,
            2 => BlockReason::RcuBlocked,
            3 => BlockReason::Flag(FlagId::from_raw(r.u32()?)),
            _ => return Err(SnapshotError::Corrupt("block reason tag")),
        }),
        3 => ProcState::Done,
        _ => return Err(SnapshotError::Corrupt("process state tag")),
    })
}

fn encode_op(w: &mut Writer, op: &Op) {
    match op {
        Op::Compute(d) => {
            w.u8(0);
            w.u64(d.as_nanos());
        }
        Op::IoRead {
            device,
            bytes,
            pattern,
        } => {
            w.u8(1);
            w.u32(device.as_raw());
            w.u64(*bytes);
            w.u8(pattern_tag(*pattern));
        }
        Op::Sleep(d) => {
            w.u8(2);
            w.u64(d.as_nanos());
        }
        Op::RcuSync => w.u8(3),
        Op::RcuReadHold(d) => {
            w.u8(4);
            w.u64(d.as_nanos());
        }
        Op::WaitFlag(flag) => {
            w.u8(5);
            w.u32(flag.as_raw());
        }
        Op::TimedWaitFlag { flag, timeout } => {
            w.u8(6);
            w.u32(flag.as_raw());
            w.u64(timeout.as_nanos());
        }
        Op::PollFlag {
            flag,
            interval,
            poll_cost,
        } => {
            w.u8(7);
            w.u32(flag.as_raw());
            w.u64(interval.as_nanos());
            w.u64(poll_cost.as_nanos());
        }
        Op::AssertFlag(flag) => {
            w.u8(8);
            w.u32(flag.as_raw());
        }
        Op::CondSkip { flag, skip_ops } => {
            w.u8(9);
            w.u32(flag.as_raw());
            w.u32(*skip_ops);
        }
        Op::SetFlag(flag) => {
            w.u8(10);
            w.u32(flag.as_raw());
        }
        Op::Spawn(spec) => {
            w.u8(11);
            encode_spec(w, spec);
        }
        Op::Yield => w.u8(12),
        Op::SetRcuMode(mode) => {
            w.u8(13);
            w.u8(rcu_mode_tag(*mode));
        }
    }
}

fn decode_op(r: &mut Reader<'_>) -> Result<Op, SnapshotError> {
    Ok(match r.u8()? {
        0 => Op::Compute(SimDuration::from_nanos(r.u64()?)),
        1 => Op::IoRead {
            device: DeviceId::from_raw(r.u32()?),
            bytes: r.u64()?,
            pattern: decode_pattern(r.u8()?)?,
        },
        2 => Op::Sleep(SimDuration::from_nanos(r.u64()?)),
        3 => Op::RcuSync,
        4 => Op::RcuReadHold(SimDuration::from_nanos(r.u64()?)),
        5 => Op::WaitFlag(FlagId::from_raw(r.u32()?)),
        6 => Op::TimedWaitFlag {
            flag: FlagId::from_raw(r.u32()?),
            timeout: SimDuration::from_nanos(r.u64()?),
        },
        7 => Op::PollFlag {
            flag: FlagId::from_raw(r.u32()?),
            interval: SimDuration::from_nanos(r.u64()?),
            poll_cost: SimDuration::from_nanos(r.u64()?),
        },
        8 => Op::AssertFlag(FlagId::from_raw(r.u32()?)),
        9 => Op::CondSkip {
            flag: FlagId::from_raw(r.u32()?),
            skip_ops: r.u32()?,
        },
        10 => Op::SetFlag(FlagId::from_raw(r.u32()?)),
        11 => Op::Spawn(decode_spec(r)?),
        12 => Op::Yield,
        13 => Op::SetRcuMode(decode_rcu_mode(r.u8()?)?),
        _ => return Err(SnapshotError::Corrupt("op tag")),
    })
}

fn encode_spec(w: &mut Writer, spec: &ProcessSpec) {
    w.str(&spec.name);
    w.i8(spec.nice);
    w.u8(io_priority_tag(spec.io_priority));
    w.len(spec.ops.len());
    for op in &spec.ops {
        encode_op(w, op);
    }
}

fn decode_spec(r: &mut Reader<'_>) -> Result<ProcessSpec, SnapshotError> {
    let name = r.str()?;
    let nice = r.i8()?;
    let io_priority = decode_io_priority(r.u8()?)?;
    let n = r.vec_len(1)?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(decode_op(r)?);
    }
    Ok(ProcessSpec {
        name,
        nice,
        io_priority,
        ops,
    })
}

#[allow(clippy::type_complexity)]
fn decode_sched(
    r: &mut Reader<'_>,
    cores_cfg: usize,
    n_procs: usize,
) -> Result<
    (
        Vec<Option<Pid>>,
        Vec<Option<Running>>,
        ReadyQueue,
        u64,
        Vec<Pid>,
        Vec<Pid>,
        crate::machine::SchedStats,
    ),
    SnapshotError,
> {
    let n = r.vec_len(1)?;
    if n != cores_cfg {
        return Err(SnapshotError::Corrupt("core table size"));
    }
    let mut cores = Vec::with_capacity(n);
    for _ in 0..n {
        cores.push(r.opt_u32()?.map(Pid::from_raw));
    }
    let n = r.vec_len(16)?;
    // The on-disk form stays the sparse pid-sorted triple list; the
    // in-memory slab is rebuilt here. Pids are bounds-checked against
    // the decoded process table so corrupt inputs error, never panic.
    let mut running: Vec<Option<Running>> = vec![None; n_procs];
    for _ in 0..n {
        let pid = Pid::from_raw(r.u32()?);
        let core = CoreId::from_raw(r.u32()?);
        let since = SimTime::from_nanos(r.u64()?);
        let slot = running
            .get_mut(pid.index())
            .ok_or(SnapshotError::Corrupt("running pid out of range"))?;
        *slot = Some(Running { core, since });
    }
    let n = r.vec_len(13)?;
    let mut entries: Vec<(i8, u64, u32)> = Vec::with_capacity(n);
    for _ in 0..n {
        let nice = r.i8()?;
        let seq = r.u64()?;
        let raw = r.u32()?;
        entries.push((nice, seq, raw));
    }
    // v1 stores the queue canonically sorted; sort defensively so a
    // hand-edited snapshot still yields a well-ordered queue.
    entries.sort_unstable();
    let mut ready = ReadyQueue::default();
    for (nice, seq, raw) in entries {
        ready.push(nice, seq, raw);
    }
    let ready_seq = r.u64()?;
    let n = r.vec_len(4)?;
    let mut work = Vec::with_capacity(n);
    for _ in 0..n {
        work.push(Pid::from_raw(r.u32()?));
    }
    let n = r.vec_len(4)?;
    let mut failed = Vec::with_capacity(n);
    for _ in 0..n {
        failed.push(Pid::from_raw(r.u32()?));
    }
    let sched_stats = crate::machine::SchedStats {
        dispatches: r.u64()?,
        preemptions: r.u64()?,
        io_requests: r.u64()?,
        flag_wakeups: r.u64()?,
    };
    Ok((cores, running, ready, ready_seq, work, failed, sched_stats))
}

fn encode_sched(w: &mut Writer, machine: &Machine) {
    w.len(machine.cores.len());
    for slot in &machine.cores {
        w.opt_u32(slot.map(Pid::as_raw));
    }
    // The running slab is indexed by pid, so walking it in order yields
    // the same pid-sorted sparse triple list v1 has always stored.
    let running: Vec<(Pid, Running)> = machine
        .running
        .iter()
        .enumerate()
        .filter_map(|(i, slot)| slot.map(|run| (Pid::from_raw(i as u32), run)))
        .collect();
    w.len(running.len());
    for (pid, run) in running {
        w.u32(pid.as_raw());
        w.u32(run.core.as_raw());
        w.u64(run.since.as_nanos());
    }
    // Same canonical-sorted treatment as the event queue: the bucketed
    // run queue iterates in `(nice, seq)` order, which is v1's sort.
    w.len(machine.ready.len());
    for (nice, seq, raw) in machine.ready.iter_sorted() {
        w.i8(nice);
        w.u64(seq);
        w.u32(raw);
    }
    w.u64(machine.ready_seq);
    w.len(machine.work.len());
    for &pid in &machine.work {
        w.u32(pid.as_raw());
    }
    w.len(machine.failed.len());
    for &pid in &machine.failed {
        w.u32(pid.as_raw());
    }
    w.u64(machine.sched_stats.dispatches);
    w.u64(machine.sched_stats.preemptions);
    w.u64(machine.sched_stats.io_requests);
    w.u64(machine.sched_stats.flag_wakeups);
}

fn encode_device(w: &mut Writer, d: &Device) {
    w.u32(d.id.as_raw());
    w.str(&d.name);
    w.u64(d.profile.seq_read_bps);
    w.u64(d.profile.rand_read_bps);
    w.u64(d.profile.request_latency.as_nanos());
    w.len(d.queue.len());
    for (&(priority, seq), req) in &d.queue {
        w.u8(io_priority_tag(priority));
        w.u64(seq);
        encode_io_request(w, req);
    }
    w.u64(d.next_seq);
    match &d.in_flight {
        Some(req) => {
            w.u8(1);
            encode_io_request(w, req);
        }
        None => w.u8(0),
    }
    w.opt_u64(d.busy_until.map(SimTime::as_nanos));
    w.u64(d.bytes_read);
    w.u64(d.total_queue_delay.as_nanos());
}

fn decode_device(r: &mut Reader<'_>) -> Result<Device, SnapshotError> {
    let id = DeviceId::from_raw(r.u32()?);
    let name = r.str()?;
    let profile = DeviceProfile {
        seq_read_bps: r.u64()?,
        rand_read_bps: r.u64()?,
        request_latency: SimDuration::from_nanos(r.u64()?),
    };
    let n = r.vec_len(9)?;
    let mut queue = std::collections::BTreeMap::new();
    for _ in 0..n {
        let priority = decode_io_priority(r.u8()?)?;
        let seq = r.u64()?;
        let req = decode_io_request(r)?;
        queue.insert((priority, seq), req);
    }
    let next_seq = r.u64()?;
    let in_flight = match r.u8()? {
        0 => None,
        1 => Some(decode_io_request(r)?),
        _ => return Err(SnapshotError::Corrupt("in-flight tag")),
    };
    let busy_until = r.opt_u64()?.map(SimTime::from_nanos);
    let bytes_read = r.u64()?;
    let total_queue_delay = SimDuration::from_nanos(r.u64()?);
    Ok(Device {
        id,
        name,
        profile,
        queue,
        next_seq,
        in_flight,
        busy_until,
        bytes_read,
        total_queue_delay,
    })
}

fn encode_io_request(w: &mut Writer, req: &IoRequest) {
    w.u32(req.pid.as_raw());
    w.u64(req.bytes);
    w.u8(pattern_tag(req.pattern));
    w.u8(io_priority_tag(req.priority));
    w.u64(req.submitted_at.as_nanos());
}

fn decode_io_request(r: &mut Reader<'_>) -> Result<IoRequest, SnapshotError> {
    Ok(IoRequest {
        pid: Pid::from_raw(r.u32()?),
        bytes: r.u64()?,
        pattern: decode_pattern(r.u8()?)?,
        priority: decode_io_priority(r.u8()?)?,
        submitted_at: SimTime::from_nanos(r.u64()?),
    })
}

fn encode_rcu(w: &mut Writer, rcu: &RcuEngine) {
    w.u8(rcu_mode_tag(rcu.mode));
    w.u64(rcu.params.base_grace_period.as_nanos());
    w.u64(rcu.params.per_reader_extension.as_nanos());
    w.u64(rcu.params.ctx_switch_cost.as_nanos());
    w.u64(rcu.params.boosted_overhead.as_nanos());
    w.u64(rcu.params.classic_overhead.as_nanos());
    for batch in [&rcu.current, &rcu.next] {
        w.len(batch.len());
        for waiter in batch {
            w.u32(waiter.pid.as_raw());
            w.u8(match waiter.kind {
                WaitKind::Spinning => 0,
                WaitKind::SleepingClassic => 1,
                WaitKind::SleepingBoosted => 2,
            });
            w.u64(waiter.submitted_at.as_nanos());
        }
    }
    w.opt_u64(rcu.grace_end.map(SimTime::as_nanos));
    w.u32(rcu.active_readers);
    w.u64(rcu.stats.syncs_completed);
    w.u64(rcu.stats.grace_periods);
    w.u64(rcu.stats.total_wait.as_nanos());
    w.u64(rcu.stats.max_wait.as_nanos());
    w.u64(rcu.stats.classic_syncs);
    w.u64(rcu.stats.boosted_syncs);
    w.u64(rcu.stats.spinning_syncs);
    w.u64(rcu.stats.peak_pending as u64);
}

fn decode_rcu(r: &mut Reader<'_>) -> Result<RcuEngine, SnapshotError> {
    let mode = decode_rcu_mode(r.u8()?)?;
    let params = RcuParams {
        base_grace_period: SimDuration::from_nanos(r.u64()?),
        per_reader_extension: SimDuration::from_nanos(r.u64()?),
        ctx_switch_cost: SimDuration::from_nanos(r.u64()?),
        boosted_overhead: SimDuration::from_nanos(r.u64()?),
        classic_overhead: SimDuration::from_nanos(r.u64()?),
    };
    let mut batches = [Vec::new(), Vec::new()];
    for batch in &mut batches {
        let n = r.vec_len(13)?;
        batch.reserve(n);
        for _ in 0..n {
            let pid = Pid::from_raw(r.u32()?);
            let kind = match r.u8()? {
                0 => WaitKind::Spinning,
                1 => WaitKind::SleepingClassic,
                2 => WaitKind::SleepingBoosted,
                _ => return Err(SnapshotError::Corrupt("wait kind tag")),
            };
            let submitted_at = SimTime::from_nanos(r.u64()?);
            batch.push(Waiter {
                pid,
                kind,
                submitted_at,
            });
        }
    }
    let [current, next] = batches;
    let grace_end = r.opt_u64()?.map(SimTime::from_nanos);
    let active_readers = r.u32()?;
    let stats = RcuStats {
        syncs_completed: r.u64()?,
        grace_periods: r.u64()?,
        total_wait: SimDuration::from_nanos(r.u64()?),
        max_wait: SimDuration::from_nanos(r.u64()?),
        classic_syncs: r.u64()?,
        boosted_syncs: r.u64()?,
        spinning_syncs: r.u64()?,
        peak_pending: r.u64()? as usize,
    };
    Ok(RcuEngine {
        mode,
        params,
        current,
        next,
        grace_end,
        active_readers,
        stats,
    })
}

fn encode_trace(w: &mut Writer, trace: &Trace) {
    w.bool(trace.record_spans);
    w.len(trace.events.len());
    for e in &trace.events {
        w.u64(e.time.as_nanos());
        w.u32(e.pid.as_raw());
        match &e.kind {
            TraceKind::Spawned { name } => {
                w.u8(0);
                w.str(name);
            }
            TraceKind::FirstRun => w.u8(1),
            TraceKind::Finished => w.u8(2),
            TraceKind::Failed { flag } => {
                w.u8(3);
                w.u32(flag.as_raw());
            }
            TraceKind::FlagSet { flag } => {
                w.u8(4);
                w.u32(flag.as_raw());
            }
            TraceKind::RcuSyncDone { waited } => {
                w.u8(5);
                w.u64(waited.as_nanos());
            }
            TraceKind::FaultInjected { description } => {
                w.u8(6);
                w.str(description);
            }
        }
    }
    w.len(trace.spans.len());
    for s in &trace.spans {
        w.u32(s.core.as_raw());
        w.u32(s.pid.as_raw());
        w.u64(s.start.as_nanos());
        w.u64(s.end.as_nanos());
    }
}

fn decode_trace(r: &mut Reader<'_>) -> Result<Trace, SnapshotError> {
    let record_spans = r.bool()?;
    let n = r.vec_len(13)?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let time = SimTime::from_nanos(r.u64()?);
        let pid = Pid::from_raw(r.u32()?);
        let kind = match r.u8()? {
            0 => TraceKind::Spawned { name: r.str()? },
            1 => TraceKind::FirstRun,
            2 => TraceKind::Finished,
            3 => TraceKind::Failed {
                flag: FlagId::from_raw(r.u32()?),
            },
            4 => TraceKind::FlagSet {
                flag: FlagId::from_raw(r.u32()?),
            },
            5 => TraceKind::RcuSyncDone {
                waited: SimDuration::from_nanos(r.u64()?),
            },
            6 => TraceKind::FaultInjected {
                description: r.str()?,
            },
            _ => return Err(SnapshotError::Corrupt("trace kind tag")),
        };
        events.push(TraceEvent { time, pid, kind });
    }
    let n = r.vec_len(24)?;
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        spans.push(CoreSpan {
            core: CoreId::from_raw(r.u32()?),
            pid: Pid::from_raw(r.u32()?),
            start: SimTime::from_nanos(r.u64()?),
            end: SimTime::from_nanos(r.u64()?),
        });
    }
    Ok(Trace {
        events,
        spans,
        record_spans,
    })
}

fn encode_faults(w: &mut Writer, faults: Option<&FaultState>) {
    let Some(state) = faults else {
        w.u8(0);
        return;
    };
    w.u8(1);
    w.len(state.proc_arms.len());
    for arm in &state.proc_arms {
        w.str(&arm.process);
        w.u32(arm.hits_left);
        w.bool(arm.hang);
    }
    w.len(state.io_arms.len());
    for arm in &state.io_arms {
        w.u32(arm.device.as_raw());
        w.u32(arm.failures_left);
        w.u64(arm.retry_delay.as_nanos());
    }
    w.opt_u32(state.hang_flag.map(FlagId::as_raw));
}

fn decode_faults(r: &mut Reader<'_>) -> Result<Option<FaultState>, SnapshotError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let n = r.vec_len(9)?;
            let mut proc_arms = Vec::with_capacity(n);
            for _ in 0..n {
                proc_arms.push(ProcFaultArm {
                    process: r.str()?,
                    hits_left: r.u32()?,
                    hang: r.bool()?,
                });
            }
            let n = r.vec_len(16)?;
            let mut io_arms = Vec::with_capacity(n);
            for _ in 0..n {
                io_arms.push(IoFaultArm {
                    device: DeviceId::from_raw(r.u32()?),
                    failures_left: r.u32()?,
                    retry_delay: SimDuration::from_nanos(r.u64()?),
                });
            }
            let hang_flag = r.opt_u32()?.map(FlagId::from_raw);
            Ok(Some(FaultState {
                proc_arms,
                io_arms,
                hang_flag,
            }))
        }
        _ => Err(SnapshotError::Corrupt("fault state tag")),
    }
}

fn rcu_mode_tag(mode: RcuMode) -> u8 {
    match mode {
        RcuMode::ClassicSpin => 0,
        RcuMode::Boosted => 1,
    }
}

fn decode_rcu_mode(tag: u8) -> Result<RcuMode, SnapshotError> {
    match tag {
        0 => Ok(RcuMode::ClassicSpin),
        1 => Ok(RcuMode::Boosted),
        _ => Err(SnapshotError::Corrupt("rcu mode tag")),
    }
}

fn io_priority_tag(priority: IoPriority) -> u8 {
    match priority {
        IoPriority::Realtime => 0,
        IoPriority::BestEffort => 1,
        IoPriority::Idle => 2,
    }
}

fn decode_io_priority(tag: u8) -> Result<IoPriority, SnapshotError> {
    match tag {
        0 => Ok(IoPriority::Realtime),
        1 => Ok(IoPriority::BestEffort),
        2 => Ok(IoPriority::Idle),
        _ => Err(SnapshotError::Corrupt("io priority tag")),
    }
}

fn pattern_tag(pattern: AccessPattern) -> u8 {
    match pattern {
        AccessPattern::Sequential => 0,
        AccessPattern::Random => 1,
    }
}

fn decode_pattern(tag: u8) -> Result<AccessPattern, SnapshotError> {
    match tag {
        0 => Ok(AccessPattern::Sequential),
        1 => Ok(AccessPattern::Random),
        _ => Err(SnapshotError::Corrupt("access pattern tag")),
    }
}

// ---- primitives --------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn len(&mut self, n: usize) {
        self.u64(n as u64);
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
            None => self.u8(0),
        }
    }

    fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.u32(v);
            }
            None => self.u8(0),
        }
    }

    fn section(&mut self, id: u32, body: Writer) {
        self.u32(id);
        self.u64(body.buf.len() as u64);
        self.buf.extend_from_slice(&body.buf);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn i8(&mut self) -> Result<i8, SnapshotError> {
        Ok(self.u8()? as i8)
    }

    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bool tag")),
        }
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a vector length, bounding it by the bytes remaining (each
    /// element needs at least `elem_min` bytes) so corrupt lengths fail
    /// instead of triggering huge allocations.
    fn vec_len(&mut self, elem_min: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.saturating_mul(elem_min.max(1) as u64) > remaining {
            return Err(SnapshotError::Truncated);
        }
        Ok(n as usize)
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Corrupt("non-UTF-8 string"))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(SnapshotError::Corrupt("option tag")),
        }
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            _ => Err(SnapshotError::Corrupt("option tag")),
        }
    }

    fn section(&mut self, id: u32) -> Result<Reader<'a>, SnapshotError> {
        let found = self.u32()?;
        if found != id {
            return Err(SnapshotError::Corrupt("section order"));
        }
        let len = self.u64()? as usize;
        let body = self.take(len)?;
        Ok(Reader { buf: body, pos: 0 })
    }

    fn finish(&self) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(SnapshotError::Corrupt("section trailing bytes"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::OpsBuilder;

    fn busy_machine() -> Machine {
        let mut m = Machine::new(MachineConfig {
            cores: 2,
            ..MachineConfig::default()
        });
        let dev = m.add_device("emmc", DeviceProfile::tv_emmc());
        let ready = m.flag("db-ready");
        let late = m.flag("late");
        m.spawn(ProcessSpec::new(
            "database",
            OpsBuilder::new()
                .compute_ms(5)
                .read_rand(dev, 4 * crate::io::MIB)
                .rcu_syncs(2, SimDuration::from_micros(50))
                .set_flag(ready)
                .build(),
        ));
        m.spawn(ProcessSpec::new(
            "webapp",
            OpsBuilder::new()
                .wait_flag(ready)
                .compute_ms(3)
                .timed_wait_flag(late, SimDuration::from_millis(4))
                .compute_ms(1)
                .build(),
        ));
        m.spawn(
            ProcessSpec::new(
                "logger",
                OpsBuilder::new()
                    .sleep(SimDuration::from_millis(2))
                    .rcu_read(SimDuration::from_millis(1))
                    .spawn(ProcessSpec::new(
                        "logger-child",
                        OpsBuilder::new().compute_ms(1).build(),
                    ))
                    .build(),
            )
            .with_nice(5),
        );
        m
    }

    fn assert_same_outcome(mut a: Machine, mut b: Machine) {
        let oa = a.run();
        let ob = b.run();
        assert_eq!(oa.end_time, ob.end_time);
        assert_eq!(oa.blocked, ob.blocked);
        assert_eq!(oa.failed, ob.failed);
        assert_eq!(a.trace().events(), b.trace().events());
        assert_eq!(a.trace().spans(), b.trace().spans());
        assert_eq!(a.sched_stats(), b.sched_stats());
        assert_eq!(a.rcu_stats().syncs_completed, b.rcu_stats().syncs_completed);
        assert_eq!(a.rcu_stats().grace_periods, b.rcu_stats().grace_periods);
    }

    #[test]
    fn round_trip_of_idle_machine() {
        let m = Machine::new(MachineConfig::default());
        let bytes = save(&m).expect("snapshot");
        let restored = restore(&bytes).expect("restore");
        assert_eq!(restored.now(), m.now());
        assert_eq!(restored.config().cores, m.config().cores);
        // Saving the restored machine reproduces the same bytes.
        assert_eq!(save(&restored).expect("re-snapshot"), bytes);
    }

    #[test]
    fn mid_run_round_trip_replays_identically() {
        // Run the reference uninterrupted; cut a copy at several points,
        // snapshot, restore, and finish — the tails must be identical.
        for cut_us in [0u64, 1_500, 5_000, 6_000, 9_000] {
            let reference = busy_machine();
            let mut cut = busy_machine();
            cut.run_until(SimTime::from_nanos(cut_us * 1_000));
            let restored = restore(&save(&cut).expect("snapshot")).expect("restore");
            assert_same_outcome(reference, restored);
        }
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let mut a = busy_machine();
        let mut b = busy_machine();
        a.run_until(SimTime::from_nanos(5_000_000));
        b.run_until(SimTime::from_nanos(5_000_000));
        assert_eq!(save(&a).expect("a"), save(&b).expect("b"));
    }

    #[test]
    fn telemetry_is_rejected() {
        let mut m = Machine::new(MachineConfig::default());
        m.enable_telemetry();
        assert_eq!(save(&m), Err(SnapshotError::TelemetryEnabled));
    }

    #[test]
    fn header_round_trips() {
        let m = Machine::new(MachineConfig::default());
        let bytes = save(&m).expect("snapshot");
        let header = read_header(&bytes).expect("header");
        assert_eq!(header.version, FORMAT_VERSION);
        assert_eq!(
            header.calibration,
            (CALIBRATION_PIN_CONVENTIONAL_US, CALIBRATION_PIN_BB_US)
        );
        assert_eq!(header.config_hash, config_hash(m.config()));
        // v2 layout: header | payload | u64 checksum.
        assert_eq!(
            header.payload_len as usize,
            bytes.len() - HEADER_LEN - CHECKSUM_LEN
        );
    }

    #[test]
    fn tampered_inputs_are_rejected_without_panic() {
        let m = Machine::new(MachineConfig::default());
        let good = save(&m).expect("snapshot");

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(restore(&bad_magic).err(), Some(SnapshotError::BadMagic));

        let mut bad_version = good.clone();
        bad_version[8] = 99;
        assert!(matches!(
            restore(&bad_version),
            Err(SnapshotError::VersionMismatch { found: 99, .. })
        ));

        let mut bad_hash = good.clone();
        bad_hash[12] ^= 0xff;
        assert!(matches!(
            restore(&bad_hash),
            Err(SnapshotError::ConfigHashMismatch { .. })
        ));

        let mut bad_pin = good.clone();
        bad_pin[20] ^= 0xff;
        assert!(matches!(
            restore(&bad_pin),
            Err(SnapshotError::CalibrationMismatch { .. })
        ));

        assert_eq!(restore(&good[..10]).err(), Some(SnapshotError::Truncated));
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(restore(&trailing).err(), Some(SnapshotError::TrailingBytes));

        // Any payload bit flip is caught by the v2 checksum before the
        // decoder runs — structured, never an arbitrary decode error.
        for at in [HEADER_LEN, HEADER_LEN + 33, good.len() - CHECKSUM_LEN - 1] {
            let mut flipped = good.clone();
            flipped[at] ^= 0x10;
            assert!(matches!(
                restore(&flipped),
                Err(SnapshotError::ChecksumMismatch { .. })
            ));
        }
        // A damaged footer is also a checksum mismatch.
        let mut bad_footer = good.clone();
        *bad_footer.last_mut().unwrap() ^= 0xff;
        assert!(matches!(
            restore(&bad_footer),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        // Truncating anywhere in the payload must never panic.
        for cut in (HEADER_LEN..good.len()).step_by(97) {
            let mut short = good[..cut].to_vec();
            // Fix the payload length so the cut reaches the decoder.
            let plen = cut.saturating_sub(HEADER_LEN + CHECKSUM_LEN) as u64;
            short[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&plen.to_le_bytes());
            assert!(restore(&short).is_err());
        }
    }

    /// The checksum is additive: a v1 image (no footer) still decodes.
    #[test]
    fn v1_images_without_a_footer_still_restore() {
        let mut m = busy_machine();
        m.run_until(SimTime::from_nanos(2_000_000));
        let v2 = save(&m).expect("snapshot");
        // Rewrite the header version to 1 and strip the footer — the
        // exact bytes a v1 build would have written.
        let mut v1 = v2[..v2.len() - CHECKSUM_LEN].to_vec();
        v1[8..12].copy_from_slice(&1u32.to_le_bytes());
        let restored = restore(&v1).expect("v1 restore");
        let reference = restore(&v2).expect("v2 restore");
        assert_same_outcome(reference, restored);

        // Versions outside [min, current] are still rejected.
        let mut future = v2.clone();
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            restore(&future),
            Err(SnapshotError::VersionMismatch { found: 99, .. })
        ));
        let mut zero = v2;
        zero[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            restore(&zero),
            Err(SnapshotError::VersionMismatch { found: 0, .. })
        ));
    }

    #[test]
    fn fault_cursor_survives_the_round_trip() {
        use crate::fault::{Fault, FaultPlan};
        let build = || {
            let mut m = busy_machine();
            m.install_fault_plan(&FaultPlan {
                faults: vec![Fault::CrashAtReadiness {
                    process: "database".into(),
                    hits: 1,
                }],
                seed: 7,
            });
            m
        };
        let mut reference = build();
        let mut cut = build();
        cut.run_until(SimTime::from_nanos(2_000_000));
        let restored = restore(&save(&cut).expect("snapshot")).expect("restore");
        drop(cut);
        let oa = reference.run();
        let mut restored = restored;
        let ob = restored.run();
        assert_eq!(oa.failed, ob.failed);
        assert_eq!(oa.end_time, ob.end_time);
        assert_eq!(reference.trace().events(), restored.trace().events());
    }

    #[test]
    fn config_hash_is_sensitive_to_every_field() {
        let base = MachineConfig::default();
        let h = config_hash(&base);
        let mut cores = base;
        cores.cores = 8;
        assert_ne!(config_hash(&cores), h);
        let mut speed = base;
        speed.core_speed = 2.0;
        assert_ne!(config_hash(&speed), h);
        let mut mode = base;
        mode.rcu_mode = RcuMode::Boosted;
        assert_ne!(config_hash(&mode), h);
    }
}
