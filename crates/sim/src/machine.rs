//! The simulated machine: cores, scheduler, devices, flags, RCU, and the
//! discrete-event run loop.
//!
//! # Execution model
//!
//! Processes are op lists ([`crate::process::Op`]). Ops that need a CPU
//! core (`Compute`, `RcuReadHold`, `RcuSync`, `PollFlag` checks) are
//! dispatched by a global priority scheduler (lowest nice first, FIFO
//! within a level, quantum-sliced preemption for `Compute`). Ops that
//! wait (`IoRead`, `Sleep`, `WaitFlag`, boosted `RcuSync`) park the
//! process off-CPU. Zero-cost ops (`SetFlag`, `Spawn`, `AssertFlag`,
//! `Yield`) are folded at advance time.
//!
//! The two RCU waiter modes differ exactly as in the paper: a classic
//! (Algorithm 1) waiter *keeps its core busy* from dispatch until its
//! grace period ends; a boosted (Algorithm 2) waiter releases the core
//! and pays a context-switch cost when woken.
//!
//! Determinism: event ties break by scheduling order, the ready queue by
//! (nice, arrival sequence); two runs of the same scenario produce
//! identical traces.

use std::collections::VecDeque;

use smallvec::SmallVec;

use crate::event::{EventKind, EventQueue, EventQueueStats};
use crate::fault::{Fault, FaultPlan};
use crate::ids::{CoreId, DeviceId, FlagId, Pid};
use crate::io::{Device, DeviceProfile, IoRequest};
use crate::process::{BlockReason, Op, ProcState, Process, ProcessSpec};
use crate::rcu::{RcuEngine, RcuMode, RcuParams, RcuStats};
use crate::telemetry::{self, Telemetry};
use crate::time::{SimDuration, SimTime};
use crate::trace::{CoreSpan, Trace, TraceKind};

/// Static machine parameters.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Number of CPU cores.
    pub cores: usize,
    /// Core speed as a multiple of the reference CPU (1.0 = reference;
    /// `Compute` durations are divided by this).
    pub core_speed: f64,
    /// Scheduler timeslice for `Compute` ops.
    pub quantum: SimDuration,
    /// RCU engine cost parameters.
    pub rcu_params: RcuParams,
    /// Initial RCU waiter mode.
    pub rcu_mode: RcuMode,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cores: 4,
            core_speed: 1.0,
            quantum: SimDuration::from_millis(1),
            rcu_params: RcuParams::default(),
            rcu_mode: RcuMode::ClassicSpin,
        }
    }
}

/// Scheduler/substrate counters, for reports and regression tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Times a process was placed on a core.
    pub dispatches: u64,
    /// Quantum-boundary preemptions (compute requeued unfinished).
    pub preemptions: u64,
    /// Storage requests submitted.
    pub io_requests: u64,
    /// Processes woken by flag sets.
    pub flag_wakeups: u64,
}

/// Why `run` returned.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Simulated time when the run went quiescent.
    pub end_time: SimTime,
    /// Processes still blocked (e.g. waiting on a flag nobody sets).
    pub blocked: Vec<Pid>,
    /// Processes that aborted on a failed `AssertFlag`.
    pub failed: Vec<Pid>,
}

/// Pre-sized event-queue capacity: full TV boots keep well under this
/// many pending events, so the heap never reallocates mid-run.
const EVENT_QUEUE_CAPACITY: usize = 256;

/// Most flags have zero or one waiter (readiness flags are waited on by
/// the boot manager alone), so waiter lists live inline and the hot
/// path never allocates for them.
pub(crate) const FLAG_WAITERS_INLINE: usize = 4;

#[derive(Debug, Default)]
pub(crate) struct FlagState {
    pub(crate) name: String,
    pub(crate) set_at: Option<SimTime>,
    pub(crate) waiters: SmallVec<Pid, FLAG_WAITERS_INLINE>,
}

/// The run queue: one FIFO ring per distinct nice level, levels sorted
/// by nice. A boot uses only a handful of distinct nice values, so push
/// and pop are O(#levels) scans with no per-element sifting — much
/// cheaper than the binary heap this replaces. Because `ready_seq` is
/// globally monotonic, entries within a level arrive FIFO in seq order,
/// and draining levels lowest-nice-first reproduces the old heap's
/// `(nice, seq, pid)` order exactly.
#[derive(Debug, Default)]
pub(crate) struct ReadyQueue {
    levels: Vec<(i8, VecDeque<(u64, u32)>)>,
    len: usize,
}

impl ReadyQueue {
    pub(crate) fn push(&mut self, nice: i8, seq: u64, raw: u32) {
        let idx = match self.levels.binary_search_by_key(&nice, |l| l.0) {
            Ok(i) => i,
            Err(i) => {
                self.levels.insert(i, (nice, VecDeque::new()));
                i
            }
        };
        self.levels[idx].1.push_back((seq, raw));
        self.len += 1;
    }

    /// Pops the pid of the `(nice, seq)`-minimal entry.
    pub(crate) fn pop(&mut self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        for (_, q) in &mut self.levels {
            if let Some((_, raw)) = q.pop_front() {
                self.len -= 1;
                return Some(raw);
            }
        }
        unreachable!("ready len out of sync with levels")
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the queue, keeping level rings allocated (recycling).
    pub(crate) fn clear(&mut self) {
        for (_, q) in &mut self.levels {
            q.clear();
        }
        self.len = 0;
    }

    /// Entries in canonical `(nice, seq, pid)` order (snapshot encode).
    pub(crate) fn iter_sorted(&self) -> impl Iterator<Item = (i8, u64, u32)> + '_ {
        self.levels
            .iter()
            .flat_map(|(n, q)| q.iter().map(move |&(s, r)| (*n, s, r)))
    }
}

/// Where a core-occupying span started, per running process.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Running {
    pub(crate) core: CoreId,
    pub(crate) since: SimTime,
}

/// An armed crash/hang fault against a process name.
#[derive(Debug)]
pub(crate) struct ProcFaultArm {
    pub(crate) process: String,
    pub(crate) hits_left: u32,
    pub(crate) hang: bool,
}

/// An armed transient-I/O fault against a device.
#[derive(Debug)]
pub(crate) struct IoFaultArm {
    pub(crate) device: DeviceId,
    pub(crate) failures_left: u32,
    pub(crate) retry_delay: SimDuration,
}

/// Live fault-injection state built from an installed [`FaultPlan`].
/// Absent (`None` on the machine) unless a non-empty plan was installed,
/// so the fault-free path stays bit-identical.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    pub(crate) proc_arms: Vec<ProcFaultArm>,
    pub(crate) io_arms: Vec<IoFaultArm>,
    /// Flag nobody ever sets, parked on by hung processes (lazily made).
    pub(crate) hang_flag: Option<FlagId>,
}

/// The simulated machine.
#[derive(Debug)]
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) now: SimTime,
    pub(crate) events: EventQueue,
    pub(crate) procs: Vec<Process>,
    /// `Some(pid)` per busy core.
    pub(crate) cores: Vec<Option<Pid>>,
    /// Dispatch bookkeeping for busy processes: a dense slab indexed by
    /// pid (`running[pid] == Some(..)` iff the process holds a core),
    /// kept `procs.len()` long. No hashing on the dispatch path.
    pub(crate) running: Vec<Option<Running>>,
    pub(crate) ready: ReadyQueue,
    pub(crate) ready_seq: u64,
    pub(crate) devices: Vec<Device>,
    pub(crate) flags: Vec<FlagState>,
    /// String→flag interner: flag ids sorted by flag name, binary-
    /// searched on (re)interning. Names are interned once at build time;
    /// the simulation loop itself only ever touches `FlagId` indices.
    pub(crate) flag_lookup: Vec<FlagId>,
    pub(crate) rcu: RcuEngine,
    pub(crate) trace: Trace,
    pub(crate) pending_spawns: Vec<Option<ProcessSpec>>,
    pub(crate) work: Vec<Pid>,
    pub(crate) failed: Vec<Pid>,
    pub(crate) sched_stats: SchedStats,
    pub(crate) faults: Option<FaultState>,
    /// Metrics sink; absent unless telemetry was enabled, so the
    /// uninstrumented path stays bit-identical (same pattern as
    /// `faults`).
    pub(crate) telemetry: Option<Telemetry>,
}

impl Machine {
    /// Creates an idle machine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no cores, zero speed,
    /// zero quantum).
    pub fn new(cfg: MachineConfig) -> Self {
        Self::check_config(&cfg);
        Machine {
            cores: vec![None; cfg.cores],
            rcu: RcuEngine::new(cfg.rcu_mode, cfg.rcu_params),
            cfg,
            now: SimTime::ZERO,
            events: EventQueue::with_capacity(EVENT_QUEUE_CAPACITY),
            procs: Vec::new(),
            running: Vec::new(),
            ready: ReadyQueue::default(),
            ready_seq: 0,
            devices: Vec::new(),
            flags: Vec::new(),
            flag_lookup: Vec::new(),
            trace: Trace::new(),
            pending_spawns: Vec::new(),
            work: Vec::new(),
            failed: Vec::new(),
            sched_stats: SchedStats::default(),
            faults: None,
            telemetry: None,
        }
    }

    fn check_config(cfg: &MachineConfig) {
        assert!(cfg.cores > 0, "machine needs at least one core");
        assert!(
            cfg.core_speed.is_finite() && cfg.core_speed > 0.0,
            "core speed must be positive"
        );
        assert!(!cfg.quantum.is_zero(), "quantum must be nonzero");
    }

    /// Resets the machine to the pristine state [`Machine::new`]`(cfg)`
    /// would produce, but keeps the backing allocations of every arena
    /// (event heap, process table, running slab, ready queue, trace,
    /// work lists) so a recycled machine boots without reallocating.
    /// Observationally identical to a fresh machine: the recycling
    /// proptests pin trace-for-trace equality.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate, like [`Machine::new`].
    pub fn reset(&mut self, cfg: MachineConfig) {
        Self::check_config(&cfg);
        self.cores.clear();
        self.cores.resize(cfg.cores, None);
        self.rcu = RcuEngine::new(cfg.rcu_mode, cfg.rcu_params);
        self.cfg = cfg;
        self.now = SimTime::ZERO;
        self.events.reset();
        self.procs.clear();
        self.running.clear();
        self.ready.clear();
        self.ready_seq = 0;
        self.devices.clear();
        self.flags.clear();
        self.flag_lookup.clear();
        self.trace.reset();
        self.pending_spawns.clear();
        self.work.clear();
        self.failed.clear();
        self.sched_stats = SchedStats::default();
        self.faults = None;
        self.telemetry = None;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The collected trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Disables core-span recording (for very long runs).
    pub fn disable_span_recording(&mut self) {
        self.trace.record_spans = false;
    }

    /// RCU statistics so far.
    pub fn rcu_stats(&self) -> RcuStats {
        self.rcu.stats()
    }

    /// Scheduler counters so far.
    pub fn sched_stats(&self) -> SchedStats {
        self.sched_stats
    }

    /// Event-queue observability counters: total events scheduled and
    /// the peak pending depth (high-water mark). Host-side only — not
    /// simulated state and not part of snapshots.
    pub fn event_queue_stats(&self) -> EventQueueStats {
        self.events.stats()
    }

    /// Installs a telemetry sink. Subsequent execution records counters
    /// and histograms (RCU sync waits, run-queue depth, I/O latency)
    /// without perturbing the timeline; the instrumentation only reads
    /// state the scheduler already computes.
    pub fn enable_telemetry(&mut self) {
        if self.telemetry.is_none() {
            self.telemetry = Some(Telemetry::new());
        }
    }

    /// The telemetry sink, if enabled.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Switches the RCU waiter mode (the Booster Control knob).
    pub fn set_rcu_mode(&mut self, mode: RcuMode) {
        self.rcu.set_mode(mode);
    }

    /// Current RCU waiter mode.
    pub fn rcu_mode(&self) -> RcuMode {
        self.rcu.mode()
    }

    /// Adds a storage device and returns its id.
    pub fn add_device(&mut self, name: impl Into<String>, profile: DeviceProfile) -> DeviceId {
        let id = DeviceId::from_raw(self.devices.len() as u32);
        self.devices.push(Device::new(id, name, profile));
        id
    }

    /// Read-only access to a device (for stats).
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// Returns the flag with the given name, creating (interning) it if
    /// needed. Interning happens at machine-build time; after that the
    /// returned `FlagId` is a plain index and the name is never hashed
    /// or compared again.
    pub fn flag(&mut self, name: impl Into<String>) -> FlagId {
        let name = name.into();
        match self.lookup_flag(&name) {
            Ok(id) => id,
            Err(slot) => {
                let id = FlagId::from_raw(self.flags.len() as u32);
                self.flags.push(FlagState {
                    name,
                    set_at: None,
                    waiters: SmallVec::new(),
                });
                self.flag_lookup.insert(slot, id);
                id
            }
        }
    }

    /// Binary-searches the name interner. `Ok(id)` if interned,
    /// `Err(insertion_slot)` otherwise.
    fn lookup_flag(&self, name: &str) -> Result<FlagId, usize> {
        let flags = &self.flags;
        self.flag_lookup
            .binary_search_by(|&id| flags[id.index()].name.as_str().cmp(name))
            .map(|i| self.flag_lookup[i])
    }

    /// Name of a flag.
    pub fn flag_name(&self, id: FlagId) -> &str {
        &self.flags[id.index()].name
    }

    /// When the flag was set, if it has been.
    pub fn flag_set_at(&self, id: FlagId) -> Option<SimTime> {
        self.flags[id.index()].set_at
    }

    /// Number of processes created so far.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// Read-only access to a process (for stats and assertions).
    pub fn process(&self, pid: Pid) -> &Process {
        &self.procs[pid.index()]
    }

    /// All processes, for reports.
    pub fn processes(&self) -> &[Process] {
        &self.procs
    }

    /// Spawns a process, ready at the current time. Returns its pid.
    pub fn spawn(&mut self, spec: ProcessSpec) -> Pid {
        let pid = self.add_process(spec);
        self.work.push(pid);
        self.drain_work();
        pid
    }

    /// Creates the process record for `spec` (trace entry, process
    /// table, running-slab slot) without making it runnable.
    fn add_process(&mut self, spec: ProcessSpec) -> Pid {
        let pid = Pid::from_raw(self.procs.len() as u32);
        self.trace.push(
            self.now,
            pid,
            TraceKind::Spawned {
                name: spec.name.clone(),
            },
        );
        self.procs.push(Process::from_spec(pid, spec, self.now));
        self.running.push(None);
        pid
    }

    /// Schedules a process to spawn at a future time.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn spawn_at(&mut self, at: SimTime, spec: ProcessSpec) {
        assert!(at >= self.now, "spawn_at in the past");
        let slot = self.pending_spawns.len() as u32;
        self.pending_spawns.push(Some(spec));
        self.events
            .push(at, EventKind::ExternalSpawn { spawn_slot: slot });
    }

    /// Sets a flag from outside the simulation (e.g. a kernel phase model
    /// marking the rootfs mounted before user space starts).
    pub fn set_flag_external(&mut self, flag: FlagId) {
        self.do_set_flag(flag, Pid::from_raw(u32::MAX));
        self.drain_work();
        self.dispatch();
    }

    /// Installs a fault plan. Call after the targeted devices have been
    /// added; device-level faults resolve names against existing devices
    /// (unknown names are ignored, so generic plans work across
    /// scenarios). Installing an empty plan is a strict no-op — the run
    /// stays bit-identical to an uninstrumented one.
    ///
    /// [`Fault::SlowDevice`] takes effect immediately (the device's
    /// profile is degraded for the rest of the run); the other faults
    /// arm triggers that fire during execution. Every injection is
    /// recorded as [`TraceKind::FaultInjected`].
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        if plan.is_empty() {
            return;
        }
        let mut state = self.faults.take().unwrap_or_default();
        for fault in &plan.faults {
            match fault {
                Fault::CrashAtReadiness { process, hits } => {
                    state.proc_arms.push(ProcFaultArm {
                        process: process.clone(),
                        hits_left: *hits,
                        hang: false,
                    });
                }
                Fault::HangBeforeReady { process, hits } => {
                    state.proc_arms.push(ProcFaultArm {
                        process: process.clone(),
                        hits_left: *hits,
                        hang: true,
                    });
                }
                Fault::TransientIoError {
                    device,
                    failures,
                    retry_delay,
                } => {
                    if let Some(d) = self.devices.iter().find(|d| d.name == *device) {
                        state.io_arms.push(IoFaultArm {
                            device: d.id,
                            failures_left: *failures,
                            retry_delay: *retry_delay,
                        });
                    }
                }
                Fault::SlowDevice { device, factor } => {
                    assert!(
                        factor.is_finite() && *factor >= 1.0,
                        "slow-device factor must be >= 1.0"
                    );
                    if let Some(d) = self.devices.iter_mut().find(|d| d.name == *device) {
                        let p = &mut d.profile;
                        p.seq_read_bps = ((p.seq_read_bps as f64 / factor) as u64).max(1);
                        p.rand_read_bps = ((p.rand_read_bps as f64 / factor) as u64).max(1);
                        p.request_latency = p.request_latency.scale(*factor);
                        self.trace.push(
                            self.now,
                            Pid::from_raw(u32::MAX),
                            TraceKind::FaultInjected {
                                description: fault.describe(),
                            },
                        );
                    }
                }
            }
        }
        self.faults = Some(state);
    }

    /// True if `name` is the faulted process or a respawned incarnation
    /// of it (`name#k`).
    fn fault_matches(target: &str, name: &str) -> bool {
        name == target
            || (name.len() > target.len() + 1
                && name.as_bytes()[target.len()] == b'#'
                && name.starts_with(target))
    }

    /// Injects a crash/hang if one is armed for this process. Returns
    /// true if the process was afflicted (its SetFlag must not execute).
    fn try_inject_readiness_fault(&mut self, pid: Pid, ready_flag: FlagId) -> bool {
        let Some(state) = self.faults.as_mut() else {
            return false;
        };
        let name = self.procs[pid.index()].name.clone();
        let Some(arm) = state
            .proc_arms
            .iter_mut()
            .find(|a| a.hits_left > 0 && Self::fault_matches(&a.process, &name))
        else {
            return false;
        };
        arm.hits_left -= 1;
        let hang = arm.hang;
        if hang {
            let flag = match state.hang_flag {
                Some(f) => f,
                None => {
                    let f = self.flag("fault:hang");
                    self.faults.as_mut().expect("fault state exists").hang_flag = Some(f);
                    f
                }
            };
            self.trace.push(
                self.now,
                pid,
                TraceKind::FaultInjected {
                    description: format!("hang before ready: {name}"),
                },
            );
            let p = &mut self.procs[pid.index()];
            p.ops.clear();
            p.ops.push_back(Op::WaitFlag(flag));
            // The caller's step loop re-reads the front op and blocks.
        } else {
            self.trace.push(
                self.now,
                pid,
                TraceKind::FaultInjected {
                    description: format!("crash at readiness: {name}"),
                },
            );
            let p = &mut self.procs[pid.index()];
            p.ops.clear();
            p.state = ProcState::Done;
            p.finished_at = Some(self.now);
            self.failed.push(pid);
            self.trace
                .push(self.now, pid, TraceKind::Failed { flag: ready_flag });
            // Signal supervision watchers (if any) that this incarnation
            // crashed. The flag is per-incarnation: `fault:crashed:<name>`.
            let crashed = self.flag(format!("fault:crashed:{name}"));
            self.do_set_flag(crashed, pid);
        }
        true
    }

    /// Consumes one armed transient-I/O failure for `device`, if any.
    /// Returns the retry delay the caller must impose before re-issuing.
    fn try_inject_io_fault(&mut self, pid: Pid, device: DeviceId) -> Option<SimDuration> {
        let state = self.faults.as_mut()?;
        let arm = state
            .io_arms
            .iter_mut()
            .find(|a| a.failures_left > 0 && a.device == device)?;
        arm.failures_left -= 1;
        let delay = arm.retry_delay;
        let name = self.devices[device.index()].name.clone();
        self.trace.push(
            self.now,
            pid,
            TraceKind::FaultInjected {
                description: format!("transient I/O error: {name}"),
            },
        );
        Some(delay)
    }

    /// Advances simulated time without running anything (used by phase
    /// models for costs that happen before/outside process execution).
    ///
    /// # Panics
    ///
    /// Panics if events are pending before the target time; skipping over
    /// scheduled work would corrupt the timeline.
    pub fn advance_time(&mut self, d: SimDuration) {
        let target = self.now + d;
        if let Some(t) = self.events.peek_time() {
            assert!(
                t >= target,
                "advance_time would skip a pending event at {t}"
            );
        }
        assert!(
            self.ready.is_empty(),
            "advance_time with runnable processes pending; run() them first"
        );
        self.now = target;
    }

    /// Runs until no events remain and nothing is ready.
    pub fn run(&mut self) -> RunOutcome {
        self.dispatch();
        while let Some((time, kind)) = self.events.pop() {
            debug_assert!(time >= self.now, "event queue went backwards");
            // Stale timed-wait timeouts are dropped *before* the clock
            // advances, so they never extend the run's end time.
            if self.event_is_stale(kind) {
                continue;
            }
            self.now = time;
            self.handle(kind);
            self.drain_work();
            self.dispatch();
        }
        let blocked = self
            .procs
            .iter()
            .filter(|p| matches!(p.state, ProcState::Blocked(_)))
            .map(|p| p.pid)
            .collect();
        RunOutcome {
            end_time: self.now,
            blocked,
            failed: self.failed.clone(),
        }
    }

    /// Runs until the given time (inclusive of events at it), leaving
    /// later events pending. Returns the new current time.
    pub fn run_until(&mut self, until: SimTime) -> SimTime {
        self.dispatch();
        while let Some(t) = self.events.peek_time() {
            if t > until {
                break;
            }
            let (time, kind) = self.events.pop().expect("peeked event exists");
            if self.event_is_stale(kind) {
                continue;
            }
            self.now = time;
            self.handle(kind);
            self.drain_work();
            self.dispatch();
        }
        self.now = self.now.max(until);
        self.now
    }

    /// True for events that were invalidated after scheduling (a timed
    /// flag wait whose flag arrived first).
    fn event_is_stale(&self, kind: EventKind) -> bool {
        match kind {
            EventKind::FlagWaitTimeout { pid, seq } => {
                self.procs[pid.index()].timed_wait_seq != seq
            }
            _ => false,
        }
    }

    // ---- internal: event handling -------------------------------------

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::SliceDone { pid, core } => self.on_slice_done(pid, core),
            EventKind::ReadHoldDone { pid, core } => self.on_read_hold_done(pid, core),
            EventKind::IoDone { device } => self.on_io_done(device),
            EventKind::RcuGraceDone => self.on_grace_done(),
            EventKind::WakeUp { pid } => self.on_wake(pid),
            EventKind::FlagWaitTimeout { pid, seq } => self.on_flag_wait_timeout(pid, seq),
            EventKind::ExternalSpawn { spawn_slot } => {
                let spec = self.pending_spawns[spawn_slot as usize]
                    .take()
                    .expect("spawn slot fired twice");
                let pid = self.add_process(spec);
                self.work.push(pid);
            }
        }
    }

    fn on_slice_done(&mut self, pid: Pid, core: CoreId) {
        if !self.procs[pid.index()].compute_left.is_zero() {
            // Preemption point: requeue with remaining work.
            self.sched_stats.preemptions += 1;
            // Same-core continuation: with nothing else ready and every
            // lower-indexed core busy, release + requeue + dispatch
            // provably re-grants this core to this process, so skip the
            // ready-heap and core churn. Every side effect of the slow
            // path (ready_seq, span boundary, stats, telemetry, event
            // push order) is replicated exactly, keeping timelines and
            // snapshots bit-identical.
            if self.ready.is_empty() && self.cores[..core.index()].iter().all(Option::is_some) {
                let seq = self.ready_seq;
                self.ready_seq += 1;
                self.sched_stats.dispatches += 1;
                if let Some(t) = self.telemetry.as_mut() {
                    t.metrics.record(telemetry::RUN_QUEUE_DEPTH, 0);
                }
                let run = self.running[pid.index()]
                    .as_mut()
                    .expect("sliced process is running");
                let since = run.since;
                run.since = self.now;
                if since < self.now {
                    self.trace.push_span(CoreSpan {
                        core,
                        pid,
                        start: since,
                        end: self.now,
                    });
                }
                let speed = self.cfg.core_speed;
                let p = &mut self.procs[pid.index()];
                p.ready_seq = seq;
                let slice = p.compute_left.min(self.cfg.quantum);
                p.compute_left = p.compute_left - slice;
                let wall = slice.scale(1.0 / speed);
                p.cpu_time += wall;
                self.events
                    .push(self.now + wall, EventKind::SliceDone { pid, core });
            } else {
                self.release_core(pid, core);
                self.make_ready(pid);
            }
            return;
        }
        self.release_core(pid, core);
        let p = &mut self.procs[pid.index()];
        // Compute op finished (or a PollFlag check completed).
        match p.ops.front() {
            Some(Op::Compute(_)) => {
                p.ops.pop_front();
                self.work.push(pid);
            }
            Some(Op::PollFlag { flag, interval, .. }) => {
                let (flag, interval) = (*flag, *interval);
                if self.flags[flag.index()].set_at.is_some() {
                    self.procs[pid.index()].ops.pop_front();
                    self.work.push(pid);
                } else {
                    self.procs[pid.index()].state = ProcState::Blocked(BlockReason::Sleep);
                    self.events
                        .push(self.now + interval, EventKind::WakeUp { pid });
                }
            }
            other => unreachable!("slice done with unexpected front op {other:?}"),
        }
    }

    fn on_read_hold_done(&mut self, pid: Pid, core: CoreId) {
        self.rcu.reader_exit();
        self.release_core(pid, core);
        let p = &mut self.procs[pid.index()];
        debug_assert!(matches!(p.ops.front(), Some(Op::RcuReadHold(_))));
        p.ops.pop_front();
        self.work.push(pid);
    }

    fn on_io_done(&mut self, device: DeviceId) {
        let (done, next) = self.devices[device.index()].complete_head(self.now);
        if let Some(next_done) = next {
            self.events.push(next_done, EventKind::IoDone { device });
        }
        if let Some(t) = self.telemetry.as_mut() {
            let latency = self.now.saturating_since(done.submitted_at);
            t.metrics
                .record(telemetry::IO_REQUEST_LATENCY_NS, latency.as_nanos());
        }
        let p = &mut self.procs[done.pid.index()];
        debug_assert_eq!(p.state, ProcState::Blocked(BlockReason::Io));
        debug_assert!(matches!(p.ops.front(), Some(Op::IoRead { .. })));
        p.ops.pop_front();
        self.work.push(done.pid);
    }

    fn on_grace_done(&mut self) {
        let (released, next) = self.rcu.complete_grace_period(self.now);
        if let Some(next_end) = next {
            self.events.push(next_end, EventKind::RcuGraceDone);
        }
        for waiter in released {
            let waited = self.now.saturating_since(waiter.submitted_at);
            if let Some(t) = self.telemetry.as_mut() {
                t.metrics.add(telemetry::RCU_SYNCS, 1);
                t.metrics
                    .record(telemetry::RCU_SYNC_WAIT_NS, waited.as_nanos());
            }
            self.trace
                .push(self.now, waiter.pid, TraceKind::RcuSyncDone { waited });
            match waiter.kind {
                crate::rcu::WaitKind::Spinning => {
                    // The waiter burned its core the whole time; charge
                    // and free it.
                    let run = self.running[waiter.pid.index()].expect("spinning waiter runs");
                    self.procs[waiter.pid.index()].cpu_time += self.now.saturating_since(run.since);
                    self.release_core(waiter.pid, run.core);
                    self.work.push(waiter.pid);
                }
                crate::rcu::WaitKind::SleepingClassic => {
                    let p = &mut self.procs[waiter.pid.index()];
                    debug_assert_eq!(p.state, ProcState::Blocked(BlockReason::RcuBlocked));
                    self.work.push(waiter.pid);
                }
                crate::rcu::WaitKind::SleepingBoosted => {
                    // Wake the sleeper; it pays a context switch on-CPU.
                    let p = &mut self.procs[waiter.pid.index()];
                    debug_assert_eq!(p.state, ProcState::Blocked(BlockReason::RcuBlocked));
                    let ctx = self.rcu.params().ctx_switch_cost;
                    if !ctx.is_zero() {
                        p.ops.push_front(Op::Compute(ctx));
                    }
                    self.work.push(waiter.pid);
                }
            }
        }
    }

    fn on_flag_wait_timeout(&mut self, pid: Pid, seq: u64) {
        // Stale timeouts are filtered before time advances (see `run`),
        // so a firing here is for the currently parked wait.
        let p = &mut self.procs[pid.index()];
        debug_assert_eq!(p.timed_wait_seq, seq);
        let Some(&Op::TimedWaitFlag { flag, .. }) = p.ops.front() else {
            unreachable!("timed-wait timeout with unexpected front op");
        };
        debug_assert_eq!(p.state, ProcState::Blocked(BlockReason::Flag(flag)));
        p.timed_wait_seq += 1;
        p.ops.pop_front();
        self.flags[flag.index()].waiters.retain(|&w| w != pid);
        self.work.push(pid);
    }

    fn on_wake(&mut self, pid: Pid) {
        let p = &mut self.procs[pid.index()];
        debug_assert_eq!(p.state, ProcState::Blocked(BlockReason::Sleep));
        match p.ops.front() {
            Some(Op::Sleep(_)) => {
                p.ops.pop_front();
            }
            // A PollFlag sleeper re-checks on wake (the op stays at front
            // and is re-dispatched for its next on-CPU check).
            Some(Op::PollFlag { .. }) => {}
            other => unreachable!("wake with unexpected front op {other:?}"),
        }
        self.work.push(pid);
    }

    // ---- internal: process advancement ---------------------------------

    fn drain_work(&mut self) {
        while let Some(pid) = self.work.pop() {
            self.step_process(pid);
        }
    }

    /// Folds zero-cost ops and parks the process in the state its next
    /// real op requires (ready, blocked, or done).
    ///
    /// Allocation-free: every arm borrows the front op and copies only
    /// its scalar payload; `Spawn` — the one op with heap payload —
    /// pops the op and *moves* the spec into the child instead of
    /// deep-cloning it.
    fn step_process(&mut self, pid: Pid) {
        loop {
            match self.procs[pid.index()].ops.front() {
                None => {
                    let p = &mut self.procs[pid.index()];
                    if p.state != ProcState::Done {
                        p.state = ProcState::Done;
                        p.finished_at = Some(self.now);
                        self.trace.push(self.now, pid, TraceKind::Finished);
                    }
                    return;
                }
                Some(&Op::Compute(d)) => {
                    let p = &mut self.procs[pid.index()];
                    if p.compute_left.is_zero() {
                        p.compute_left = d;
                    }
                    self.make_ready(pid);
                    return;
                }
                Some(&Op::PollFlag { flag, .. }) => {
                    // PollFlag with an already-set flag can skip the check.
                    if self.flags[flag.index()].set_at.is_some() {
                        self.procs[pid.index()].ops.pop_front();
                        continue;
                    }
                    self.make_ready(pid);
                    return;
                }
                Some(&Op::RcuReadHold(_)) | Some(&Op::RcuSync) => {
                    self.make_ready(pid);
                    return;
                }
                Some(&Op::IoRead {
                    device,
                    bytes,
                    pattern,
                }) => {
                    if let Some(delay) = self.try_inject_io_fault(pid, device) {
                        // Failed read: back off, then retry the same op.
                        self.procs[pid.index()].ops.push_front(Op::Sleep(delay));
                        continue;
                    }
                    let req = IoRequest {
                        pid,
                        bytes,
                        pattern,
                        priority: self.procs[pid.index()].io_priority,
                        submitted_at: self.now,
                    };
                    self.procs[pid.index()].state = ProcState::Blocked(BlockReason::Io);
                    self.sched_stats.io_requests += 1;
                    if let Some(done_at) = self.devices[device.index()].submit(req, self.now) {
                        self.events.push(done_at, EventKind::IoDone { device });
                    }
                    return;
                }
                Some(&Op::Sleep(d)) => {
                    self.procs[pid.index()].state = ProcState::Blocked(BlockReason::Sleep);
                    self.events.push(self.now + d, EventKind::WakeUp { pid });
                    return;
                }
                Some(&Op::WaitFlag(flag)) => {
                    if self.flags[flag.index()].set_at.is_some() {
                        self.procs[pid.index()].ops.pop_front();
                        continue;
                    }
                    self.procs[pid.index()].state = ProcState::Blocked(BlockReason::Flag(flag));
                    self.flags[flag.index()].waiters.push(pid);
                    return;
                }
                Some(&Op::TimedWaitFlag { flag, timeout }) => {
                    if self.flags[flag.index()].set_at.is_some() {
                        self.procs[pid.index()].ops.pop_front();
                        continue;
                    }
                    let p = &mut self.procs[pid.index()];
                    p.state = ProcState::Blocked(BlockReason::Flag(flag));
                    let seq = p.timed_wait_seq;
                    self.flags[flag.index()].waiters.push(pid);
                    self.events
                        .push(self.now + timeout, EventKind::FlagWaitTimeout { pid, seq });
                    return;
                }
                Some(&Op::AssertFlag(flag)) => {
                    if self.flags[flag.index()].set_at.is_some() {
                        self.procs[pid.index()].ops.pop_front();
                        continue;
                    }
                    let p = &mut self.procs[pid.index()];
                    p.ops.clear();
                    p.state = ProcState::Done;
                    p.finished_at = Some(self.now);
                    self.failed.push(pid);
                    self.trace.push(self.now, pid, TraceKind::Failed { flag });
                    return;
                }
                Some(&Op::CondSkip { flag, skip_ops }) => {
                    let p = &mut self.procs[pid.index()];
                    p.ops.pop_front();
                    if self.flags[flag.index()].set_at.is_none() {
                        for _ in 0..skip_ops {
                            if self.procs[pid.index()].ops.pop_front().is_none() {
                                break;
                            }
                        }
                    }
                }
                Some(&Op::SetFlag(flag)) => {
                    if self.try_inject_readiness_fault(pid, flag) {
                        // Crashed processes are done; hung ones now have a
                        // fresh front op to park on.
                        if self.procs[pid.index()].state == ProcState::Done {
                            return;
                        }
                        continue;
                    }
                    self.procs[pid.index()].ops.pop_front();
                    self.do_set_flag(flag, pid);
                }
                Some(&Op::Spawn(_)) => {
                    let Some(Op::Spawn(spec)) = self.procs[pid.index()].ops.pop_front() else {
                        unreachable!("front op changed under us");
                    };
                    let child = self.add_process(spec);
                    self.work.push(child);
                }
                Some(&Op::Yield) => {
                    self.procs[pid.index()].ops.pop_front();
                    // A bare requeue: if the next op needs a core it will
                    // naturally arrive behind current ready peers.
                }
                Some(&Op::SetRcuMode(mode)) => {
                    self.procs[pid.index()].ops.pop_front();
                    self.rcu.set_mode(mode);
                }
            }
        }
    }

    fn do_set_flag(&mut self, flag: FlagId, setter: Pid) {
        let f = &mut self.flags[flag.index()];
        if f.set_at.is_some() {
            return;
        }
        f.set_at = Some(self.now);
        self.trace
            .push(self.now, setter, TraceKind::FlagSet { flag });
        for waiter in std::mem::take(&mut f.waiters) {
            self.sched_stats.flag_wakeups += 1;
            let p = &mut self.procs[waiter.index()];
            debug_assert_eq!(p.state, ProcState::Blocked(BlockReason::Flag(flag)));
            match p.ops.front() {
                Some(Op::WaitFlag(_)) => {
                    p.ops.pop_front();
                }
                Some(Op::TimedWaitFlag { .. }) => {
                    // Invalidate the pending timeout event for this wait.
                    p.timed_wait_seq += 1;
                    p.ops.pop_front();
                }
                other => unreachable!("flag waiter with unexpected front op {other:?}"),
            }
            self.work.push(waiter);
        }
    }

    fn make_ready(&mut self, pid: Pid) {
        let seq = self.ready_seq;
        self.ready_seq += 1;
        let p = &mut self.procs[pid.index()];
        p.state = ProcState::Ready;
        p.ready_seq = seq;
        self.ready.push(p.nice, seq, pid.as_raw());
    }

    // ---- internal: dispatching -----------------------------------------

    fn dispatch(&mut self) {
        loop {
            let Some(core) = self.cores.iter().position(Option::is_none) else {
                return;
            };
            let Some(raw) = self.ready.pop() else {
                return;
            };
            let pid = Pid::from_raw(raw);
            self.start_on_core(pid, CoreId::from_raw(core as u32));
        }
    }

    fn start_on_core(&mut self, pid: Pid, core: CoreId) {
        debug_assert!(self.cores[core.index()].is_none());
        self.sched_stats.dispatches += 1;
        if let Some(t) = self.telemetry.as_mut() {
            // Depth left behind after this dispatch took a process.
            t.metrics
                .record(telemetry::RUN_QUEUE_DEPTH, self.ready.len() as u64);
        }
        self.cores[core.index()] = Some(pid);
        self.running[pid.index()] = Some(Running {
            core,
            since: self.now,
        });
        let speed = self.cfg.core_speed;
        let p = &mut self.procs[pid.index()];
        p.state = ProcState::Running;
        if !p.first_dispatched {
            p.first_dispatched = true;
            self.trace.push(self.now, pid, TraceKind::FirstRun);
        }
        match self.procs[pid.index()].ops.front() {
            Some(&Op::Compute(_)) => {
                let p = &mut self.procs[pid.index()];
                let slice = p.compute_left.min(self.cfg.quantum);
                p.compute_left = p.compute_left - slice;
                let wall = slice.scale(1.0 / speed);
                p.cpu_time += wall;
                self.events
                    .push(self.now + wall, EventKind::SliceDone { pid, core });
            }
            Some(&Op::PollFlag { poll_cost, .. }) => {
                let wall = poll_cost.scale(1.0 / speed).max(SimDuration::from_nanos(1));
                self.procs[pid.index()].cpu_time += wall;
                self.events
                    .push(self.now + wall, EventKind::SliceDone { pid, core });
            }
            Some(&Op::RcuReadHold(d)) => {
                self.rcu.reader_enter();
                let wall = d.scale(1.0 / speed);
                self.procs[pid.index()].cpu_time += wall;
                self.events
                    .push(self.now + wall, EventKind::ReadHoldDone { pid, core });
            }
            Some(&Op::RcuSync) => {
                self.procs[pid.index()].ops.pop_front();
                let overhead = self.rcu.submit_overhead().scale(1.0 / speed);
                self.procs[pid.index()].cpu_time += overhead;
                let submit_at = self.now + overhead;
                // The overhead is tiny; fold it by submitting now but
                // starting the grace period after the overhead.
                let (kind, started) = self.rcu.submit(pid, submit_at);
                if let Some(end) = started {
                    self.events.push(end, EventKind::RcuGraceDone);
                }
                match kind {
                    crate::rcu::WaitKind::Spinning => {
                        // Busy-wait: keep the core until the grace period
                        // releases this waiter (handled in on_grace_done).
                    }
                    crate::rcu::WaitKind::SleepingClassic
                    | crate::rcu::WaitKind::SleepingBoosted => {
                        self.release_core(pid, core);
                        self.procs[pid.index()].state = ProcState::Blocked(BlockReason::RcuBlocked);
                    }
                }
            }
            other => unreachable!("dispatched process with non-core op {other:?}"),
        }
    }

    fn release_core(&mut self, pid: Pid, core: CoreId) {
        debug_assert_eq!(self.cores[core.index()], Some(pid));
        self.cores[core.index()] = None;
        if let Some(run) = self.running[pid.index()].take() {
            if run.since < self.now {
                self.trace.push_span(CoreSpan {
                    core,
                    pid,
                    start: run.since,
                    end: self.now,
                });
            }
        }
    }
}

/// Reusable machine factory for hot loops (fleet cells, sweeps):
/// recycles one finished machine's arena allocations across boots —
/// reset-and-rebuild instead of alloc-and-drop per job.
///
/// Contract: a machine obtained from [`MachineBuilder::build`] is
/// observationally identical to `Machine::new(cfg)` — same timelines,
/// traces, and snapshots, event for event — regardless of what the
/// recycled machine ran before (see `Machine::reset`).
///
/// ```
/// use bb_sim::{Machine, MachineBuilder, MachineConfig};
///
/// let mut builder = MachineBuilder::new();
/// for _ in 0..3 {
///     let mut m = builder.build(MachineConfig::default());
///     // ... run the boot ...
///     builder.recycle(m);
/// }
/// ```
#[derive(Debug, Default)]
pub struct MachineBuilder {
    spare: Option<Machine>,
}

impl MachineBuilder {
    /// Creates a builder with no recycled machine yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a pristine machine for `cfg`, reusing the allocations of
    /// the last recycled machine when one is available.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate, like [`Machine::new`].
    pub fn build(&mut self, cfg: MachineConfig) -> Machine {
        match self.spare.take() {
            Some(mut m) => {
                m.reset(cfg);
                m
            }
            None => Machine::new(cfg),
        }
    }

    /// Hands a finished machine back for reuse by the next `build`.
    pub fn recycle(&mut self, machine: Machine) {
        self.spare = Some(machine);
    }

    /// Restores a machine from snapshot bytes (see
    /// [`crate::snapshot::restore`]), grafting the recycled machine's
    /// buffer capacity onto the restored machine. A fleet inner loop
    /// that restores the same checkpoint thousands of times stops
    /// re-growing the trace, event heap, and process tables from
    /// scratch every job. Capacity is never observable: timelines,
    /// traces, and snapshots are bit-identical to a plain restore.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<Machine, crate::snapshot::SnapshotError> {
        let mut m = crate::snapshot::restore(bytes)?;
        if let Some(spare) = self.spare.take() {
            m.adopt_capacity(spare);
        }
        Ok(m)
    }
}

/// Moves `spare`'s larger backing buffer under `dst`, preserving
/// `dst`'s contents. No-op when `dst` is already at least as large.
fn graft<T>(dst: &mut Vec<T>, mut spare: Vec<T>) {
    if spare.capacity() > dst.capacity() {
        spare.clear();
        spare.append(dst);
        *dst = spare;
    }
}

impl Machine {
    /// Adopts `spare`'s high-water buffer capacities without changing
    /// any observable state (machine recycling for restore-heavy
    /// loops).
    fn adopt_capacity(&mut self, spare: Machine) {
        let Machine {
            events,
            procs,
            running,
            flags,
            flag_lookup,
            trace,
            pending_spawns,
            work,
            failed,
            ..
        } = spare;
        self.events.adopt_capacity(events);
        graft(&mut self.procs, procs);
        graft(&mut self.running, running);
        graft(&mut self.flags, flags);
        graft(&mut self.flag_lookup, flag_lookup);
        graft(&mut self.trace.events, trace.events);
        graft(&mut self.trace.spans, trace.spans);
        graft(&mut self.pending_spawns, pending_spawns);
        graft(&mut self.work, work);
        graft(&mut self.failed, failed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::OpsBuilder;

    fn machine(cores: usize) -> Machine {
        Machine::new(MachineConfig {
            cores,
            ..MachineConfig::default()
        })
    }

    #[test]
    fn single_compute_process_runs_to_completion() {
        let mut m = machine(1);
        let pid = m.spawn(ProcessSpec::new(
            "worker",
            OpsBuilder::new().compute_ms(5).build(),
        ));
        let out = m.run();
        assert_eq!(out.end_time.as_millis(), 5);
        assert!(out.blocked.is_empty());
        assert_eq!(m.process(pid).state, ProcState::Done);
        assert_eq!(m.process(pid).cpu_time.as_millis(), 5);
    }

    #[test]
    fn two_processes_share_one_core() {
        let mut m = machine(1);
        m.spawn(ProcessSpec::new(
            "a",
            OpsBuilder::new().compute_ms(3).build(),
        ));
        m.spawn(ProcessSpec::new(
            "b",
            OpsBuilder::new().compute_ms(3).build(),
        ));
        let out = m.run();
        // Serialized on one core: 6 ms total.
        assert_eq!(out.end_time.as_millis(), 6);
    }

    #[test]
    fn two_processes_run_in_parallel_on_two_cores() {
        let mut m = machine(2);
        m.spawn(ProcessSpec::new(
            "a",
            OpsBuilder::new().compute_ms(3).build(),
        ));
        m.spawn(ProcessSpec::new(
            "b",
            OpsBuilder::new().compute_ms(3).build(),
        ));
        let out = m.run();
        assert_eq!(out.end_time.as_millis(), 3);
    }

    #[test]
    fn priority_preempts_at_quantum_granularity() {
        let mut m = machine(1);
        m.spawn(ProcessSpec::new(
            "low",
            OpsBuilder::new().compute_ms(10).build(),
        ));
        m.spawn(ProcessSpec::new("high", OpsBuilder::new().compute_ms(2).build()).with_nice(-20));
        m.run();
        let tl = m.trace().process_timeline();
        let high_done = tl
            .values()
            .find(|t| t.name == "high")
            .and_then(|t| t.finished)
            .unwrap();
        // High-priority work finishes long before the 10 ms low job would
        // allow if it ran to completion first (1 ms head start max).
        assert!(high_done.as_millis() <= 3, "high finished at {high_done}");
    }

    #[test]
    fn core_speed_scales_compute() {
        let mut m = Machine::new(MachineConfig {
            cores: 1,
            core_speed: 2.0,
            ..MachineConfig::default()
        });
        m.spawn(ProcessSpec::new(
            "a",
            OpsBuilder::new().compute_ms(10).build(),
        ));
        let out = m.run();
        assert_eq!(out.end_time.as_millis(), 5);
    }

    #[test]
    fn io_blocks_and_overlaps_with_compute() {
        let mut m = machine(1);
        let dev = m.add_device("emmc", DeviceProfile::from_mibs(1, 1, SimDuration::ZERO));
        // Reader waits 1 s for I/O while the computer uses the core.
        m.spawn(ProcessSpec::new(
            "reader",
            OpsBuilder::new().read_seq(dev, crate::io::MIB).build(),
        ));
        m.spawn(ProcessSpec::new(
            "computer",
            OpsBuilder::new().compute_ms(800).build(),
        ));
        let out = m.run();
        // Overlap: total is max(1000, 800) = 1000 ms, not 1800.
        assert_eq!(out.end_time.as_millis(), 1000);
        assert_eq!(m.device(dev).bytes_read, crate::io::MIB);
    }

    #[test]
    fn flags_order_processes() {
        let mut m = machine(2);
        let f = m.flag("a-ready");
        m.spawn(ProcessSpec::new(
            "b",
            OpsBuilder::new().wait_flag(f).compute_ms(1).build(),
        ));
        m.spawn(ProcessSpec::new(
            "a",
            OpsBuilder::new().compute_ms(5).set_flag(f).build(),
        ));
        let out = m.run();
        assert_eq!(out.end_time.as_millis(), 6);
        assert_eq!(m.flag_set_at(f).unwrap().as_millis(), 5);
        assert!(out.blocked.is_empty());
    }

    #[test]
    fn unset_flag_leaves_waiter_blocked() {
        let mut m = machine(1);
        let f = m.flag("never");
        let pid = m.spawn(ProcessSpec::new(
            "waiter",
            OpsBuilder::new().wait_flag(f).build(),
        ));
        let out = m.run();
        assert_eq!(out.blocked, vec![pid]);
    }

    #[test]
    fn assert_flag_fails_process() {
        let mut m = machine(1);
        let f = m.flag("prereq");
        let pid = m.spawn(ProcessSpec::new(
            "fragile",
            OpsBuilder::new().assert_flag(f).compute_ms(1).build(),
        ));
        let out = m.run();
        assert_eq!(out.failed, vec![pid]);
        let tl = m.trace().process_timeline();
        assert!(tl[&pid].failed);
    }

    #[test]
    fn assert_flag_passes_when_set() {
        let mut m = machine(1);
        let f = m.flag("prereq");
        m.spawn(ProcessSpec::new(
            "setter",
            OpsBuilder::new().set_flag(f).build(),
        ));
        m.spawn(ProcessSpec::new(
            "fragile",
            OpsBuilder::new().assert_flag(f).compute_ms(1).build(),
        ));
        let out = m.run();
        assert!(out.failed.is_empty());
    }

    #[test]
    fn spawn_op_creates_children() {
        let mut m = machine(2);
        let child = ProcessSpec::new("child", OpsBuilder::new().compute_ms(2).build());
        m.spawn(ProcessSpec::new(
            "parent",
            OpsBuilder::new()
                .compute_ms(1)
                .spawn(child)
                .compute_ms(1)
                .build(),
        ));
        let out = m.run();
        assert_eq!(m.process_count(), 2);
        // Child spawns at 1 ms, runs 2 ms in parallel with parent's tail.
        assert_eq!(out.end_time.as_millis(), 3);
    }

    #[test]
    fn sleep_is_off_cpu() {
        let mut m = machine(1);
        m.spawn(ProcessSpec::new(
            "sleeper",
            OpsBuilder::new()
                .sleep(SimDuration::from_millis(10))
                .compute_ms(1)
                .build(),
        ));
        m.spawn(ProcessSpec::new(
            "worker",
            OpsBuilder::new().compute_ms(8).build(),
        ));
        let out = m.run();
        // Sleeper wakes at 10 and computes 1 ms; worker overlapped fully.
        assert_eq!(out.end_time.as_millis(), 11);
    }

    fn rcu_machine(cores: usize, mode: RcuMode) -> Machine {
        Machine::new(MachineConfig {
            cores,
            rcu_mode: mode,
            rcu_params: RcuParams {
                base_grace_period: SimDuration::from_millis(10),
                per_reader_extension: SimDuration::ZERO,
                ctx_switch_cost: SimDuration::ZERO,
                boosted_overhead: SimDuration::ZERO,
                classic_overhead: SimDuration::ZERO,
            },
            ..MachineConfig::default()
        })
    }

    #[test]
    fn classic_rcu_uncontended_sleeps_through_grace_period() {
        // A single classic caller is at the ticket-lock head immediately:
        // it sleeps, the worker overlaps.
        let mut m = rcu_machine(1, RcuMode::ClassicSpin);
        m.spawn(ProcessSpec::new("syncer", vec![Op::RcuSync]));
        m.spawn(ProcessSpec::new(
            "worker",
            OpsBuilder::new().compute_ms(5).build(),
        ));
        let out = m.run();
        assert_eq!(out.end_time.as_millis(), 10);
        assert!(m.process(Pid::from_raw(0)).cpu_time.as_millis() < 1);
    }

    #[test]
    fn classic_rcu_queued_waiter_burns_the_core() {
        // Two classic callers: the second spins on the ticket lock for
        // the first's whole grace period (0..10 ms), starving the worker.
        let mut m = rcu_machine(1, RcuMode::ClassicSpin);
        m.spawn(ProcessSpec::new("syncer-a", vec![Op::RcuSync]));
        m.spawn(ProcessSpec::new("syncer-b", vec![Op::RcuSync]));
        m.spawn(ProcessSpec::new(
            "worker",
            OpsBuilder::new().compute_ms(15).build(),
        ));
        let out = m.run();
        // a parks uncontended (gp 0..10); b finds a pending and spins on
        // the core for the rest of a's grace period plus its own
        // (0..20); the worker only then gets the core (20..35).
        assert_eq!(out.end_time.as_millis(), 35);
        let spinner = m.process(Pid::from_raw(1));
        assert_eq!(spinner.cpu_time.as_millis(), 20);
    }

    #[test]
    fn boosted_rcu_frees_the_core_while_queued() {
        let mut m = rcu_machine(1, RcuMode::Boosted);
        m.spawn(ProcessSpec::new("syncer-a", vec![Op::RcuSync]));
        m.spawn(ProcessSpec::new("syncer-b", vec![Op::RcuSync]));
        m.spawn(ProcessSpec::new(
            "worker",
            OpsBuilder::new().compute_ms(15).build(),
        ));
        let out = m.run();
        // Worker runs 0..15 in parallel with both sleeping waiters.
        assert_eq!(out.end_time.as_millis(), 20);
        assert!(m.process(Pid::from_raw(1)).cpu_time.as_millis() < 1);
    }

    #[test]
    fn rcu_readers_extend_grace_periods() {
        let mut m = Machine::new(MachineConfig {
            cores: 2,
            rcu_mode: RcuMode::Boosted,
            rcu_params: RcuParams {
                base_grace_period: SimDuration::from_millis(1),
                per_reader_extension: SimDuration::from_millis(4),
                ctx_switch_cost: SimDuration::ZERO,
                boosted_overhead: SimDuration::ZERO,
                classic_overhead: SimDuration::ZERO,
            },
            ..MachineConfig::default()
        });
        // Reader holds a read-side section 0..10ms; syncer's grace period
        // starts inside it and is extended.
        m.spawn(ProcessSpec::new(
            "reader",
            OpsBuilder::new()
                .rcu_read(SimDuration::from_millis(10))
                .build(),
        ));
        m.spawn(ProcessSpec::new("syncer", vec![Op::RcuSync]));
        let out = m.run();
        // Grace = 1 + 4*1 = 5 ms.
        assert_eq!(out.end_time.as_millis(), 10);
        let sync_done = m
            .trace()
            .events()
            .iter()
            .find(|e| matches!(e.kind, TraceKind::RcuSyncDone { .. }))
            .unwrap();
        assert_eq!(sync_done.time.as_millis(), 5);
    }

    #[test]
    fn poll_flag_burns_cpu_until_set() {
        let mut m = machine(1);
        let f = m.flag("path-exists");
        m.spawn(ProcessSpec::new(
            "poller",
            OpsBuilder::new()
                .poll_flag(
                    f,
                    SimDuration::from_millis(10),
                    SimDuration::from_micros(100),
                )
                .compute_ms(1)
                .build(),
        ));
        m.spawn_at(
            SimTime::from_nanos(25_000_000),
            ProcessSpec::new("creator", OpsBuilder::new().set_flag(f).build()),
        );
        let out = m.run();
        assert!(out.blocked.is_empty());
        // Poller checked at ~0, ~10, ~20, then saw the flag at ~30.
        let poller = m.process(Pid::from_raw(0));
        assert!(
            poller.cpu_time.as_micros() >= 1300,
            "cpu {}",
            poller.cpu_time
        );
        assert!(out.end_time.as_millis() >= 30);
    }

    #[test]
    fn spawn_at_defers_arrival() {
        let mut m = machine(1);
        m.spawn_at(
            SimTime::from_nanos(5_000_000),
            ProcessSpec::new("late", OpsBuilder::new().compute_ms(1).build()),
        );
        let out = m.run();
        assert_eq!(out.end_time.as_millis(), 6);
    }

    #[test]
    fn external_flag_set_wakes_waiters() {
        let mut m = machine(1);
        let f = m.flag("kernel-ready");
        m.spawn(ProcessSpec::new(
            "init",
            OpsBuilder::new().wait_flag(f).compute_ms(2).build(),
        ));
        m.run(); // goes quiescent, waiter blocked
        m.set_flag_external(f);
        let out = m.run();
        assert_eq!(out.end_time.as_millis(), 2);
        assert!(out.blocked.is_empty());
    }

    #[test]
    fn determinism_same_trace_twice() {
        let build = || {
            let mut m = machine(2);
            let dev = m.add_device("emmc", DeviceProfile::tv_emmc());
            let f = m.flag("x");
            for i in 0..10 {
                m.spawn(ProcessSpec::new(
                    format!("svc{i}"),
                    OpsBuilder::new()
                        .compute_ms(1 + i % 3)
                        .read_rand(dev, 4096 * (i + 1))
                        .set_flag(f)
                        .build(),
                ));
            }
            let out = m.run();
            (out.end_time, m.trace().events().len())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn sched_stats_count_activity() {
        let mut m = machine(1);
        let dev = m.add_device("emmc", DeviceProfile::tv_emmc());
        let f = m.flag("gate");
        m.spawn(ProcessSpec::new(
            "worker",
            OpsBuilder::new()
                .compute_ms(3) // 3 slices on a 1 ms quantum: 2 preemptions
                .read_rand(dev, 4096)
                .set_flag(f)
                .build(),
        ));
        m.spawn(ProcessSpec::new(
            "waiter",
            OpsBuilder::new().wait_flag(f).compute_ms(1).build(),
        ));
        m.run();
        let s = m.sched_stats();
        assert!(s.dispatches >= 4, "dispatches {}", s.dispatches);
        assert_eq!(s.io_requests, 1);
        assert_eq!(s.flag_wakeups, 1);
        assert!(s.preemptions >= 2, "preemptions {}", s.preemptions);
    }

    #[test]
    fn advance_time_moves_clock() {
        let mut m = machine(1);
        m.advance_time(SimDuration::from_millis(100));
        assert_eq!(m.now().as_millis(), 100);
        m.spawn(ProcessSpec::new(
            "p",
            OpsBuilder::new().compute_ms(1).build(),
        ));
        let out = m.run();
        assert_eq!(out.end_time.as_millis(), 101);
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let mut m = machine(1);
        m.spawn(ProcessSpec::new(
            "p",
            OpsBuilder::new().compute_ms(10).build(),
        ));
        let t = m.run_until(SimTime::from_nanos(4_000_000));
        assert_eq!(t.as_millis(), 4);
        let out = m.run();
        assert_eq!(out.end_time.as_millis(), 10);
    }

    #[test]
    fn set_rcu_mode_op_switches_waiters() {
        let mut m = Machine::new(MachineConfig {
            cores: 1,
            rcu_mode: RcuMode::Boosted,
            rcu_params: RcuParams {
                base_grace_period: SimDuration::from_millis(10),
                per_reader_extension: SimDuration::ZERO,
                ctx_switch_cost: SimDuration::ZERO,
                boosted_overhead: SimDuration::ZERO,
                classic_overhead: SimDuration::ZERO,
            },
            ..MachineConfig::default()
        });
        let gate = m.flag("boot-complete");
        m.spawn(ProcessSpec::new(
            "booster-control",
            OpsBuilder::new()
                .wait_flag(gate)
                .build()
                .into_iter()
                .chain([Op::SetRcuMode(RcuMode::ClassicSpin)])
                .collect(),
        ));
        m.spawn(ProcessSpec::new(
            "early-sync",
            vec![Op::RcuSync, Op::SetFlag(gate)],
        ));
        m.spawn(ProcessSpec::new(
            "late-sync",
            vec![Op::WaitFlag(gate), Op::RcuSync],
        ));
        m.run();
        let stats = m.rcu_stats();
        assert_eq!(stats.boosted_syncs, 1);
        assert_eq!(stats.classic_syncs, 1);
        assert_eq!(m.rcu_mode(), RcuMode::ClassicSpin);
    }

    #[test]
    fn cond_skip_skips_body_when_flag_unset() {
        let mut m = machine(1);
        let cond = m.flag("path-exists");
        let ready = m.flag("svc-ready");
        m.spawn(ProcessSpec::new(
            "conditional",
            OpsBuilder::new()
                .cond_skip(cond, 1)
                .compute_ms(50)
                .set_flag(ready)
                .build(),
        ));
        let out = m.run();
        // Body skipped: finishes immediately, ready still set.
        assert_eq!(out.end_time.as_millis(), 0);
        assert!(m.flag_set_at(ready).is_some());
    }

    #[test]
    fn cond_skip_runs_body_when_flag_set() {
        let mut m = machine(1);
        let cond = m.flag("path-exists");
        m.spawn(ProcessSpec::new(
            "creator",
            OpsBuilder::new().set_flag(cond).build(),
        ));
        m.spawn(ProcessSpec::new(
            "conditional",
            OpsBuilder::new().cond_skip(cond, 1).compute_ms(50).build(),
        ));
        let out = m.run();
        assert_eq!(out.end_time.as_millis(), 50);
    }

    #[test]
    fn timed_wait_flag_released_by_flag_does_not_extend_run() {
        let mut m = machine(2);
        let f = m.flag("ready");
        m.spawn(ProcessSpec::new(
            "watchdog",
            OpsBuilder::new()
                .timed_wait_flag(f, SimDuration::from_millis(2000))
                .set_flag(f)
                .build(),
        ));
        m.spawn(ProcessSpec::new(
            "service",
            OpsBuilder::new().compute_ms(3).set_flag(f).build(),
        ));
        let out = m.run();
        // The watchdog exits as soon as the service signals; its stale
        // 2000 ms timeout event is dropped without moving the clock.
        assert_eq!(out.end_time.as_millis(), 3);
        let tl = m.trace().process_timeline();
        let wd = tl.values().find(|t| t.name == "watchdog").unwrap();
        assert_eq!(wd.finished.unwrap().as_millis(), 3);
    }

    #[test]
    fn timed_wait_flag_times_out_and_continues() {
        let mut m = machine(1);
        let f = m.flag("never-set");
        m.spawn(ProcessSpec::new(
            "watchdog",
            OpsBuilder::new()
                .timed_wait_flag(f, SimDuration::from_millis(50))
                .compute_ms(1)
                .build(),
        ));
        let out = m.run();
        assert_eq!(out.end_time.as_millis(), 51);
        assert!(out.blocked.is_empty());
    }

    #[test]
    fn timed_wait_flag_with_preset_flag_is_free() {
        let mut m = machine(1);
        let f = m.flag("already");
        m.set_flag_external(f);
        m.spawn(ProcessSpec::new(
            "w",
            OpsBuilder::new()
                .timed_wait_flag(f, SimDuration::from_millis(100))
                .build(),
        ));
        let out = m.run();
        assert_eq!(out.end_time.as_millis(), 0);
    }

    #[test]
    fn crash_fault_fails_process_and_sets_crash_flag() {
        let mut m = machine(1);
        let ready = m.flag("ready:svc");
        let pid = m.spawn(ProcessSpec::new(
            "svc.service",
            OpsBuilder::new().compute_ms(2).set_flag(ready).build(),
        ));
        m.install_fault_plan(&FaultPlan {
            faults: vec![Fault::CrashAtReadiness {
                process: "svc.service".into(),
                hits: 1,
            }],
            seed: 0,
        });
        let out = m.run();
        assert_eq!(out.failed, vec![pid]);
        assert!(m.flag_set_at(ready).is_none(), "readiness must not be set");
        let crashed = m.flag("fault:crashed:svc.service");
        assert_eq!(m.flag_set_at(crashed).unwrap().as_millis(), 2);
        assert!(m.trace().events().iter().any(
            |e| matches!(&e.kind, TraceKind::FaultInjected { description }
                if description.contains("crash"))
        ));
    }

    #[test]
    fn crash_fault_hits_are_bounded_and_respawns_match() {
        let mut m = machine(1);
        let ready = m.flag("ready:svc");
        m.install_fault_plan(&FaultPlan {
            faults: vec![Fault::CrashAtReadiness {
                process: "svc.service".into(),
                hits: 2,
            }],
            seed: 0,
        });
        m.spawn(ProcessSpec::new(
            "svc.service",
            OpsBuilder::new().set_flag(ready).build(),
        ));
        m.spawn(ProcessSpec::new(
            "svc.service#1",
            OpsBuilder::new().set_flag(ready).build(),
        ));
        m.spawn(ProcessSpec::new(
            "svc.service#2",
            OpsBuilder::new().set_flag(ready).build(),
        ));
        let out = m.run();
        // First two incarnations crash; the third succeeds.
        assert_eq!(out.failed.len(), 2);
        assert!(m.flag_set_at(ready).is_some());
    }

    #[test]
    fn hang_fault_blocks_forever() {
        let mut m = machine(1);
        let ready = m.flag("ready:svc");
        let pid = m.spawn(ProcessSpec::new(
            "svc.service",
            OpsBuilder::new().compute_ms(1).set_flag(ready).build(),
        ));
        m.install_fault_plan(&FaultPlan {
            faults: vec![Fault::HangBeforeReady {
                process: "svc.service".into(),
                hits: 1,
            }],
            seed: 0,
        });
        let out = m.run();
        assert_eq!(out.blocked, vec![pid]);
        assert!(out.failed.is_empty());
        assert!(m.flag_set_at(ready).is_none());
    }

    #[test]
    fn transient_io_fault_delays_but_completes() {
        let run = |faults: Vec<Fault>| {
            let mut m = machine(1);
            let dev = m.add_device("emmc", DeviceProfile::from_mibs(1, 1, SimDuration::ZERO));
            m.install_fault_plan(&FaultPlan { faults, seed: 0 });
            m.spawn(ProcessSpec::new(
                "reader",
                OpsBuilder::new().read_seq(dev, crate::io::MIB).build(),
            ));
            let out = m.run();
            (out.end_time, m.device(dev).bytes_read)
        };
        let (clean, read) = run(vec![]);
        assert_eq!(clean.as_millis(), 1000);
        assert_eq!(read, crate::io::MIB);
        let (faulted, read) = run(vec![Fault::TransientIoError {
            device: "emmc".into(),
            failures: 2,
            retry_delay: SimDuration::from_millis(25),
        }]);
        // Two 25 ms backoffs before the read goes through.
        assert_eq!(faulted.as_millis(), 1050);
        assert_eq!(read, crate::io::MIB);
    }

    #[test]
    fn slow_device_fault_scales_service_time() {
        let mut m = machine(1);
        let dev = m.add_device("emmc", DeviceProfile::from_mibs(4, 4, SimDuration::ZERO));
        m.install_fault_plan(&FaultPlan {
            faults: vec![Fault::SlowDevice {
                device: "emmc".into(),
                factor: 4.0,
            }],
            seed: 0,
        });
        m.spawn(ProcessSpec::new(
            "reader",
            OpsBuilder::new().read_seq(dev, crate::io::MIB).build(),
        ));
        let out = m.run();
        // 4 MiB/s degraded to 1 MiB/s: 1 MiB takes a full second.
        assert_eq!(out.end_time.as_millis(), 1000);
    }

    #[test]
    fn empty_fault_plan_is_a_strict_noop() {
        let run = |install: bool| {
            let mut m = machine(2);
            let dev = m.add_device("emmc", DeviceProfile::tv_emmc());
            if install {
                m.install_fault_plan(&FaultPlan::none());
            }
            let f = m.flag("x");
            for i in 0..6 {
                m.spawn(ProcessSpec::new(
                    format!("svc{i}"),
                    OpsBuilder::new()
                        .compute_ms(1 + i % 3)
                        .read_rand(dev, 4096 * (i + 1))
                        .set_flag(f)
                        .build(),
                ));
            }
            let out = m.run();
            (out.end_time, m.trace().events().len())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn telemetry_records_without_perturbing_the_timeline() {
        let run = |enable: bool| {
            let mut m = Machine::new(MachineConfig {
                cores: 2,
                rcu_params: RcuParams {
                    base_grace_period: SimDuration::from_millis(5),
                    per_reader_extension: SimDuration::ZERO,
                    ctx_switch_cost: SimDuration::ZERO,
                    boosted_overhead: SimDuration::ZERO,
                    classic_overhead: SimDuration::ZERO,
                },
                ..MachineConfig::default()
            });
            if enable {
                m.enable_telemetry();
            }
            let dev = m.add_device("emmc", DeviceProfile::tv_emmc());
            let f = m.flag("x");
            m.spawn(ProcessSpec::new("syncer", vec![Op::RcuSync]));
            for i in 0..4 {
                m.spawn(ProcessSpec::new(
                    format!("svc{i}"),
                    OpsBuilder::new()
                        .compute_ms(1 + i % 2)
                        .read_rand(dev, 4096 * (i + 1))
                        .set_flag(f)
                        .build(),
                ));
            }
            let out = m.run();
            (out.end_time, m.trace().events().len(), m)
        };
        let (t_off, ev_off, m_off) = run(false);
        let (t_on, ev_on, m_on) = run(true);
        assert_eq!((t_off, ev_off), (t_on, ev_on));
        assert!(m_off.telemetry().is_none());
        let metrics = &m_on.telemetry().expect("enabled").metrics;
        assert_eq!(metrics.counter(telemetry::RCU_SYNCS), 1);
        assert_eq!(
            metrics
                .histogram(telemetry::IO_REQUEST_LATENCY_NS)
                .expect("io recorded")
                .count() as u64,
            m_on.sched_stats().io_requests
        );
        assert_eq!(
            metrics
                .histogram(telemetry::RUN_QUEUE_DEPTH)
                .expect("dispatches recorded")
                .count() as u64,
            m_on.sched_stats().dispatches
        );
    }

    #[test]
    fn yield_requeues_behind_peers() {
        let mut m = machine(1);
        m.spawn(ProcessSpec::new(
            "yielder",
            OpsBuilder::new()
                .compute_ms(1)
                .yield_now()
                .compute_ms(1)
                .build(),
        ));
        m.spawn(ProcessSpec::new(
            "other",
            OpsBuilder::new().compute_ms(1).build(),
        ));
        let out = m.run();
        assert_eq!(out.end_time.as_millis(), 3);
    }
}
