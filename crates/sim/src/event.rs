//! Deterministic event queue.
//!
//! A min-heap keyed on `(time, sequence)`. The sequence number is a
//! monotone counter assigned at push time, so events scheduled for the
//! same instant fire in submission order — this makes whole-simulation
//! runs bit-for-bit reproducible, which the test suite relies on.

use crate::ids::{CoreId, DeviceId, Pid};
use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The current compute slice of `pid` on `core` finished.
    SliceDone {
        /// Process whose slice ended.
        pid: Pid,
        /// Core it ran on.
        core: CoreId,
    },
    /// A non-preemptible RCU read-side hold by `pid` on `core` ended.
    ReadHoldDone {
        /// Process holding the read lock.
        pid: Pid,
        /// Core it ran on.
        core: CoreId,
    },
    /// The in-flight request of `device` completed.
    IoDone {
        /// Device whose head request finished.
        device: DeviceId,
    },
    /// The in-flight RCU grace period ended.
    RcuGraceDone,
    /// A sleeping process wakes.
    WakeUp {
        /// Process to wake.
        pid: Pid,
    },
    /// An externally scheduled process becomes ready (deferred spawns).
    ExternalSpawn {
        /// Index into the machine's pending-spawn table.
        spawn_slot: u32,
    },
    /// A [`crate::process::Op::TimedWaitFlag`] wait expired. Stale if the
    /// process's wait generation no longer matches `seq` (the flag woke
    /// it first); stale events are dropped without advancing time.
    FlagWaitTimeout {
        /// Waiting process.
        pid: Pid,
        /// Wait generation this timeout was armed for.
        seq: u64,
    },
}

/// A pending event. The `(time, seq)` ordering key is pre-packed into
/// one `u128` (`time` in the high 64 bits) so every heap sift is a
/// single integer compare instead of a two-field tuple compare — the
/// heap is the simulation loop's hottest data structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct QueuedEvent {
    key: u128,
    pub(crate) kind: EventKind,
}

impl QueuedEvent {
    pub(crate) fn new(time: SimTime, seq: u64, kind: EventKind) -> Self {
        QueuedEvent {
            key: ((time.as_nanos() as u128) << 64) | seq as u128,
            kind,
        }
    }

    pub(crate) fn time(&self) -> SimTime {
        SimTime::from_nanos((self.key >> 64) as u64)
    }

    pub(crate) fn seq(&self) -> u64 {
        self.key as u64
    }
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Host-side observability counters for an [`EventQueue`].
///
/// These describe the host's view of a run (how much work the queue
/// did), not simulated state: they are *not* serialized into snapshots,
/// and a machine restored from a snapshot starts them over from the
/// restored queue contents.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventQueueStats {
    /// Total events ever scheduled on this queue.
    pub scheduled: u64,
    /// High-water mark: the peak number of simultaneously pending
    /// events observed.
    pub peak_depth: usize,
}

/// The simulator's future-event list.
///
/// Hot-path layout: the earliest pending event is held in `front`; the
/// rest sit in `pool`, a flat *unordered* vector. Boot workloads keep
/// very few events in flight at once (the full TV boot peaks at ~8), so
/// extracting the minimum by linear scan — a handful of single-`u128`
/// compares over contiguous memory — beats a binary heap's sift
/// bookkeeping, and `push` is a plain append instead of an up-sift.
/// The dominant pop/push pattern of the simulation loop then costs one
/// scan plus one append, and the common drained-queue checks
/// (`peek_time`, `is_empty`) never touch the pool at all. Invariant:
/// `front` is `None` only when the pool is empty, and
/// `*front <= min(pool)` otherwise. Pool order is irrelevant to
/// behavior: extraction always takes the true minimum, and keys are
/// unique (the seq counter), so runs are deterministic.
#[derive(Debug, Default)]
pub struct EventQueue {
    front: Option<QueuedEvent>,
    pool: Vec<QueuedEvent>,
    next_seq: u64,
    peak_depth: usize,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty queue pre-sized for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            front: None,
            pool: Vec::with_capacity(cap.saturating_sub(1)),
            next_seq: 0,
            peak_depth: 0,
        }
    }

    /// Schedules `kind` to fire at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let e = QueuedEvent::new(time, self.next_seq, kind);
        self.next_seq += 1;
        match &mut self.front {
            None => self.front = Some(e),
            Some(f) => {
                let evicted = if e < *f { std::mem::replace(f, e) } else { e };
                self.pool.push(evicted);
            }
        }
        let depth = self.len();
        if depth > self.peak_depth {
            self.peak_depth = depth;
        }
    }

    /// Extracts the pool's minimum into `front` (linear scan).
    fn refill_front(&mut self) {
        let mut min = 0;
        let mut best = u128::MAX;
        for (i, e) in self.pool.iter().enumerate() {
            if e.key < best {
                best = e.key;
                min = i;
            }
        }
        if !self.pool.is_empty() {
            self.front = Some(self.pool.swap_remove(min));
        }
    }

    /// Removes and returns the earliest event, or `None` when drained.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        let e = self.front.take()?;
        self.refill_front();
        Some((e.time(), e.kind))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.front.map(|e| e.time())
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.pool.len() + usize::from(self.front.is_some())
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.front.is_none()
    }

    /// Observability counters (total scheduled, peak depth).
    pub fn stats(&self) -> EventQueueStats {
        EventQueueStats {
            scheduled: self.next_seq,
            peak_depth: self.peak_depth,
        }
    }

    /// Empties the queue and resets the sequence counter and counters,
    /// keeping the pool allocation (machine recycling).
    pub(crate) fn reset(&mut self) {
        self.front = None;
        self.pool.clear();
        self.next_seq = 0;
        self.peak_depth = 0;
    }

    /// Logical section view for the snapshot codec: every pending event
    /// in canonical `(time, seq)` order, independent of the internal
    /// front-slot/pool split. The on-disk v1 format serializes exactly
    /// this sequence.
    pub(crate) fn sorted_events(&self) -> Vec<QueuedEvent> {
        let mut v = self.pool.clone();
        if let Some(f) = self.front {
            v.push(f);
        }
        v.sort_unstable();
        v
    }

    /// The sequence counter the next push will use (snapshot codec).
    pub(crate) fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Moves `spare`'s pool allocation under this queue when it is
    /// larger, preserving this queue's contents (machine recycling:
    /// a restored machine inherits the previous boot's high-water
    /// capacity). Purely a capacity transfer — never observable.
    pub(crate) fn adopt_capacity(&mut self, mut spare: EventQueue) {
        if spare.pool.capacity() > self.pool.capacity() {
            spare.pool.clear();
            spare.pool.append(&mut self.pool);
            std::mem::swap(&mut self.pool, &mut spare.pool);
        }
    }

    /// Rebuilds a queue from a decoded snapshot section. Accepts
    /// `events` in any order (corrupt inputs must not break the
    /// front-slot invariant); the peak-depth counter restarts at the
    /// restored queue depth.
    pub(crate) fn from_parts(next_seq: u64, events: Vec<QueuedEvent>) -> Self {
        let mut q = EventQueue {
            front: None,
            pool: events,
            next_seq,
            peak_depth: 0,
        };
        q.refill_front();
        q.peak_depth = q.len();
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), EventKind::RcuGraceDone);
        q.push(
            SimTime::from_nanos(10),
            EventKind::WakeUp {
                pid: Pid::from_raw(1),
            },
        );
        q.push(
            SimTime::from_nanos(20),
            EventKind::IoDone {
                device: DeviceId::from_raw(0),
            },
        );
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_nanos())
            .collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_submission_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..4 {
            q.push(
                t,
                EventKind::WakeUp {
                    pid: Pid::from_raw(i),
                },
            );
        }
        let pids: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::WakeUp { pid } => pid.as_raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn interleaved_push_pop_keeps_global_order() {
        // Exercises the front-slot swap: later pushes that beat the
        // held minimum must evict it back into the heap.
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(50), EventKind::RcuGraceDone);
        q.push(SimTime::from_nanos(10), EventKind::RcuGraceDone);
        assert_eq!(q.pop().map(|(t, _)| t.as_nanos()), Some(10));
        q.push(SimTime::from_nanos(20), EventKind::RcuGraceDone);
        q.push(SimTime::from_nanos(60), EventKind::RcuGraceDone);
        q.push(SimTime::from_nanos(5), EventKind::RcuGraceDone);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_nanos())
            .collect();
        assert_eq!(times, vec![5, 20, 50, 60]);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn stats_track_scheduled_and_peak_depth() {
        let mut q = EventQueue::with_capacity(8);
        assert_eq!(q.stats(), EventQueueStats::default());
        for i in 0..5 {
            q.push(SimTime::from_nanos(i), EventKind::RcuGraceDone);
        }
        q.pop();
        q.pop();
        q.push(SimTime::from_nanos(99), EventKind::RcuGraceDone);
        let stats = q.stats();
        assert_eq!(stats.scheduled, 6);
        assert_eq!(stats.peak_depth, 5);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn from_parts_restores_any_input_order() {
        let events = vec![
            QueuedEvent::new(SimTime::from_nanos(30), 2, EventKind::RcuGraceDone),
            QueuedEvent::new(SimTime::from_nanos(10), 0, EventKind::RcuGraceDone),
            QueuedEvent::new(SimTime::from_nanos(20), 1, EventKind::RcuGraceDone),
        ];
        let mut q = EventQueue::from_parts(7, events);
        assert_eq!(q.next_seq(), 7);
        let times: Vec<u64> = q
            .sorted_events()
            .iter()
            .map(|e| e.time().as_nanos())
            .collect();
        assert_eq!(times, vec![10, 20, 30]);
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_nanos())
            .collect();
        assert_eq!(popped, vec![10, 20, 30]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(9), EventKind::RcuGraceDone);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
    }
}
