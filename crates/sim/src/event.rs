//! Deterministic event queue.
//!
//! A min-heap keyed on `(time, sequence)`. The sequence number is a
//! monotone counter assigned at push time, so events scheduled for the
//! same instant fire in submission order — this makes whole-simulation
//! runs bit-for-bit reproducible, which the test suite relies on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::ids::{CoreId, DeviceId, Pid};
use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The current compute slice of `pid` on `core` finished.
    SliceDone {
        /// Process whose slice ended.
        pid: Pid,
        /// Core it ran on.
        core: CoreId,
    },
    /// A non-preemptible RCU read-side hold by `pid` on `core` ended.
    ReadHoldDone {
        /// Process holding the read lock.
        pid: Pid,
        /// Core it ran on.
        core: CoreId,
    },
    /// The in-flight request of `device` completed.
    IoDone {
        /// Device whose head request finished.
        device: DeviceId,
    },
    /// The in-flight RCU grace period ended.
    RcuGraceDone,
    /// A sleeping process wakes.
    WakeUp {
        /// Process to wake.
        pid: Pid,
    },
    /// An externally scheduled process becomes ready (deferred spawns).
    ExternalSpawn {
        /// Index into the machine's pending-spawn table.
        spawn_slot: u32,
    },
    /// A [`crate::process::Op::TimedWaitFlag`] wait expired. Stale if the
    /// process's wait generation no longer matches `seq` (the flag woke
    /// it first); stale events are dropped without advancing time.
    FlagWaitTimeout {
        /// Waiting process.
        pid: Pid,
        /// Wait generation this timeout was armed for.
        seq: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct QueuedEvent {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulator's future-event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    pub(crate) heap: BinaryHeap<Reverse<QueuedEvent>>,
    pub(crate) next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(QueuedEvent { time, seq, kind }));
    }

    /// Removes and returns the earliest event, or `None` when drained.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.kind))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), EventKind::RcuGraceDone);
        q.push(
            SimTime::from_nanos(10),
            EventKind::WakeUp {
                pid: Pid::from_raw(1),
            },
        );
        q.push(
            SimTime::from_nanos(20),
            EventKind::IoDone {
                device: DeviceId::from_raw(0),
            },
        );
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_nanos())
            .collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_submission_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..4 {
            q.push(
                t,
                EventKind::WakeUp {
                    pid: Pid::from_raw(i),
                },
            );
        }
        let pids: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::WakeUp { pid } => pid.as_raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(9), EventKind::RcuGraceDone);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
    }
}
