//! # bb-sim — discrete-event machine simulator
//!
//! The substrate underneath the Booting Booster reproduction: a
//! deterministic discrete-event simulation of a multi-core consumer
//! electronics board — CPU cores with a priority scheduler, storage
//! devices with sequential/random bandwidth models, one-shot
//! synchronization flags, and an RCU engine with the paper's two
//! `synchronize_rcu` waiter strategies (spin vs. block).
//!
//! Everything above this crate (the simulated kernel, the init scheme,
//! the Booting Booster itself) expresses work as [`process::Op`] lists
//! executed by a [`machine::Machine`].
//!
//! # Examples
//!
//! ```
//! use bb_sim::machine::{Machine, MachineConfig};
//! use bb_sim::process::{OpsBuilder, ProcessSpec};
//!
//! let mut m = Machine::new(MachineConfig::default());
//! let ready = m.flag("db-ready");
//! m.spawn(ProcessSpec::new(
//!     "database",
//!     OpsBuilder::new().compute_ms(5).set_flag(ready).build(),
//! ));
//! m.spawn(ProcessSpec::new(
//!     "webapp",
//!     OpsBuilder::new().wait_flag(ready).compute_ms(2).build(),
//! ));
//! let outcome = m.run();
//! assert_eq!(outcome.end_time.as_millis(), 7);
//! ```

pub mod chrome;
pub mod corrupt;
pub mod event;
pub mod fault;
pub mod ids;
pub mod io;
pub mod machine;
pub mod process;
pub mod rcu;
pub mod snapshot;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use chrome::chrome_trace;
pub use corrupt::{Corruption, CorruptionPlan};
pub use event::{EventKind, EventQueue, EventQueueStats};
pub use fault::{Fault, FaultPlan, FaultTargets};
pub use ids::{CoreId, DeviceId, FlagId, Pid};
pub use io::{Device, DeviceProfile, IoPriority, MIB};
pub use machine::{Machine, MachineBuilder, MachineConfig, RunOutcome, SchedStats};
pub use process::{AccessPattern, Op, OpsBuilder, ProcessSpec};
pub use rcu::{RcuMode, RcuParams, RcuStats};
pub use snapshot::{SnapshotError, SnapshotHeader};
pub use telemetry::{Histogram, MetricsRegistry, Span, Telemetry};
pub use time::{SimDuration, SimTime};
pub use trace::{CoreSpan, ProcessTimeline, Trace, TraceEvent, TraceKind};
