//! Deterministic artifact corruption: seeded plans of byte-level damage
//! applied to *encoded* boot artifacts (pre-parsed unit blobs, machine
//! snapshots) before they are decoded.
//!
//! The paper's deployment story (§3.3–3.4) requires that a stale or
//! corrupt artifact never brick the device: the boot must detect the
//! damage and degrade (re-parse the unit text, cold-boot instead of
//! resuming) rather than crash or silently misbehave. To measure that
//! recovery envelope the same way [`crate::fault`] measures service
//! failures, a [`CorruptionPlan`] is a fixed list of byte mutations
//! resolved from a seed — so a chaos sweep over
//! `{seed × fault plan × corruption plan × config}` is exactly as
//! reproducible as a pristine run.
//!
//! Corruption vocabulary (matched to observed flash failure modes):
//!
//! - [`Corruption::BitFlip`]: a single bit inverted at an offset —
//!   flash-cell decay or an undetected DMA error.
//! - [`Corruption::Truncate`]: the artifact ends early — power loss
//!   before the final write completed.
//! - [`Corruption::TornWrite`]: the tail beyond an offset is replaced
//!   with zeros — power loss mid-write on a device that zero-fills
//!   allocated-but-unwritten blocks (also the shape of a stale
//!   generation whose tail sectors were reclaimed).
//! - [`Corruption::ZeroPage`]: one aligned 256-byte page zeroed — an
//!   erased-but-never-programmed flash page.
//!
//! Offsets are stored as raw `u64`s and resolved *modulo the artifact
//! length* at [`CorruptionPlan::apply`] time, so one plan is meaningful
//! against artifacts of any size (the chaos sweep applies the same plan
//! to blobs and snapshots of different scenarios).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Page size used by [`Corruption::ZeroPage`], in bytes. Small enough
/// that every artifact the simulator produces spans several pages.
pub const CORRUPT_PAGE: usize = 256;

/// One byte-level mutation of an encoded artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Corruption {
    /// Invert bit `bit` (0–7) of the byte at `offset % len`.
    BitFlip {
        /// Raw byte offset; resolved modulo the artifact length.
        offset: u64,
        /// Bit index within the byte (0 = LSB).
        bit: u8,
    },
    /// Truncate the artifact to `keep % (len + 1)` bytes (so a plan can
    /// cut anywhere from empty to one-byte-short).
    Truncate {
        /// Raw length to keep; resolved modulo `len + 1`.
        keep: u64,
    },
    /// Zero-fill every byte from `offset % len` to the end — a torn
    /// write whose tail never hit the medium.
    TornWrite {
        /// Raw byte offset; resolved modulo the artifact length.
        offset: u64,
    },
    /// Zero one aligned [`CORRUPT_PAGE`]-byte page (page index resolved
    /// modulo the artifact's page count).
    ZeroPage {
        /// Raw page index; resolved modulo the page count.
        page: u64,
    },
}

impl Corruption {
    /// Short human-readable description, used for reports and traces.
    pub fn describe(&self) -> String {
        match self {
            Corruption::BitFlip { offset, bit } => {
                format!("bit flip: offset {offset} bit {bit}")
            }
            Corruption::Truncate { keep } => format!("truncate: keep {keep}"),
            Corruption::TornWrite { offset } => format!("torn write: from offset {offset}"),
            Corruption::ZeroPage { page } => format!("zero page: page {page}"),
        }
    }

    /// Applies this mutation to `bytes` in place.
    fn apply(&self, bytes: &mut Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        let len = bytes.len() as u64;
        match *self {
            Corruption::BitFlip { offset, bit } => {
                let at = (offset % len) as usize;
                bytes[at] ^= 1 << (bit & 7);
            }
            Corruption::Truncate { keep } => {
                let keep = (keep % (len + 1)) as usize;
                bytes.truncate(keep);
            }
            Corruption::TornWrite { offset } => {
                let from = (offset % len) as usize;
                for b in &mut bytes[from..] {
                    *b = 0;
                }
            }
            Corruption::ZeroPage { page } => {
                let pages = bytes.len().div_ceil(CORRUPT_PAGE) as u64;
                let p = (page % pages) as usize;
                let start = p * CORRUPT_PAGE;
                let end = (start + CORRUPT_PAGE).min(bytes.len());
                for b in &mut bytes[start..end] {
                    *b = 0;
                }
            }
        }
    }
}

/// A fixed, reproducible set of artifact mutations.
///
/// Mirrors [`crate::fault::FaultPlan`]: hand-build the list or derive
/// it from a seed with [`CorruptionPlan::seeded`]; the same seed always
/// yields the same plan, and the empty plan is a strict no-op.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorruptionPlan {
    /// Mutations to apply, in order.
    pub corruptions: Vec<Corruption>,
    /// Seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
}

impl CorruptionPlan {
    /// The empty plan: applying it leaves every artifact untouched.
    pub fn none() -> Self {
        CorruptionPlan::default()
    }

    /// True if the plan mutates nothing.
    pub fn is_empty(&self) -> bool {
        self.corruptions.is_empty()
    }

    /// Generates a plan from a seed: 1–2 mutations drawn over the whole
    /// vocabulary. The same seed always yields the same plan.
    pub fn seeded(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut corruptions = Vec::new();
        let n = rng.gen_range(1u32..=2);
        for _ in 0..n {
            let c = match rng.gen_range(0u32..4) {
                0 => Corruption::BitFlip {
                    offset: rng.gen_range(0u64..1 << 20),
                    bit: rng.gen_range(0u8..8),
                },
                1 => Corruption::Truncate {
                    keep: rng.gen_range(0u64..1 << 20),
                },
                2 => Corruption::TornWrite {
                    offset: rng.gen_range(0u64..1 << 20),
                },
                _ => Corruption::ZeroPage {
                    page: rng.gen_range(0u64..1 << 12),
                },
            };
            corruptions.push(c);
        }
        CorruptionPlan { corruptions, seed }
    }

    /// Applies every mutation to `bytes` in order. Offsets resolve
    /// against the artifact's length *at that point in the sequence*
    /// (a truncation shrinks the target of later flips).
    pub fn apply(&self, bytes: &mut Vec<u8>) {
        for c in &self.corruptions {
            c.apply(bytes);
        }
    }

    /// Short human-readable description of the whole plan.
    pub fn describe(&self) -> String {
        if self.is_empty() {
            return "pristine".into();
        }
        self.corruptions
            .iter()
            .map(Corruption::describe)
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        assert_eq!(CorruptionPlan::seeded(7), CorruptionPlan::seeded(7));
        assert!(!CorruptionPlan::seeded(7).is_empty());
    }

    #[test]
    fn different_seeds_eventually_differ() {
        let base = CorruptionPlan::seeded(0);
        assert!((1..32).any(|s| CorruptionPlan::seeded(s) != base));
    }

    #[test]
    fn empty_plan_is_a_no_op() {
        let mut bytes = vec![1u8, 2, 3, 4];
        let before = bytes.clone();
        CorruptionPlan::none().apply(&mut bytes);
        assert_eq!(bytes, before);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let mut bytes = vec![0u8; 64];
        let plan = CorruptionPlan {
            corruptions: vec![Corruption::BitFlip { offset: 70, bit: 3 }],
            seed: 0,
        };
        plan.apply(&mut bytes);
        assert_eq!(bytes[70 % 64], 1 << 3);
        assert_eq!(bytes.iter().filter(|&&b| b != 0).count(), 1);
    }

    #[test]
    fn truncate_resolves_modulo_len_plus_one() {
        let mut bytes = vec![9u8; 10];
        let plan = CorruptionPlan {
            corruptions: vec![Corruption::Truncate { keep: 14 }],
            seed: 0,
        };
        plan.apply(&mut bytes);
        assert_eq!(bytes.len(), 14 % 11);
    }

    #[test]
    fn torn_write_zeroes_the_tail() {
        let mut bytes = vec![7u8; 16];
        let plan = CorruptionPlan {
            corruptions: vec![Corruption::TornWrite { offset: 4 }],
            seed: 0,
        };
        plan.apply(&mut bytes);
        assert_eq!(&bytes[..4], &[7, 7, 7, 7]);
        assert!(bytes[4..].iter().all(|&b| b == 0));
    }

    #[test]
    fn zero_page_zeroes_one_aligned_page() {
        let mut bytes = vec![5u8; CORRUPT_PAGE * 2 + 10];
        let plan = CorruptionPlan {
            corruptions: vec![Corruption::ZeroPage { page: 1 }],
            seed: 0,
        };
        plan.apply(&mut bytes);
        assert!(bytes[..CORRUPT_PAGE].iter().all(|&b| b == 5));
        assert!(bytes[CORRUPT_PAGE..2 * CORRUPT_PAGE]
            .iter()
            .all(|&b| b == 0));
        assert!(bytes[2 * CORRUPT_PAGE..].iter().all(|&b| b == 5));
    }

    #[test]
    fn apply_on_empty_artifact_is_safe() {
        let mut bytes = Vec::new();
        CorruptionPlan::seeded(3).apply(&mut bytes);
        assert!(bytes.is_empty());
    }

    #[test]
    fn descriptions_name_the_mutation() {
        assert!(CorruptionPlan::none().describe().contains("pristine"));
        let p = CorruptionPlan {
            corruptions: vec![Corruption::Truncate { keep: 3 }],
            seed: 0,
        };
        assert!(p.describe().contains("truncate"));
    }
}
