//! Machine profiles for the devices the paper discusses.
//!
//! The reference CPU of the simulator is one Cortex-A9 core of the
//! UE48H6200 at TV clocks: all workload durations are expressed in that
//! unit, and other devices scale via `core_speed`.

use bb_sim::{DeviceProfile, MachineConfig, RcuMode, RcuParams, SimDuration};

/// A named machine profile: CPU shape plus boot storage.
#[derive(Debug, Clone, Copy)]
pub struct MachineProfile {
    /// Profile name.
    pub name: &'static str,
    /// CPU/scheduler/RCU configuration.
    pub machine: MachineConfig,
    /// Boot storage device.
    pub storage: DeviceProfile,
    /// DRAM size in MiB (for memory-init and snapshot models).
    pub dram_mib: u64,
}

/// RCU engine parameters calibrated for boot-time behaviour on the TV's
/// kernel (grace periods sub-millisecond, modest reader extension).
pub fn tv_rcu_params() -> RcuParams {
    RcuParams {
        base_grace_period: SimDuration::from_micros(1800),
        per_reader_extension: SimDuration::from_micros(120),
        ctx_switch_cost: SimDuration::from_micros(35),
        boosted_overhead: SimDuration::from_micros(8),
        classic_overhead: SimDuration::from_micros(1),
    }
}

/// The Samsung UE48H6200 (2014): 4× Cortex-A9, 1 GiB DRAM, 8 GiB eMMC
/// at 117/37 MiB/s — the paper's evaluation platform (§4).
pub fn ue48h6200() -> MachineProfile {
    MachineProfile {
        name: "UE48H6200",
        machine: MachineConfig {
            cores: 4,
            core_speed: 1.0,
            quantum: SimDuration::from_millis(1),
            rcu_params: tv_rcu_params(),
            rcu_mode: RcuMode::ClassicSpin,
        },
        storage: DeviceProfile::tv_emmc(),
        dram_mib: 1024,
    }
}

/// An eight-core flagship TV SoC (Samsung JS9500 class, §1).
pub fn js9500() -> MachineProfile {
    MachineProfile {
        name: "JS9500",
        machine: MachineConfig {
            cores: 8,
            core_speed: 1.6,
            quantum: SimDuration::from_millis(1),
            rcu_params: tv_rcu_params(),
            rcu_mode: RcuMode::ClassicSpin,
        },
        storage: DeviceProfile::tv_emmc(),
        dram_mib: 2560,
    }
}

/// An NX300-class mirrorless camera: two slower cores, 512 MiB,
/// eMMC-grade storage (§2.1).
pub fn nx300() -> MachineProfile {
    MachineProfile {
        name: "NX300",
        machine: MachineConfig {
            cores: 2,
            core_speed: 0.8,
            quantum: SimDuration::from_millis(1),
            rcu_params: tv_rcu_params(),
            rcu_mode: RcuMode::ClassicSpin,
        },
        storage: DeviceProfile::tv_emmc(),
        dram_mib: 512,
    }
}

/// A Galaxy-S6-class phone: 8 cores, 3 GiB, UFS 2.0 (§2.1/§2.3).
pub fn galaxy_s6() -> MachineProfile {
    MachineProfile {
        name: "GalaxyS6",
        machine: MachineConfig {
            cores: 8,
            core_speed: 2.2,
            quantum: SimDuration::from_millis(1),
            rcu_params: tv_rcu_params(),
            rcu_mode: RcuMode::ClassicSpin,
        },
        storage: DeviceProfile::ufs20(),
        dram_mib: 3 * 1024,
    }
}

/// A desktop with a consumer SSD (850 Evo class, §4).
pub fn desktop_ssd() -> MachineProfile {
    MachineProfile {
        name: "desktop-ssd",
        machine: MachineConfig {
            cores: 4,
            core_speed: 3.0,
            quantum: SimDuration::from_millis(1),
            rcu_params: tv_rcu_params(),
            rcu_mode: RcuMode::ClassicSpin,
        },
        storage: DeviceProfile::consumer_ssd(),
        dram_mib: 8 * 1024,
    }
}

/// A desktop with a consumer HDD (Barracuda class, §4).
pub fn desktop_hdd() -> MachineProfile {
    MachineProfile {
        name: "desktop-hdd",
        machine: MachineConfig {
            cores: 4,
            core_speed: 3.0,
            quantum: SimDuration::from_millis(1),
            rcu_params: tv_rcu_params(),
            rcu_mode: RcuMode::ClassicSpin,
        },
        storage: DeviceProfile::consumer_hdd(),
        dram_mib: 8 * 1024,
    }
}

/// Every profile, for sweep experiments.
pub fn all_profiles() -> Vec<MachineProfile> {
    vec![
        ue48h6200(),
        js9500(),
        nx300(),
        galaxy_s6(),
        desktop_ssd(),
        desktop_hdd(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tv_profile_matches_paper_hardware() {
        let p = ue48h6200();
        assert_eq!(p.machine.cores, 4);
        assert_eq!(p.dram_mib, 1024);
        assert_eq!(p.storage.seq_read_bps / bb_sim::MIB, 117);
        assert_eq!(p.storage.rand_read_bps / bb_sim::MIB, 37);
    }

    #[test]
    fn profiles_are_distinct_and_plausible() {
        let all = all_profiles();
        assert_eq!(all.len(), 6);
        let names: std::collections::BTreeSet<_> = all.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 6);
        for p in &all {
            assert!(p.machine.cores >= 1 && p.machine.cores <= 16);
            assert!(p.machine.core_speed > 0.1);
            assert!(p.dram_mib >= 256);
        }
    }

    #[test]
    fn faster_devices_have_faster_cores() {
        assert!(galaxy_s6().machine.core_speed > ue48h6200().machine.core_speed);
        assert!(nx300().machine.core_speed < ue48h6200().machine.core_speed);
    }
}
