//! Synthetic Tizen TV service set: the Figure 2 graph and its workloads.
//!
//! Samsung's actual unit files are not public, so this generator
//! reproduces the *published structure*: 136 services at open-source
//! scale growing to 250+ through commercialization (§2.5); a strong
//! backbone `var.mount → dbus.socket/dbus.service → tuner/hdmi/demux →
//! fasttv` whose strong closure is the seven-member BB Group the paper
//! names (mount, socket, dbus, tuner, hdmi, demux, fasttv; §3.3); heavy
//! fan-in to dbus; layered driver/middleware/application groups; and
//! about a dozen developer-added `Before=var.mount` orderings (§4.2).
//!
//! All jitter is drawn from a seeded RNG: the same parameters always
//! produce the same workload, which the determinism tests rely on.

use bb_init::{ServiceBody, ServiceType, Unit, UnitName, WorkloadMap};
use bb_sim::{DeviceId, OpsBuilder, SimDuration};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct TizenParams {
    /// Total service count (including the backbone; minimum 24).
    pub services: usize,
    /// RNG seed for duration/edge jitter.
    pub seed: u64,
    /// Developer-added `Before=var.mount` orderings (§4.2: "about a
    /// dozen in the final release").
    pub false_ordering_edges: usize,
    /// Multiplier on service CPU durations (calibration).
    pub work_scale: f64,
    /// Multiplier on per-service `synchronize_rcu` counts (calibration).
    pub rcu_scale: f64,
    /// Multiplier on service I/O bytes (calibration).
    pub io_scale: f64,
}

impl Default for TizenParams {
    fn default() -> Self {
        TizenParams {
            services: 136,
            seed: 2016,
            false_ordering_edges: 12,
            work_scale: 1.0,
            rcu_scale: 1.0,
            io_scale: 1.0,
        }
    }
}

impl TizenParams {
    /// The open-source 136-service graph of Figure 2.
    pub fn open_source() -> Self {
        Self::default()
    }

    /// The commercialized fork: 250+ services, more false orderings.
    pub fn commercial() -> Self {
        TizenParams {
            services: 250,
            false_ordering_edges: 18,
            ..Self::default()
        }
    }
}

/// The generated workload.
#[derive(Debug, Clone)]
pub struct TizenWorkload {
    /// All units (first entry is the boot target).
    pub units: Vec<Unit>,
    /// Service bodies keyed by `ExecStart=`.
    pub workloads: WorkloadMap,
    /// Boot target name.
    pub target: String,
    /// Boot-completion definition (§2: channel shown + remote input).
    pub completion: Vec<UnitName>,
    /// The seven services the paper names as the 2015 BB Group.
    pub paper_bb_group: Vec<UnitName>,
}

/// Generates the Tizen TV workload.
///
/// # Panics
///
/// Panics if `params.services < 24` (the backbone plus minimal layers).
pub fn tizen_tv(params: &TizenParams, device: DeviceId) -> TizenWorkload {
    assert!(params.services >= 24, "need at least 24 services");
    // The backbone (the vendor's own broadcast chain) is stable across
    // platform churn: its durations come from a fixed stream. `seed`
    // only varies the bulk services — the fellow-developer churn of
    // §2.5.3 that instance-variance experiments regenerate.
    let mut backbone_rng = SmallRng::seed_from_u64(0xBB);
    let mut bulk_rng = SmallRng::seed_from_u64(params.seed);
    let mut units: Vec<Unit> = Vec::with_capacity(params.services + 1);
    let mut workloads = WorkloadMap::new();

    let target = "tv-boot.target".to_owned();
    units.push(
        Unit::new(UnitName::new(target.clone()))
            .requires("fasttv.service")
            .with_description("TV boot completion target"),
    );

    // --- Backbone: the strong chain whose closure is the BB Group. ---
    let add =
        |units: &mut Vec<Unit>, workloads: &mut WorkloadMap, unit: Unit, body: ServiceBody| {
            let exec = format!("wl:{}", unit.name);
            let unit = unit.with_exec(exec.clone()).wanted_by("tv-boot.target");
            workloads.insert(exec, body);
            units.push(unit);
        };

    let cpu = |rng: &mut SmallRng, lo: u64, hi: u64, scale: f64| {
        SimDuration::from_millis(rng.gen_range(lo..=hi)).scale(scale)
    };

    add(
        &mut units,
        &mut workloads,
        Unit::new(UnitName::new("var.mount"))
            .with_type(ServiceType::Oneshot)
            .with_description("Mount /var"),
        ServiceBody {
            pre_ready: OpsBuilder::new()
                .read_rand(device, (192.0 * 1024.0 * params.io_scale) as u64)
                .compute(cpu(&mut backbone_rng, 4, 6, params.work_scale))
                .build(),
            post_ready: Vec::new(),
        },
    );
    add(
        &mut units,
        &mut workloads,
        Unit::new(UnitName::new("dbus.socket"))
            .needs("var.mount")
            .with_description("D-Bus activation socket"),
        ServiceBody {
            pre_ready: OpsBuilder::new()
                .compute(cpu(&mut backbone_rng, 1, 2, params.work_scale))
                .build(),
            post_ready: Vec::new(),
        },
    );
    add(
        &mut units,
        &mut workloads,
        Unit::new(UnitName::new("dbus.service"))
            .needs("var.mount")
            .after("dbus.socket")
            .with_type(ServiceType::Forking)
            .with_description("D-Bus IPC daemon"),
        ServiceBody {
            pre_ready: OpsBuilder::new()
                .read_rand(device, (64.0 * 1024.0 * params.io_scale) as u64)
                .compute(cpu(&mut backbone_rng, 55, 70, params.work_scale))
                .build(),
            post_ready: OpsBuilder::new()
                .compute(cpu(&mut backbone_rng, 8, 15, params.work_scale))
                .build(),
        },
    );
    // Broadcast-path bring-up is physically slow: tuner lock, HDMI
    // handshake, and demux pipeline setup involve hardware settle times
    // (off-CPU sleeps) on top of driver CPU work. This is why the BB
    // floor is still seconds, not milliseconds.
    for (name, cpu_range, settle_ms, rcu, io_kib) in [
        ("tuner.service", (220u64, 280u64), 250u64, 10usize, 256u64),
        ("hdmi.service", (90, 120), 180, 7, 128),
        ("demux.service", (70, 100), 120, 6, 96),
    ] {
        let syncs = (rcu as f64 * params.rcu_scale).round() as usize;
        add(
            &mut units,
            &mut workloads,
            Unit::new(UnitName::new(name))
                .needs("dbus.service")
                .after("dbus.socket")
                .with_type(ServiceType::Forking)
                .with_description("Broadcast-path driver service"),
            ServiceBody {
                pre_ready: OpsBuilder::new()
                    .read_rand(device, (io_kib as f64 * 1024.0 * params.io_scale) as u64)
                    .compute(cpu(
                        &mut backbone_rng,
                        cpu_range.0,
                        cpu_range.1,
                        params.work_scale,
                    ))
                    .sleep(SimDuration::from_millis(settle_ms))
                    .rcu_syncs(syncs, SimDuration::from_micros(150))
                    .build(),
                post_ready: Vec::new(),
            },
        );
    }
    add(
        &mut units,
        &mut workloads,
        Unit::new(UnitName::new("fasttv.service"))
            .needs("tuner.service")
            .needs("hdmi.service")
            .needs("demux.service")
            .needs("dbus.service")
            .after("dbus.socket")
            .with_type(ServiceType::Forking)
            .with_description("Broadcast channel application (boot completion)"),
        ServiceBody {
            pre_ready: OpsBuilder::new()
                .read_seq(device, (18.0 * 1024.0 * 1024.0 * params.io_scale) as u64)
                .compute(cpu(&mut backbone_rng, 1650, 1850, params.work_scale))
                .rcu_syncs(
                    (4.0 * params.rcu_scale).round() as usize,
                    SimDuration::from_micros(150),
                )
                .build(),
            post_ready: Vec::new(),
        },
    );
    // Early infra services outside the critical chain.
    for name in ["journald.service", "udevd.service"] {
        add(
            &mut units,
            &mut workloads,
            Unit::new(UnitName::new(name))
                .after("var.mount")
                .with_type(ServiceType::Forking)
                .with_description("Core infrastructure daemon"),
            ServiceBody {
                pre_ready: OpsBuilder::new()
                    .compute(cpu(&mut backbone_rng, 8, 15, params.work_scale))
                    .build(),
                post_ready: Vec::new(),
            },
        );
    }

    let backbone_count = units.len() - 1; // minus the target

    // --- Layered bulk: drivers / middleware / apps. ---
    let remaining = params.services - backbone_count;
    let n_driver = remaining * 20 / 100;
    let n_middleware = remaining * 40 / 100;
    let n_app = remaining - n_driver - n_middleware;

    let mut middleware_names: Vec<String> = Vec::new();
    let mut bulk_names: Vec<String> = Vec::new();

    for i in 0..n_driver {
        let name = format!("driver-{i:02}.service");
        let syncs = (bulk_rng.gen_range(13..=36) as f64 * params.rcu_scale).round() as usize;
        let body = ServiceBody {
            pre_ready: OpsBuilder::new()
                .read_rand(
                    device,
                    (bulk_rng.gen_range(64..=512) as f64 * 1024.0 * params.io_scale) as u64,
                )
                .compute(cpu(&mut bulk_rng, 17, 68, params.work_scale))
                .rcu_syncs(syncs, SimDuration::from_micros(200))
                .build(),
            post_ready: Vec::new(),
        };
        add(
            &mut units,
            &mut workloads,
            Unit::new(UnitName::new(name.clone()))
                .after("udevd.service")
                .wants("journald.service")
                .with_type(ServiceType::Forking)
                .with_description("Peripheral driver service"),
            body,
        );
        bulk_names.push(name);
    }
    for i in 0..n_middleware {
        let name = format!("middleware-{i:02}.service");
        let syncs = (bulk_rng.gen_range(7..=20) as f64 * params.rcu_scale).round() as usize;
        let mut unit = Unit::new(UnitName::new(name.clone()))
            .needs("dbus.service")
            .with_type(ServiceType::Forking)
            .with_description("Platform middleware service");
        // Intra-group ordering chains (teams order their own services).
        if i > 0 && bulk_rng.gen_bool(0.3) {
            unit = unit.after(&format!(
                "middleware-{:02}.service",
                bulk_rng.gen_range(0..i)
            ));
        }
        let body = ServiceBody {
            pre_ready: OpsBuilder::new()
                .read_rand(
                    device,
                    (bulk_rng.gen_range(32..=256) as f64 * 1024.0 * params.io_scale) as u64,
                )
                .compute(cpu(&mut bulk_rng, 12, 48, params.work_scale))
                .rcu_syncs(syncs, SimDuration::from_micros(200))
                .build(),
            post_ready: OpsBuilder::new()
                .compute(cpu(&mut bulk_rng, 2, 10, params.work_scale))
                .build(),
        };
        add(&mut units, &mut workloads, unit, body);
        middleware_names.push(name.clone());
        bulk_names.push(name);
    }
    for i in 0..n_app {
        let name = format!("app-{i:02}.service");
        let syncs = (bulk_rng.gen_range(2..=11) as f64 * params.rcu_scale).round() as usize;
        let mut unit = Unit::new(UnitName::new(name.clone()))
            .needs("dbus.service")
            .with_type(ServiceType::Forking)
            .with_description("Pre-loaded application service");
        // Apps depend on one or two middleware services.
        if !middleware_names.is_empty() {
            for _ in 0..bulk_rng.gen_range(1..=2usize) {
                let m = &middleware_names[bulk_rng.gen_range(0..middleware_names.len())];
                unit = unit.needs(m);
            }
        }
        let body = ServiceBody {
            pre_ready: OpsBuilder::new()
                .read_rand(
                    device,
                    (bulk_rng.gen_range(128..=768) as f64 * 1024.0 * params.io_scale) as u64,
                )
                .compute(cpu(&mut bulk_rng, 21, 68, params.work_scale))
                .rcu_syncs(syncs, SimDuration::from_micros(250))
                .build(),
            post_ready: Vec::new(),
        };
        add(&mut units, &mut workloads, unit, body);
        bulk_names.push(name);
    }

    // --- §4.2 abuse: Before=var.mount from non-critical services. ---
    // Candidates must not (transitively) depend on anything ordered
    // after var.mount, so use driver-class services (ordered only after
    // udevd) and synthesize extras if needed.
    let mut abusers = 0;
    for u in units.iter_mut() {
        if abusers >= params.false_ordering_edges {
            break;
        }
        if u.name.as_str().starts_with("driver-") {
            u.before.push(UnitName::new("var.mount"));
            // Drop the udevd ordering: these want to run first of all.
            u.after.clear();
            u.wants.clear();
            abusers += 1;
        }
    }
    while abusers < params.false_ordering_edges {
        let name = format!("earlybird-{abusers:02}.service");
        add(
            &mut units,
            &mut workloads,
            Unit::new(UnitName::new(name))
                .before("var.mount")
                .with_type(ServiceType::Forking)
                .with_description("Service that wants to launch first (§4.2)"),
            ServiceBody {
                pre_ready: OpsBuilder::new()
                    .compute(cpu(&mut bulk_rng, 20, 60, params.work_scale))
                    .build(),
                post_ready: Vec::new(),
            },
        );
        abusers += 1;
    }

    TizenWorkload {
        units,
        workloads,
        target,
        completion: vec![UnitName::new("fasttv.service")],
        paper_bb_group: [
            "var.mount",
            "dbus.socket",
            "dbus.service",
            "tuner.service",
            "hdmi.service",
            "demux.service",
            "fasttv.service",
        ]
        .iter()
        .map(|n| UnitName::new(*n))
        .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_init::{Transaction, UnitGraph};

    fn device() -> DeviceId {
        DeviceId::from_raw(0)
    }

    #[test]
    fn default_graph_has_136_services() {
        let w = tizen_tv(&TizenParams::open_source(), device());
        // +1 for the target unit.
        assert_eq!(w.units.len(), 137);
        assert_eq!(w.workloads.len(), 136);
    }

    #[test]
    fn commercial_graph_nearly_doubles() {
        let w = tizen_tv(&TizenParams::commercial(), device());
        assert_eq!(w.units.len(), 251);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tizen_tv(&TizenParams::open_source(), device());
        let b = tizen_tv(&TizenParams::open_source(), device());
        assert_eq!(a.units, b.units);
        // Workload op counts match too.
        for (k, body) in &a.workloads {
            assert_eq!(body.pre_ready.len(), b.workloads[k].pre_ready.len());
        }
    }

    #[test]
    fn graph_builds_and_transaction_is_acyclic() {
        for params in [TizenParams::open_source(), TizenParams::commercial()] {
            let w = tizen_tv(&params, device());
            let g = UnitGraph::build(w.units.clone()).unwrap();
            let tx = Transaction::build(&g, &w.target).unwrap();
            assert_eq!(tx.jobs.len(), w.units.len(), "all units pulled in");
            assert!(tx.dropped_jobs.is_empty());
        }
    }

    #[test]
    fn bb_group_closure_is_the_paper_seven() {
        let w = tizen_tv(&TizenParams::open_source(), device());
        let g = UnitGraph::build(w.units.clone()).unwrap();
        let seeds = vec![g.idx_of("fasttv.service")];
        let group = g.strong_closure(seeds);
        let mut names: Vec<&str> = group.iter().map(|&i| g.unit(i).name.as_str()).collect();
        names.sort_unstable();
        let mut expected: Vec<&str> = w.paper_bb_group.iter().map(|n| n.as_str()).collect();
        expected.sort_unstable();
        assert_eq!(names, expected);
    }

    #[test]
    fn false_ordering_edges_target_var_mount() {
        let w = tizen_tv(&TizenParams::open_source(), device());
        let abusers = w
            .units
            .iter()
            .filter(|u| u.before.iter().any(|b| b.as_str() == "var.mount"))
            .count();
        assert_eq!(abusers, 12);
    }

    #[test]
    fn dbus_has_large_fan_in() {
        let w = tizen_tv(&TizenParams::open_source(), device());
        let g = UnitGraph::build(w.units.clone()).unwrap();
        let dbus = g.idx_of("dbus.service");
        let fan_in = g
            .edges()
            .iter()
            .filter(|e| e.src == dbus && e.kind == bb_init::EdgeKind::RequiresStrong)
            .count();
        // Most middleware and apps require dbus (Figure 2's hub shape).
        assert!(fan_in > 50, "dbus fan-in only {fan_in}");
    }

    #[test]
    fn scales_apply_to_bodies() {
        let light = tizen_tv(
            &TizenParams {
                work_scale: 0.5,
                ..TizenParams::default()
            },
            device(),
        );
        let heavy = tizen_tv(
            &TizenParams {
                work_scale: 2.0,
                ..TizenParams::default()
            },
            device(),
        );
        let total = |w: &TizenWorkload| -> u64 {
            w.workloads
                .values()
                .flat_map(|b| b.pre_ready.iter().chain(b.post_ready.iter()))
                .map(|op| match op {
                    bb_sim::Op::Compute(d) => d.as_nanos(),
                    _ => 0,
                })
                .sum()
        };
        assert!(total(&heavy) > total(&light) * 3);
    }

    #[test]
    #[should_panic(expected = "at least 24")]
    fn tiny_service_count_rejected() {
        tizen_tv(
            &TizenParams {
                services: 10,
                ..TizenParams::default()
            },
            device(),
        );
    }
}
