//! Experiment scenarios: full [`Scenario`]s assembled from machine
//! profiles, kernel plans, and generated workloads.

use bb_core::{ParseCostParams, Scenario};
use bb_init::ManagerCosts;
use bb_kernel::{
    synthetic_catalog, Criticality, Initcall, InitcallLevel, InitcallRegistry, KernelPlan,
    MemoryPlan, RootfsPlan,
};
use bb_sim::{DeviceId, SimDuration, MIB};

use crate::profiles::{self, MachineProfile};
use crate::tizen::{tizen_tv, TizenParams};

/// The kernel plan of the UE48H6200, calibrated to Figure 6(a):
/// conventional kernel ≈698 ms (memory 370, rootfs 110, residual 218)
/// and BB kernel ≈403 ms (memory 110, rootfs 75, residual 218). The
/// initcall registry contains only boot-critical built-ins — the TV's
/// deferrable components are its 408 loadable modules, handled by the
/// On-demand Modularizer during the service phase.
pub fn tv_kernel_plan() -> KernelPlan {
    let mut initcalls = InitcallRegistry::new();
    for (name, level, ms) in [
        ("clk-core", InitcallLevel::Core, 8u64),
        ("pinctrl", InitcallLevel::PostCore, 6),
        ("power-domains", InitcallLevel::Arch, 9),
        ("emmc-host", InitcallLevel::Subsys, 24),
        ("display-panel", InitcallLevel::Subsys, 22),
        ("video-core", InitcallLevel::Subsys, 18),
        ("ext4-core", InitcallLevel::Fs, 8),
        ("input-core", InitcallLevel::Device, 5),
    ] {
        initcalls.register(Initcall::new(
            name,
            level,
            SimDuration::from_millis(ms),
            Criticality::BootCritical,
        ));
    }
    KernelPlan {
        bootloader: SimDuration::from_millis(160),
        image_bytes: 10 * MIB,
        memory: MemoryPlan::tv_1gib(),
        initcalls,
        rootfs: RootfsPlan::tv_emmc(),
        misc: SimDuration::from_millis(118),
        defer_memory: false,
        defer_initcalls: false,
        defer_journal: false,
    }
}

/// The headline scenario: the UE48H6200 running the commercialized
/// (250-service) Tizen TV software stack with 408 loadable kernel
/// modules — the configuration behind the paper's Figure 6.
pub fn tv_scenario() -> Scenario {
    tv_scenario_with(profiles::ue48h6200(), TizenParams::commercial())
}

/// The open-source (136-service) variant of the TV scenario (Figure 2).
pub fn tv_scenario_open_source() -> Scenario {
    tv_scenario_with(profiles::ue48h6200(), TizenParams::open_source())
}

/// Assembles a TV scenario from any machine profile and Tizen
/// parameters (used by scaling sweeps).
pub fn tv_scenario_with(profile: MachineProfile, params: TizenParams) -> Scenario {
    // By convention the boot device is the machine's device 0.
    let workload = tizen_tv(&params, DeviceId::from_raw(0));
    Scenario {
        name: format!("{}-tizen{}", profile.name, params.services),
        machine: profile.machine,
        storage: profile.storage,
        kernel: tv_kernel_plan(),
        modules: synthetic_catalog(408),
        units: workload.units,
        workloads: workload.workloads,
        target: workload.target,
        completion: workload.completion,
        manager_costs: ManagerCosts::default(),
        parse_params: ParseCostParams::default(),
        extra_init_tasks: Vec::new(),
    }
}

/// An NX300-class camera scenario: a much smaller service set (no app
/// store), two slower cores, and a shutter-readiness completion.
pub fn camera_scenario() -> Scenario {
    let profile = profiles::nx300();
    let params = TizenParams {
        services: 40,
        seed: 300,
        false_ordering_edges: 3,
        ..TizenParams::default()
    };
    let workload = tizen_tv(&params, DeviceId::from_raw(0));
    let mut kernel = tv_kernel_plan();
    kernel.memory = MemoryPlan {
        total_mib: 512,
        required_mib: 160,
        base_cost: SimDuration::from_millis(3),
        per_mib_cost: SimDuration::from_micros(357),
    };
    Scenario {
        name: "NX300-camera".into(),
        machine: profile.machine,
        storage: profile.storage,
        kernel,
        modules: synthetic_catalog(120),
        units: workload.units,
        workloads: workload.workloads,
        target: workload.target,
        completion: workload.completion,
        manager_costs: ManagerCosts::default(),
        parse_params: ParseCostParams::default(),
        extra_init_tasks: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_core::{BbConfig, BootRequest, FullBootReport};

    fn boost(s: &Scenario, cfg: &BbConfig) -> Result<FullBootReport, bb_core::Error> {
        Ok(BootRequest::new(s).config(*cfg).run()?.report)
    }

    #[test]
    fn tv_kernel_phases_match_figure6a() {
        use bb_kernel::execute_kernel_boot;
        use bb_sim::{DeviceProfile, Machine};

        let run = |defer: bool| {
            let mut plan = tv_kernel_plan();
            plan.defer_memory = defer;
            plan.defer_journal = defer;
            let mut m = Machine::new(profiles::ue48h6200().machine);
            let dev = m.add_device("emmc", DeviceProfile::tv_emmc());
            let gate = m.flag("boot-complete");
            execute_kernel_boot(&mut m, dev, &plan, gate)
        };
        let conv = run(false);
        let bb = run(true);
        let conv_total = conv.kernel_total().as_millis();
        let bb_total = bb.kernel_total().as_millis();
        assert!(
            (660..=740).contains(&conv_total),
            "conventional kernel {conv_total} ms (paper: 698)"
        );
        assert!(
            (370..=440).contains(&bb_total),
            "bb kernel {bb_total} ms (paper: 403)"
        );
    }

    #[test]
    fn camera_scenario_boots_both_ways() {
        let s = camera_scenario();
        let conv = boost(&s, &BbConfig::conventional()).unwrap();
        let bb = boost(&s, &BbConfig::full()).unwrap();
        assert!(bb.boot_time() < conv.boot_time());
    }

    #[test]
    fn tv_scenario_shape_matches_paper() {
        // The headline calibration: conventional ≈ 8.1 s, BB ≈ 3.5 s.
        // Bands are generous (we reproduce shape, not the testbed), but
        // tight enough that the mechanisms must actually work.
        let s = tv_scenario();
        let conv = boost(&s, &BbConfig::conventional()).unwrap();
        let bb = boost(&s, &BbConfig::full()).unwrap();
        let conv_s = conv.boot_time().as_secs_f64();
        let bb_s = bb.boot_time().as_secs_f64();
        eprintln!("conventional {conv_s:.3} s, bb {bb_s:.3} s");
        assert!(
            (7.0..9.2).contains(&conv_s),
            "conventional {conv_s:.3} s (paper: 8.1)"
        );
        assert!((3.0..4.0).contains(&bb_s), "bb {bb_s:.3} s (paper: 3.5)");
        let reduction = 100.0 * (conv_s - bb_s) / conv_s;
        assert!(
            (45.0..70.0).contains(&reduction),
            "reduction {reduction:.1}% (paper: ~57%)"
        );
        // The automatically identified group is the paper's seven.
        assert_eq!(bb.bb_group.len(), 7);
    }
}
