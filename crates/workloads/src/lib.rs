//! # bb-workloads — machine profiles, workload generators, scenarios
//!
//! Everything the experiments run on: machine profiles of the devices
//! the paper discusses ([`profiles`]), the deterministic synthetic
//! Tizen TV service graph mirroring Figure 2 ([`tizen`]), and fully
//! assembled boot scenarios ([`scenario`]) — most importantly
//! [`scenario::tv_scenario`], the UE48H6200-with-commercial-Tizen
//! configuration behind the paper's headline Figure 6 numbers.

pub mod custom;
pub mod profiles;
pub mod scenario;
pub mod tizen;

pub use custom::{custom_scenario, custom_scenario_with_modules, default_body};
pub use profiles::MachineProfile;
pub use scenario::{
    camera_scenario, tv_kernel_plan, tv_scenario, tv_scenario_open_source, tv_scenario_with,
};
pub use tizen::{tizen_tv, TizenParams, TizenWorkload};
