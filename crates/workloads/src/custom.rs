//! Custom scenarios: boot *your own* unit files on a simulated device.
//!
//! Downstream users point the tools at a directory of systemd unit
//! files; this module turns the parsed units into a runnable
//! [`Scenario`] by synthesizing deterministic service bodies from the
//! unit metadata (service type, I/O class, and a name-seeded size).
//! Costs are explicitly synthetic — the point is exploring *structure*
//! (ordering, isolation, the BB Group) of a real unit set, not
//! predicting its absolute boot time.

use bb_core::{ParseCostParams, Scenario};
use bb_init::{ManagerCosts, ServiceBody, Unit, UnitKind, UnitName, WorkloadMap};
use bb_kernel::{synthetic_catalog, ModuleCatalog};
use bb_sim::{DeviceId, OpsBuilder, SimDuration};

use crate::profiles::MachineProfile;
use crate::scenario::tv_kernel_plan;

/// Deterministic small hash of a name (FNV-1a), for body-size jitter.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Synthesizes a plausible body for a unit: mounts do metadata I/O,
/// sockets are nearly free, services mix CPU, flash reads, and a few
/// `synchronize_rcu` calls, all scaled deterministically by name.
pub fn default_body(unit: &Unit, device: DeviceId) -> ServiceBody {
    let h = name_hash(unit.name.as_str());
    match unit.name.kind() {
        UnitKind::Mount => ServiceBody {
            pre_ready: OpsBuilder::new()
                .read_rand(device, 128 * 1024 + h % (128 * 1024))
                .compute(SimDuration::from_millis(3 + h % 5))
                .build(),
            post_ready: Vec::new(),
        },
        UnitKind::Socket | UnitKind::Target | UnitKind::Device => ServiceBody {
            pre_ready: OpsBuilder::new()
                .compute(SimDuration::from_millis(1))
                .build(),
            post_ready: Vec::new(),
        },
        UnitKind::Service => ServiceBody {
            pre_ready: OpsBuilder::new()
                .read_rand(device, 64 * 1024 + h % (256 * 1024))
                .compute(SimDuration::from_millis(15 + h % 60))
                .rcu_syncs((2 + h % 7) as usize, SimDuration::from_micros(200))
                .build(),
            post_ready: Vec::new(),
        },
    }
}

/// Builds a scenario from parsed units with synthesized bodies.
///
/// `target` is the boot target to expand; `completion` names the units
/// whose readiness defines boot completion (they must exist).
///
/// # Panics
///
/// Panics if `completion` is empty (the BB Group would be undefined).
pub fn custom_scenario(
    profile: MachineProfile,
    units: Vec<Unit>,
    target: &str,
    completion: Vec<UnitName>,
) -> Scenario {
    assert!(!completion.is_empty(), "completion definition required");
    let device = DeviceId::from_raw(0);
    let mut units = units;
    let mut workloads = WorkloadMap::new();
    for unit in &mut units {
        // Ensure every unit has an exec key so bodies can attach.
        let exec = unit
            .exec
            .exec_start
            .clone()
            .unwrap_or_else(|| format!("auto:{}", unit.name));
        unit.exec.exec_start = Some(exec.clone());
        workloads.insert(exec, default_body(unit, device));
    }
    Scenario {
        name: format!("custom-{}-{}units", profile.name, units.len()),
        machine: profile.machine,
        storage: profile.storage,
        kernel: tv_kernel_plan(),
        modules: ModuleCatalog::default(),
        units,
        workloads,
        target: target.to_owned(),
        completion,
        manager_costs: ManagerCosts::default(),
        parse_params: ParseCostParams::default(),
        extra_init_tasks: Vec::new(),
    }
}

/// Convenience: empty module catalog variant with TV-scale `.ko` set,
/// for users who want the On-demand Modularizer effect too.
pub fn custom_scenario_with_modules(
    profile: MachineProfile,
    units: Vec<Unit>,
    target: &str,
    completion: Vec<UnitName>,
    module_count: usize,
) -> Scenario {
    let mut s = custom_scenario(profile, units, target, completion);
    s.modules = synthetic_catalog(module_count);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use bb_core::{BbConfig, BootRequest, FullBootReport};

    fn boost(s: &Scenario, cfg: &BbConfig) -> Result<FullBootReport, bb_core::Error> {
        Ok(BootRequest::new(s).config(*cfg).run()?.report)
    }
    use bb_init::ServiceType;

    fn units() -> Vec<Unit> {
        vec![
            Unit::new(UnitName::new("boot.target")).requires("app.service"),
            Unit::new(UnitName::new("data.mount")).with_type(ServiceType::Oneshot),
            Unit::new(UnitName::new("bus.service"))
                .needs("data.mount")
                .with_type(ServiceType::Forking),
            Unit::new(UnitName::new("app.service"))
                .needs("bus.service")
                .with_type(ServiceType::Forking),
            Unit::new(UnitName::new("extra.service")).wanted_by("boot.target"),
        ]
    }

    #[test]
    fn custom_units_boot_conventional_and_boosted() {
        let s = custom_scenario(
            profiles::ue48h6200(),
            units(),
            "boot.target",
            vec![UnitName::new("app.service")],
        );
        let conv = boost(&s, &BbConfig::conventional()).expect("boots");
        let bb = boost(&s, &BbConfig::full()).expect("boots");
        assert!(conv.boot.completion_time.is_some());
        assert!(bb.boot_time() <= conv.boot_time());
        // The group derives from the unit structure.
        let names: Vec<&str> = bb.bb_group.iter().map(|n| n.as_str()).collect();
        assert_eq!(names, vec!["data.mount", "bus.service", "app.service"]);
    }

    #[test]
    fn bodies_are_deterministic_per_name() {
        let device = DeviceId::from_raw(0);
        let u = Unit::new(UnitName::new("thing.service"));
        let a = default_body(&u, device);
        let b = default_body(&u, device);
        assert_eq!(a.pre_ready.len(), b.pre_ready.len());
        // Different names, (very likely) different sizes.
        let c = default_body(&Unit::new(UnitName::new("other.service")), device);
        assert_ne!(format!("{:?}", a.pre_ready), format!("{:?}", c.pre_ready));
    }

    #[test]
    #[should_panic(expected = "completion definition required")]
    fn empty_completion_rejected() {
        custom_scenario(profiles::ue48h6200(), units(), "boot.target", vec![]);
    }

    #[test]
    fn modules_variant_includes_catalog() {
        let s = custom_scenario_with_modules(
            profiles::ue48h6200(),
            units(),
            "boot.target",
            vec![UnitName::new("app.service")],
            50,
        );
        assert_eq!(s.modules.len(), 50);
        let conv = boost(&s, &BbConfig::conventional()).expect("boots");
        let bb = boost(&s, &BbConfig::full()).expect("boots");
        assert!(bb.boot_time() <= conv.boot_time());
    }
}
