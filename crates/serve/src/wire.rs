//! The `bb-serve-v1` wire format: job descriptions, request envelopes,
//! and response envelopes.
//!
//! One job description — [`SweepArgs`] — backs three surfaces at once:
//!
//! 1. the `bbsim sweep` / `bbsim chaos` / `bbsim suspend` CLI flags
//!    (via [`SweepArgs::parse_flag`]),
//! 2. the single-line JSON a client sends to `bbsim serve`
//!    ([`SweepArgs::to_wire_json`] / [`SweepArgs::from_wire`]), and
//! 3. the [`SweepSpec`]/[`ChaosSpec`] grid the fleet service executes
//!    ([`SweepArgs::to_work_item`]).
//!
//! Because every surface funnels through the same grid builder, a
//! `bbsim submit` round trip produces byte-identical report JSON to the
//! in-process `bbsim sweep --json` for the same flags — the serve
//! acceptance invariant.
//!
//! The framing is newline-delimited JSON (NDJSON): every request and
//! every response is exactly one line. Requests carry a client-chosen
//! `id` that the matching response echoes; responses additionally lead
//! with the [`json::SCHEMA_SERVE`] stamp, `"ok"`, and either
//! `"result"` or `"error"`.

use std::time::Duration;

use bb_core::{BbConfig, FallbackPolicy};
use bb_fleet::json::{self, Json};
use bb_fleet::{CellSpec, ChaosCellSpec, ChaosSpec, Supervision, SweepSpec, TicketId, WorkItem};
use bb_init::RestartPolicy;
use bb_workloads::{profiles, MachineProfile, TizenParams};

// ---------------------------------------------------------------------
// Job description
// ---------------------------------------------------------------------

/// Which grid a job expands to (or, for `Suspend`, which local
/// command shares the parser).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// A plain boot sweep (`bbsim sweep`, [`WorkItem::Sweep`]).
    Sweep,
    /// A fault-injection sweep (`bbsim chaos`, [`WorkItem::Chaos`]).
    Chaos,
    /// The local suspend-to-RAM comparison (`bbsim suspend`). Not
    /// submittable: it boots and snapshots one machine in-process.
    Suspend,
}

impl JobKind {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::Sweep => "sweep",
            JobKind::Chaos => "chaos",
            JobKind::Suspend => "suspend",
        }
    }
}

impl std::str::FromStr for JobKind {
    type Err = String;

    /// Parses the wire spelling.
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "sweep" => Ok(JobKind::Sweep),
            "chaos" => Ok(JobKind::Chaos),
            "suspend" => Ok(JobKind::Suspend),
            other => Err(format!("unknown job kind {other:?} (sweep|chaos|suspend)")),
        }
    }
}

/// One job description: every knob of the sweep/chaos/suspend grid,
/// with the CLI defaults baked in. Field meanings and defaults match
/// the historical `bbsim` flags exactly (seeds defaults to 20 for
/// sweeps and 10 for chaos; chaos' deadline defaults to the
/// [`FallbackPolicy`] supervisor deadline).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Job kind; gates which flags/fields apply.
    pub kind: JobKind,
    /// `--profiles NAMES|all` (sweep/chaos).
    pub profiles: String,
    /// `--scenario tv|tv136|camera` (suspend).
    pub scenario: String,
    /// `--services N`; `None` means the scenario default (136 for
    /// generated grids).
    pub services: Option<usize>,
    /// `--cores N` (suspend).
    pub cores: Option<usize>,
    /// `--seeds N`: seeds per cell (sweep/chaos).
    pub seeds: u64,
    /// `--seed N`: the seed base (sweep/chaos) or the scenario seed
    /// (suspend).
    pub seed: Option<u64>,
    /// `--features all|none|LIST` (sweep).
    pub features: String,
    /// `--deadline-ms N`: per-job wall-clock deadline (sweep) or the
    /// boot-supervisor deadline (chaos).
    pub deadline_ms: Option<u64>,
    /// `--fork-from kernel-handoff` (sweep).
    pub fork: bool,
    /// Negated `--no-dedup` (sweep).
    pub dedup: bool,
    /// Whether to collect span metrics (sweep; the CLI sets this when
    /// `--metrics FILE|-` is given).
    pub metrics: bool,
    /// `--plans N` (chaos).
    pub plans: u64,
    /// `--plan-seed N` (chaos).
    pub plan_seed: u64,
    /// `--corruption N` (chaos).
    pub corruption: u64,
    /// `--corruption-seed N` (chaos).
    pub corruption_seed: u64,
    /// `--restart no|on-failure|always` (chaos).
    pub restart: String,
    /// `--restart-sec-ms N` (chaos).
    pub restart_sec_ms: u64,
    /// `--burst N` (chaos).
    pub burst: u32,
}

impl SweepArgs {
    /// The CLI defaults for `kind`.
    pub fn new(kind: JobKind) -> Self {
        SweepArgs {
            kind,
            profiles: "ue48h6200".into(),
            scenario: "tv".into(),
            services: None,
            cores: None,
            seeds: match kind {
                JobKind::Chaos => 10,
                _ => 20,
            },
            seed: None,
            features: "all".into(),
            deadline_ms: None,
            fork: false,
            dedup: true,
            metrics: false,
            plans: 4,
            plan_seed: 1000,
            corruption: 0,
            corruption_seed: 5000,
            restart: "on-failure".into(),
            restart_sec_ms: 100,
            burst: 3,
        }
    }

    /// Consumes one CLI flag if it belongs to this job kind's wire
    /// fields. Returns `Ok(true)` when consumed, `Ok(false)` when the
    /// flag is not a wire flag for this kind (the caller may still
    /// handle it as a client-side flag), and `Err` on a malformed or
    /// missing value.
    pub fn parse_flag(
        &mut self,
        flag: &str,
        next: &mut dyn FnMut() -> Option<String>,
    ) -> Result<bool, String> {
        let mut value = |name: &str| next().ok_or_else(|| format!("missing value for {name}"));
        fn num<T: std::str::FromStr>(name: &str, raw: String) -> Result<T, String> {
            raw.parse()
                .map_err(|_| format!("bad value {raw:?} for {name}"))
        }
        let grid = matches!(self.kind, JobKind::Sweep | JobKind::Chaos);
        match (flag, self.kind) {
            ("--profiles", _) if grid => self.profiles = value("--profiles")?,
            ("--scenario", JobKind::Suspend) => self.scenario = value("--scenario")?,
            ("--services", _) => self.services = Some(num("--services", value("--services")?)?),
            ("--cores", JobKind::Suspend) => self.cores = Some(num("--cores", value("--cores")?)?),
            ("--seeds", _) if grid => self.seeds = num("--seeds", value("--seeds")?)?,
            ("--seed", _) => self.seed = Some(num("--seed", value("--seed")?)?),
            ("--features", JobKind::Sweep) => self.features = value("--features")?,
            ("--deadline-ms", _) if grid => {
                self.deadline_ms = Some(num("--deadline-ms", value("--deadline-ms")?)?)
            }
            ("--fork-from", JobKind::Sweep) => match value("--fork-from")?.as_str() {
                "kernel" | "kernel-handoff" => self.fork = true,
                other => {
                    return Err(format!(
                        "unknown --fork-from phase {other:?} (kernel-handoff)"
                    ))
                }
            },
            ("--no-dedup", JobKind::Sweep) => self.dedup = false,
            ("--plans", JobKind::Chaos) => self.plans = num("--plans", value("--plans")?)?,
            ("--plan-seed", JobKind::Chaos) => {
                self.plan_seed = num("--plan-seed", value("--plan-seed")?)?
            }
            ("--corruption", JobKind::Chaos) => {
                self.corruption = num("--corruption", value("--corruption")?)?
            }
            ("--corruption-seed", JobKind::Chaos) => {
                self.corruption_seed = num("--corruption-seed", value("--corruption-seed")?)?
            }
            ("--restart", JobKind::Chaos) => self.restart = value("--restart")?,
            ("--restart-sec-ms", JobKind::Chaos) => {
                self.restart_sec_ms = num("--restart-sec-ms", value("--restart-sec-ms")?)?
            }
            ("--burst", JobKind::Chaos) => self.burst = num("--burst", value("--burst")?)?,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Renders the job as one wire line (no trailing newline). Key
    /// order is fixed, so identical jobs serialize identically.
    pub fn to_wire_json(&self) -> String {
        fn opt<T: std::fmt::Display>(v: &Option<T>) -> String {
            match v {
                Some(x) => x.to_string(),
                None => "null".into(),
            }
        }
        format!(
            "{{\"kind\": \"{}\", \"profiles\": \"{}\", \"scenario\": \"{}\", \
             \"services\": {}, \"cores\": {}, \"seeds\": {}, \"seed\": {}, \
             \"features\": \"{}\", \"deadline_ms\": {}, \"fork\": {}, \"dedup\": {}, \
             \"metrics\": {}, \"plans\": {}, \"plan_seed\": {}, \"corruption\": {}, \
             \"corruption_seed\": {}, \"restart\": \"{}\", \"restart_sec_ms\": {}, \
             \"burst\": {}}}",
            self.kind.as_str(),
            json::escape(&self.profiles),
            json::escape(&self.scenario),
            opt(&self.services),
            opt(&self.cores),
            self.seeds,
            opt(&self.seed),
            json::escape(&self.features),
            opt(&self.deadline_ms),
            self.fork,
            self.dedup,
            self.metrics,
            self.plans,
            self.plan_seed,
            self.corruption,
            self.corruption_seed,
            json::escape(&self.restart),
            self.restart_sec_ms,
            self.burst,
        )
    }

    /// Decodes a wire job object. Missing fields take the `new(kind)`
    /// defaults, so older clients can omit knobs they don't set.
    pub fn from_wire(v: &Json) -> Result<Self, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("job is missing \"kind\"")?
            .parse::<JobKind>()?;
        let mut args = SweepArgs::new(kind);
        let str_field = |key: &str, into: &mut String| {
            if let Some(s) = v.get(key).and_then(Json::as_str) {
                *into = s.to_owned();
            }
        };
        fn uint(v: &Json, key: &str) -> Result<Option<u64>, String> {
            match v.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(Some(*n as u64)),
                Some(_) => Err(format!("job field {key:?} must be a non-negative integer")),
            }
        }
        fn flag(v: &Json, key: &str, into: &mut bool) -> Result<(), String> {
            match v.get(key) {
                None => Ok(()),
                Some(Json::Bool(b)) => {
                    *into = *b;
                    Ok(())
                }
                Some(_) => Err(format!("job field {key:?} must be a boolean")),
            }
        }
        str_field("profiles", &mut args.profiles);
        str_field("scenario", &mut args.scenario);
        str_field("features", &mut args.features);
        str_field("restart", &mut args.restart);
        args.services = uint(v, "services")?.map(|n| n as usize);
        args.cores = uint(v, "cores")?.map(|n| n as usize);
        if let Some(n) = uint(v, "seeds")? {
            args.seeds = n;
        }
        args.seed = uint(v, "seed")?;
        args.deadline_ms = uint(v, "deadline_ms")?;
        flag(v, "fork", &mut args.fork)?;
        flag(v, "dedup", &mut args.dedup)?;
        flag(v, "metrics", &mut args.metrics)?;
        if let Some(n) = uint(v, "plans")? {
            args.plans = n;
        }
        if let Some(n) = uint(v, "plan_seed")? {
            args.plan_seed = n;
        }
        if let Some(n) = uint(v, "corruption")? {
            args.corruption = n;
        }
        if let Some(n) = uint(v, "corruption_seed")? {
            args.corruption_seed = n;
        }
        if let Some(n) = uint(v, "restart_sec_ms")? {
            args.restart_sec_ms = n;
        }
        if let Some(n) = uint(v, "burst")? {
            args.burst = n as u32;
        }
        Ok(args)
    }

    /// Expands a sweep job into its grid — the same grid `bbsim sweep`
    /// has always built: one cell per profile, `conventional` vs the
    /// boosted feature set, `{profile}-s{services}` labels.
    pub fn sweep_spec(&self) -> Result<SweepSpec, String> {
        let services = self.services.unwrap_or(136);
        check_services(services)?;
        let boosted = BbConfig::from_feature_list(&self.features)?;
        let boosted_label = if self.features == "all" || self.features == "full" {
            "bb".to_string()
        } else {
            self.features.clone()
        };
        let mut spec = SweepSpec::new()
            .with_metrics(self.metrics)
            .with_dedup(self.dedup)
            .with_fork(self.fork);
        if let Some(ms) = self.deadline_ms {
            spec = spec.deadline(Duration::from_millis(ms));
        }
        let seed_base = self.seed.unwrap_or(0);
        for profile in resolve_profiles(&self.profiles)? {
            let label = format!("{}-s{}", profile.name, services);
            spec = spec.cell(
                CellSpec::tizen(
                    label,
                    profile,
                    TizenParams {
                        services,
                        ..TizenParams::default()
                    },
                )
                .seeds(seed_base..seed_base + self.seeds)
                .config("conventional", BbConfig::conventional())
                .config(boosted_label.clone(), boosted),
            );
        }
        Ok(spec)
    }

    /// Expands a chaos job into its grid — the same grid `bbsim chaos`
    /// has always built.
    pub fn chaos_spec(&self) -> Result<ChaosSpec, String> {
        let services = self.services.unwrap_or(136);
        check_services(services)?;
        let restart = match self.restart.as_str() {
            "no" | "none" => RestartPolicy::No,
            "on-failure" => RestartPolicy::OnFailure,
            "always" => RestartPolicy::Always,
            other => {
                return Err(format!(
                    "unknown --restart policy {other:?} (no|on-failure|always)"
                ))
            }
        };
        let supervision = if restart == RestartPolicy::No {
            None
        } else {
            Some(Supervision {
                restart,
                restart_sec_ms: self.restart_sec_ms,
                start_limit_burst: self.burst,
            })
        };
        let deadline_ms = self
            .deadline_ms
            .unwrap_or_else(|| FallbackPolicy::default().deadline.as_millis());
        let seed_base = self.seed.unwrap_or(0);
        let mut spec = ChaosSpec::new();
        for profile in resolve_profiles(&self.profiles)? {
            let label = format!("{}-s{}", profile.name, services);
            spec = spec.cell(
                ChaosCellSpec::tizen(
                    label,
                    profile,
                    TizenParams {
                        services,
                        ..TizenParams::default()
                    },
                )
                .seeds(seed_base..seed_base + self.seeds)
                .fault_plans(self.plans, self.plan_seed)
                .corruption_plans(self.corruption, self.corruption_seed)
                .supervision(supervision)
                .deadline_ms(deadline_ms)
                .conventional_vs_bb(),
            );
        }
        Ok(spec)
    }

    /// The submittable [`WorkItem`] this job expands to.
    pub fn to_work_item(&self) -> Result<WorkItem, String> {
        match self.kind {
            JobKind::Sweep => Ok(WorkItem::Sweep(self.sweep_spec()?)),
            JobKind::Chaos => Ok(WorkItem::Chaos(self.chaos_spec()?)),
            JobKind::Suspend => {
                Err("suspend runs locally; the serve queue accepts sweep and chaos jobs".into())
            }
        }
    }
}

fn check_services(services: usize) -> Result<(), String> {
    if services < 24 {
        return Err("--services must be at least 24 (the TV backbone alone needs that)".into());
    }
    Ok(())
}

/// Resolves a `--profiles` spec (`all` or a comma list, any
/// dash/underscore/case spelling) to machine profiles.
pub fn resolve_profiles(spec: &str) -> Result<Vec<MachineProfile>, String> {
    if spec == "all" {
        return Ok(profiles::all_profiles());
    }
    fn fold(name: &str) -> String {
        name.chars()
            .filter(char::is_ascii_alphanumeric)
            .map(|c| c.to_ascii_lowercase())
            .collect()
    }
    let all = profiles::all_profiles();
    spec.split(',')
        .map(|name| {
            all.iter()
                .find(|p| fold(p.name) == fold(name.trim()))
                .cloned()
                .ok_or_else(|| {
                    let known: Vec<&str> = all.iter().map(|p| p.name).collect();
                    format!("unknown profile {name:?} (try: {} or all)", known.join(","))
                })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Request envelope
// ---------------------------------------------------------------------

/// One decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue a job; the response carries the ticket id.
    Submit {
        /// Echoed request id.
        id: u64,
        /// The job to run (boxed: a full job dwarfs the other
        /// variants).
        job: Box<SweepArgs>,
    },
    /// Non-blocking ticket progress.
    Poll {
        /// Echoed request id.
        id: u64,
        /// Which ticket.
        ticket: TicketId,
    },
    /// Block until the ticket's report is ready, then stream it back.
    Wait {
        /// Echoed request id.
        id: u64,
        /// Which ticket.
        ticket: TicketId,
    },
    /// Cancel a queued/running ticket.
    Cancel {
        /// Echoed request id.
        id: u64,
        /// Which ticket.
        ticket: TicketId,
    },
    /// Service-wide counters as a `bb-serve-stats-v1` document.
    Stats {
        /// Echoed request id.
        id: u64,
    },
    /// Stop accepting connections and exit once drained.
    Shutdown {
        /// Echoed request id.
        id: u64,
    },
}

impl Request {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Submit { id, .. }
            | Request::Poll { id, .. }
            | Request::Wait { id, .. }
            | Request::Cancel { id, .. }
            | Request::Stats { id }
            | Request::Shutdown { id } => *id,
        }
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
    let id = match v.get("id") {
        None => 0,
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => *n as u64,
        Some(_) => return Err("request \"id\" must be a non-negative integer".into()),
    };
    let method = v
        .get("method")
        .and_then(Json::as_str)
        .ok_or("request is missing \"method\"")?;
    let ticket = || -> Result<TicketId, String> {
        match v.get("ticket") {
            Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as TicketId),
            _ => Err(format!("method {method:?} needs an integer \"ticket\"")),
        }
    };
    match method {
        "submit" => {
            let job = v.get("job").ok_or("submit needs a \"job\" object")?;
            Ok(Request::Submit {
                id,
                job: Box::new(SweepArgs::from_wire(job)?),
            })
        }
        "poll" => Ok(Request::Poll {
            id,
            ticket: ticket()?,
        }),
        "wait" => Ok(Request::Wait {
            id,
            ticket: ticket()?,
        }),
        "cancel" => Ok(Request::Cancel {
            id,
            ticket: ticket()?,
        }),
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err(format!(
            "unknown method {other:?} (submit|poll|wait|cancel|stats|shutdown)"
        )),
    }
}

// ---------------------------------------------------------------------
// Response envelope
// ---------------------------------------------------------------------

/// Renders a success response line: `fields` is the pre-rendered
/// contents of the `"result"` object (no braces).
pub fn render_ok(id: u64, fields: &str) -> String {
    format!(
        "{{\"schema\": \"{}\", \"id\": {id}, \"ok\": true, \"result\": {{{fields}}}}}",
        json::SCHEMA_SERVE
    )
}

/// Renders an error response line.
pub fn render_err(id: u64, msg: &str) -> String {
    format!(
        "{{\"schema\": \"{}\", \"id\": {id}, \"ok\": false, \"error\": \"{}\"}}",
        json::SCHEMA_SERVE,
        json::escape(msg)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_round_trip_through_the_wire() {
        let mut job = SweepArgs::new(JobKind::Chaos);
        job.profiles = "all".into();
        job.services = Some(48);
        job.seed = Some(7);
        job.corruption = 2;
        job.restart = "always".into();
        let line = job.to_wire_json();
        let back = SweepArgs::from_wire(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, job);
        // And a default job survives too.
        let dflt = SweepArgs::new(JobKind::Sweep);
        let back = SweepArgs::from_wire(&json::parse(&dflt.to_wire_json()).unwrap()).unwrap();
        assert_eq!(back, dflt);
    }

    #[test]
    fn wire_defaults_match_the_cli_defaults() {
        let sparse = json::parse(r#"{"kind": "sweep"}"#).unwrap();
        let job = SweepArgs::from_wire(&sparse).unwrap();
        assert_eq!(job, SweepArgs::new(JobKind::Sweep));
        assert_eq!(job.seeds, 20);
        assert_eq!(SweepArgs::new(JobKind::Chaos).seeds, 10);
    }

    #[test]
    fn flags_are_gated_by_kind() {
        let mut sweep = SweepArgs::new(JobKind::Sweep);
        let feed = |vals: &[&str]| {
            let mut it: Vec<String> = vals.iter().map(|s| s.to_string()).collect();
            it.reverse();
            move || it.pop()
        };
        assert_eq!(
            sweep.parse_flag("--fork-from", &mut feed(&["kernel-handoff"])),
            Ok(true)
        );
        assert!(sweep.fork);
        // A chaos-only flag is not consumed by a sweep job...
        assert_eq!(sweep.parse_flag("--plans", &mut feed(&["3"])), Ok(false));
        // ...but is by a chaos job.
        let mut chaos = SweepArgs::new(JobKind::Chaos);
        assert_eq!(chaos.parse_flag("--plans", &mut feed(&["3"])), Ok(true));
        assert_eq!(chaos.plans, 3);
        // Bad values and missing values are errors, not silent skips.
        assert!(chaos.parse_flag("--seeds", &mut feed(&["many"])).is_err());
        assert!(chaos.parse_flag("--seeds", &mut feed(&[])).is_err());
        assert!(sweep
            .parse_flag("--fork-from", &mut feed(&["userspace"]))
            .is_err());
    }

    #[test]
    fn sweep_spec_builds_the_cli_grid() {
        let mut job = SweepArgs::new(JobKind::Sweep);
        job.services = Some(24);
        job.seeds = 3;
        job.seed = Some(5);
        let spec = job.sweep_spec().unwrap();
        assert_eq!(spec.cells.len(), 1);
        assert_eq!(spec.cells[0].label, "UE48H6200-s24");
        assert_eq!(spec.cells[0].configs.len(), 2);
        assert_eq!(spec.cells[0].configs[0].0, "conventional");
        assert_eq!(spec.cells[0].configs[1].0, "bb");
        assert_eq!(spec.total_boots(), 6);
        // Feature subsets rename the boosted config after the list.
        job.features = "preparser".into();
        let spec = job.sweep_spec().unwrap();
        assert_eq!(spec.cells[0].configs[1].0, "preparser");
        // Validation failures are errors, not exits.
        job.services = Some(8);
        assert!(job.sweep_spec().is_err());
        job.services = Some(24);
        job.features = "warp-drive".into();
        assert!(job.sweep_spec().is_err());
    }

    #[test]
    fn chaos_spec_builds_the_cli_grid() {
        let mut job = SweepArgs::new(JobKind::Chaos);
        job.services = Some(24);
        job.seeds = 2;
        let spec = job.chaos_spec().unwrap();
        assert_eq!(spec.cells.len(), 1);
        // 2 seeds x (4 plans + control) x (0 corruption + pristine) x 2 configs.
        assert_eq!(spec.total_boots(), 2 * 5 * 2);
        job.restart = "sometimes".into();
        assert!(job.chaos_spec().is_err());
        // Suspend jobs never reach the queue.
        assert!(SweepArgs::new(JobKind::Suspend).to_work_item().is_err());
    }

    #[test]
    fn requests_parse_and_responses_render() {
        let req =
            parse_request(r#"{"id": 3, "method": "submit", "job": {"kind": "sweep", "seeds": 2}}"#)
                .unwrap();
        match &req {
            Request::Submit { id, job } => {
                assert_eq!(*id, 3);
                assert_eq!(job.seeds, 2);
            }
            other => panic!("expected submit, got {other:?}"),
        }
        assert_eq!(req.id(), 3);
        let req = parse_request(r#"{"id": 9, "method": "wait", "ticket": 4}"#).unwrap();
        assert_eq!(req, Request::Wait { id: 9, ticket: 4 });
        assert!(parse_request(r#"{"id": 1, "method": "wait"}"#).is_err());
        assert!(parse_request(r#"{"id": 1, "method": "launch"}"#).is_err());
        assert!(parse_request("not json").is_err());

        let ok = render_ok(7, "\"ticket\": 12");
        let v = json::parse(&ok).unwrap();
        assert_eq!(v.get("schema").and_then(Json::as_str), Some("bb-serve-v1"));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            v.get("result")
                .and_then(|r| r.get("ticket"))
                .and_then(Json::as_f64),
            Some(12.0)
        );
        let err = render_err(7, "queue \"full\"");
        let v = json::parse(&err).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            v.get("error").and_then(Json::as_str),
            Some("queue \"full\"")
        );
    }
}
