//! The serve loop: a listening socket in front of one
//! [`FleetService`].
//!
//! Each accepted connection gets its own thread and its own
//! [`ClientId`] (the connection counter), so the service's per-client
//! quotas and round-robin fairness apply per connection. The protocol
//! is NDJSON request/response over the socket (see [`crate::wire`]);
//! `wait` blocks the connection's thread on the service, never the
//! accept loop, so slow sweeps don't starve other clients.
//!
//! A `shutdown` request flips the stop flag: the accept loop closes,
//! every connection thread finishes its current request and exits, and
//! the service's worker threads are joined when the last
//! [`FleetService`] handle drops. Stale Unix socket files from a
//! previous crash are removed before binding.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bb_fleet::json;
use bb_fleet::{ClientId, FleetService, ServiceConfig, ServiceReport};

use crate::wire::{self, Request};

/// Where the server listens (or the client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindAddr {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address like `127.0.0.1:7070`.
    Tcp(String),
}

impl std::fmt::Display for BindAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindAddr::Unix(p) => write!(f, "unix:{}", p.display()),
            BindAddr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// One accepted connection, either flavor. Cloned so one half can be
/// buffered for reads while the other writes responses.
pub(crate) enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Tcp(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A bound, not-yet-running serve loop.
pub struct Server {
    listener: Listener,
    service: Arc<FleetService>,
    stop: Arc<AtomicBool>,
    socket_path: Option<PathBuf>,
}

impl Server {
    /// Binds the listening socket and starts the fleet service's
    /// workers. For Unix sockets a leftover file at the path is
    /// removed first (a crashed server must not brick its address).
    pub fn bind(addr: &BindAddr, config: ServiceConfig) -> io::Result<Server> {
        let (listener, socket_path) = match addr {
            BindAddr::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                (
                    Listener::Unix(UnixListener::bind(path)?),
                    Some(path.clone()),
                )
            }
            BindAddr::Tcp(addr) => (Listener::Tcp(TcpListener::bind(addr.as_str())?), None),
        };
        Ok(Server {
            listener,
            service: Arc::new(FleetService::start(config)),
            stop: Arc::new(AtomicBool::new(false)),
            socket_path,
        })
    }

    /// The bound TCP address, if listening on TCP — lets tests bind
    /// port 0 and discover the real port.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(_) => None,
        }
    }

    /// The underlying service (for in-process inspection in tests).
    pub fn service(&self) -> &Arc<FleetService> {
        &self.service
    }

    /// A flag that stops the accept loop when set (the `shutdown`
    /// request sets it; embedders may too).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Runs the accept loop until a `shutdown` request arrives, then
    /// drains: connection threads are joined, the socket file is
    /// unlinked, and the fleet workers stop with the service.
    pub fn run(self) -> io::Result<()> {
        match &self.listener {
            Listener::Unix(l) => l.set_nonblocking(true)?,
            Listener::Tcp(l) => l.set_nonblocking(true)?,
        }
        let mut conns = Vec::new();
        let mut next_client: ClientId = 1;
        while !self.stop.load(Ordering::SeqCst) {
            let accepted = match &self.listener {
                Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
                Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            };
            match accepted {
                Ok(stream) => {
                    let client = next_client;
                    next_client += 1;
                    let service = Arc::clone(&self.service);
                    let stop = Arc::clone(&self.stop);
                    conns.push(
                        std::thread::Builder::new()
                            .name(format!("bb-serve-{client}"))
                            .spawn(move || serve_connection(stream, service, stop, client))
                            .expect("spawn connection thread"),
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
            // Reap finished connections so a long-lived server doesn't
            // accumulate dead handles.
            conns.retain(|h| !h.is_finished());
        }
        for conn in conns {
            let _ = conn.join();
        }
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// One connection's request loop. Read timeouts keep the thread
/// checking the stop flag even when the client is idle.
fn serve_connection(
    stream: Stream,
    service: Arc<FleetService>,
    stop: Arc<AtomicBool>,
    client: ClientId,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            // EOF: the client hung up.
            Ok(0) => break,
            Ok(_) if !line.ends_with('\n') => {
                // EOF mid-line; fall through to process what arrived.
                if !process_line(&line, &service, &stop, client, &mut writer) {
                    break;
                }
                break;
            }
            Ok(_) => {
                let done = !process_line(&line, &service, &stop, client, &mut writer);
                line.clear();
                if done || stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Handles one request line; returns false when the connection should
/// close (write failure).
fn process_line(
    line: &str,
    service: &FleetService,
    stop: &AtomicBool,
    client: ClientId,
    writer: &mut Stream,
) -> bool {
    if line.trim().is_empty() {
        return true;
    }
    let response = match wire::parse_request(line) {
        Err(e) => wire::render_err(0, &e),
        Ok(req) => dispatch(req, service, stop, client),
    };
    writer
        .write_all(response.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .is_ok()
}

/// Executes one request against the service and renders the response.
fn dispatch(req: Request, service: &FleetService, stop: &AtomicBool, client: ClientId) -> String {
    let id = req.id();
    match req {
        Request::Submit { job, .. } => match job.to_work_item() {
            Err(e) => wire::render_err(id, &e),
            Ok(item) => match service.submit(client, item) {
                Ok(ticket) => wire::render_ok(id, &format!("\"ticket\": {ticket}")),
                Err(e) => wire::render_err(id, &e.to_string()),
            },
        },
        Request::Poll { ticket, .. } => match service.poll(ticket) {
            None => wire::render_err(id, "unknown ticket"),
            Some(status) => {
                use bb_fleet::TicketStatus::*;
                let fields = match status {
                    Queued { total } => {
                        format!("\"status\": \"queued\", \"completed\": 0, \"total\": {total}")
                    }
                    Running { completed, total } => format!(
                        "\"status\": \"running\", \"completed\": {completed}, \"total\": {total}"
                    ),
                    Done => "\"status\": \"done\"".to_string(),
                    Cancelled => "\"status\": \"cancelled\"".to_string(),
                };
                wire::render_ok(id, &fields)
            }
        },
        Request::Wait { ticket, .. } => match service.wait(ticket) {
            Err(e) => wire::render_err(id, &e.to_string()),
            Ok(report) => wire::render_ok(id, &render_report(&report)),
        },
        Request::Cancel { ticket, .. } => {
            let cancelled = service.cancel(ticket);
            wire::render_ok(id, &format!("\"cancelled\": {cancelled}"))
        }
        Request::Stats { .. } => {
            let doc = service.stats().to_json();
            wire::render_ok(id, &format!("\"stats\": \"{}\"", json::escape(&doc)))
        }
        Request::Shutdown { .. } => {
            stop.store(true, Ordering::SeqCst);
            wire::render_ok(id, "\"stopping\": true")
        }
    }
}

/// Renders a finalized ticket as wait-result fields: the kind, the
/// failure count, the human summaries, and the full report document
/// (plus the metrics document for metric-collecting sweeps) as escaped
/// strings — the client writes them back out byte for byte.
fn render_report(report: &ServiceReport) -> String {
    match report {
        ServiceReport::Sweep(outcome) => {
            let metrics = match &outcome.report.metrics {
                None => "null".to_string(),
                Some(m) => format!("\"{}\"", json::escape(&m.to_json())),
            };
            format!(
                "\"kind\": \"sweep\", \"failures\": {}, \"summary\": \"{}\", \
                 \"pool_summary\": \"{}\", \"metrics\": {metrics}, \"report\": \"{}\"",
                outcome.report.failures.len(),
                json::escape(&outcome.report.summary()),
                json::escape(&outcome.stats.summary()),
                json::escape(&outcome.report.to_json()),
            )
        }
        ServiceReport::Chaos(outcome) => format!(
            "\"kind\": \"chaos\", \"failures\": {}, \"summary\": \"{}\", \
             \"pool_summary\": \"{}\", \"metrics\": null, \"report\": \"{}\"",
            outcome.report.failures.len(),
            json::escape(&outcome.report.summary()),
            json::escape(&outcome.stats.summary()),
            json::escape(&outcome.report.to_json()),
        ),
    }
}
