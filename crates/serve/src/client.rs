//! The serve client: connects to a running `bbsim serve`, submits
//! jobs, and decodes the streamed result documents.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use bb_fleet::json::{self, Json};
use bb_fleet::TicketId;

use crate::server::BindAddr;
use crate::wire::{JobKind, SweepArgs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket broke (connect, read, or write).
    Io(io::Error),
    /// The server answered, but not with a well-formed `bb-serve-v1`
    /// response.
    Protocol(String),
    /// The server rejected the request (`"ok": false`); the payload is
    /// its error message.
    Remote(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Remote(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A finished job's decoded wait-result.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Which grid ran.
    pub kind: JobKind,
    /// Failed jobs in the report (`failures` array length).
    pub failures: usize,
    /// The human-readable report summary (what `bbsim sweep` prints to
    /// stdout).
    pub summary: String,
    /// The pool/observability summary (what `bbsim sweep` prints to
    /// stderr).
    pub pool_summary: String,
    /// The full report document (`bb-fleet-v1` / `bb-fleet-chaos-v2`),
    /// byte-identical to the in-process `--json` output.
    pub report: String,
    /// The span-metrics document (`bb-metrics-v1`), when the job
    /// collected metrics.
    pub metrics: Option<String>,
}

enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

/// One NDJSON connection to a serve instance. Requests are issued
/// serially; each call writes one line and reads one line.
pub struct Client {
    reader: BufReader<Conn>,
    writer: Conn,
    next_id: u64,
}

impl io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl io::Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

impl Client {
    /// Connects to a serve instance.
    pub fn connect(addr: &BindAddr) -> Result<Client, ClientError> {
        let (reader, writer) = match addr {
            BindAddr::Unix(path) => {
                let s = UnixStream::connect(path)?;
                (Conn::Unix(s.try_clone()?), Conn::Unix(s))
            }
            BindAddr::Tcp(a) => {
                let s = TcpStream::connect(a.as_str())?;
                (Conn::Tcp(s.try_clone()?), Conn::Tcp(s))
            }
        };
        Ok(Client {
            reader: BufReader::new(reader),
            writer,
            next_id: 1,
        })
    }

    /// One request/response round trip; returns the `"result"` object.
    fn call(&mut self, body: &str) -> Result<Json, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let line = format!("{{\"id\": {id}, {body}}}\n");
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        let v = json::parse(response.trim_end())
            .map_err(|e| ClientError::Protocol(format!("bad response JSON: {e}")))?;
        match v.get("schema").and_then(Json::as_str) {
            Some(json::SCHEMA_SERVE) => {}
            other => {
                return Err(ClientError::Protocol(format!(
                    "unexpected response schema {other:?}"
                )))
            }
        }
        match v.get("ok") {
            Some(Json::Bool(true)) => v
                .get("result")
                .cloned()
                .ok_or_else(|| ClientError::Protocol("response has no \"result\"".into())),
            Some(Json::Bool(false)) => Err(ClientError::Remote(
                v.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("(no error message)")
                    .to_owned(),
            )),
            _ => Err(ClientError::Protocol("response has no \"ok\"".into())),
        }
    }

    /// Submits a job; returns its ticket.
    pub fn submit(&mut self, job: &SweepArgs) -> Result<TicketId, ClientError> {
        let result = self.call(&format!(
            "\"method\": \"submit\", \"job\": {}",
            job.to_wire_json()
        ))?;
        result
            .get("ticket")
            .and_then(Json::as_f64)
            .map(|n| n as TicketId)
            .ok_or_else(|| ClientError::Protocol("submit result has no \"ticket\"".into()))
    }

    /// Non-blocking progress: `(status, completed, total)`.
    pub fn poll(&mut self, ticket: TicketId) -> Result<(String, usize, usize), ClientError> {
        let result = self.call(&format!("\"method\": \"poll\", \"ticket\": {ticket}"))?;
        let status = result
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| ClientError::Protocol("poll result has no \"status\"".into()))?
            .to_owned();
        let count = |key: &str| {
            result
                .get(key)
                .and_then(Json::as_f64)
                .map_or(0, |n| n as usize)
        };
        Ok((status, count("completed"), count("total")))
    }

    /// Blocks until the ticket finishes and decodes its result.
    pub fn wait(&mut self, ticket: TicketId) -> Result<JobResult, ClientError> {
        let result = self.call(&format!("\"method\": \"wait\", \"ticket\": {ticket}"))?;
        let field = |key: &str| -> Result<String, ClientError> {
            result
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| ClientError::Protocol(format!("wait result has no {key:?}")))
        };
        Ok(JobResult {
            kind: field("kind")?
                .parse::<JobKind>()
                .map_err(ClientError::Protocol)?,
            failures: result
                .get("failures")
                .and_then(Json::as_f64)
                .map_or(0, |n| n as usize),
            summary: field("summary")?,
            pool_summary: field("pool_summary")?,
            report: field("report")?,
            metrics: match result.get("metrics") {
                None | Some(Json::Null) => None,
                Some(Json::Str(s)) => Some(s.clone()),
                Some(_) => {
                    return Err(ClientError::Protocol(
                        "wait result \"metrics\" must be a string or null".into(),
                    ))
                }
            },
        })
    }

    /// Submits a job and blocks for its result.
    pub fn run(&mut self, job: &SweepArgs) -> Result<JobResult, ClientError> {
        let ticket = self.submit(job)?;
        self.wait(ticket)
    }

    /// Cancels a ticket; true if it was still cancellable.
    pub fn cancel(&mut self, ticket: TicketId) -> Result<bool, ClientError> {
        let result = self.call(&format!("\"method\": \"cancel\", \"ticket\": {ticket}"))?;
        match result.get("cancelled") {
            Some(Json::Bool(b)) => Ok(*b),
            _ => Err(ClientError::Protocol(
                "cancel result has no \"cancelled\"".into(),
            )),
        }
    }

    /// Fetches the service's `bb-serve-stats-v1` document.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let result = self.call("\"method\": \"stats\"")?;
        result
            .get("stats")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ClientError::Protocol("stats result has no \"stats\"".into()))
    }

    /// Asks the server to stop accepting work and exit once drained.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call("\"method\": \"shutdown\"").map(|_| ())
    }
}
