//! # bb-serve — persistent boot-simulation service
//!
//! `bbsim serve` keeps one [`bb_fleet::FleetService`] — long-lived
//! workers, a shared [`bb_fleet::FleetCache`] of compiled plans,
//! memoized scenarios, deduplicated boots, and kernel checkpoints —
//! alive behind a socket, so sweeps submitted over time and from many
//! clients reuse each other's work instead of re-simulating it.
//!
//! * [`wire`] — the `bb-serve-v1` NDJSON protocol: [`SweepArgs`] (the
//!   one job description shared by the `bbsim` CLI flags, the wire
//!   format, and the grid builders), request parsing, and response
//!   rendering.
//! * [`server`] — [`Server`]: binds a Unix or TCP socket
//!   ([`BindAddr`]), runs a thread per connection, and maps each
//!   connection to a fleet [`bb_fleet::ClientId`] so quotas and
//!   round-robin fairness apply per client.
//! * [`client`] — [`Client`]: submit/poll/wait/cancel/stats/shutdown
//!   calls, decoding result documents back into strings that are
//!   byte-identical to the in-process `bbsim sweep --json` output.
//!
//! Determinism survives the network hop: report JSON depends only on
//! the job's grid, never on worker count, cache state, or client
//! interleaving, so a served sweep diffs cleanly against a local one.

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, JobResult};
pub use server::{BindAddr, Server};
pub use wire::{
    parse_request, render_err, render_ok, resolve_profiles, JobKind, Request, SweepArgs,
};
