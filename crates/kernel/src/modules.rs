//! External kernel module (`.ko`) loading versus deferred built-ins.
//!
//! A conventional embedded Linux defers hardware support by building
//! components as external modules and loading them from user space
//! (408 `.ko` files on a 2015 Samsung TV). Each load pays open/read/
//! close syscalls, flash I/O for the module image, and relocation/link
//! work — all *during* the boot-time service phase, competing with
//! services for CPU and storage.
//!
//! The On-demand Modularizer instead keeps components built-in but
//! *defers their initcalls*, which "drastically reduced the number of
//! system calls (e.g. open, read, and close) required to load many
//! external modules into volatile memory" (§3.1). This module provides
//! the cost models for both paths.

use bb_sim::{DeviceId, Op, OpsBuilder, SimDuration};

use crate::initcall::Criticality;

/// One loadable kernel component.
#[derive(Debug, Clone)]
pub struct KernelModule {
    /// Module name (`dvb-frontend`, `btusb`, …).
    pub name: String,
    /// Size of the `.ko` image on flash.
    pub image_bytes: u64,
    /// Reference CPU cost of the component's own init routine.
    pub init_cost: SimDuration,
    /// Whether boot can complete without it.
    pub criticality: Criticality,
}

/// Cost parameters of the external-module loading path.
#[derive(Debug, Clone, Copy)]
pub struct ModuleLoadCosts {
    /// CPU cost per syscall (open/read/close + mode switches).
    pub syscall_cost: SimDuration,
    /// Syscalls issued per module load (open + N reads + close + init).
    pub syscalls_per_module: u32,
    /// CPU cost of relocation/linking per KiB of module image.
    pub link_cost_per_kib: SimDuration,
}

impl Default for ModuleLoadCosts {
    fn default() -> Self {
        ModuleLoadCosts {
            syscall_cost: SimDuration::from_micros(25),
            syscalls_per_module: 40,
            link_cost_per_kib: SimDuration::from_micros(16),
        }
    }
}

/// A machine's set of loadable components.
#[derive(Debug, Clone, Default)]
pub struct ModuleCatalog {
    /// All modules.
    pub modules: Vec<KernelModule>,
    /// External-load cost parameters.
    pub costs: ModuleLoadCosts,
}

impl ModuleCatalog {
    /// Creates a catalog with default load costs.
    pub fn new(modules: Vec<KernelModule>) -> Self {
        ModuleCatalog {
            modules,
            costs: ModuleLoadCosts::default(),
        }
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// CPU overhead of loading one module as an external `.ko`
    /// (syscalls + linking), excluding flash I/O and the init routine.
    pub fn external_overhead(&self, m: &KernelModule) -> SimDuration {
        let syscalls = self.costs.syscall_cost * u64::from(self.costs.syscalls_per_module);
        let link = self.costs.link_cost_per_kib * m.image_bytes.div_ceil(1024);
        syscalls + link
    }

    /// The op list of a user-space loader that loads `m` as an external
    /// module from `device`: flash read + syscall/link CPU + init CPU.
    pub fn external_load_ops(&self, m: &KernelModule, device: DeviceId) -> Vec<Op> {
        OpsBuilder::new()
            .compute(self.external_overhead(m))
            .read_rand(device, m.image_bytes)
            .compute(m.init_cost)
            .build()
    }

    /// The op list of a deferred built-in initialization for `m`: just
    /// the init routine — the image is already in the kernel, no
    /// syscalls, no flash I/O.
    pub fn deferred_builtin_ops(&self, m: &KernelModule) -> Vec<Op> {
        OpsBuilder::new().compute(m.init_cost).build()
    }

    /// Total flash bytes the external path reads.
    pub fn total_image_bytes(&self) -> u64 {
        self.modules.iter().map(|m| m.image_bytes).sum()
    }

    /// Total CPU cost of the external path (overhead + init) for modules
    /// matching `criticality` (all when `None`).
    pub fn external_cpu_cost(&self, criticality: Option<Criticality>) -> SimDuration {
        self.modules
            .iter()
            .filter(|m| criticality.is_none_or(|c| m.criticality == c))
            .map(|m| self.external_overhead(m) + m.init_cost)
            .sum()
    }

    /// Modules that can be deferred past boot completion.
    pub fn deferrable(&self) -> impl Iterator<Item = &KernelModule> {
        self.modules
            .iter()
            .filter(|m| m.criticality == Criticality::Deferrable)
    }

    /// Modules that must be available for boot.
    pub fn boot_critical(&self) -> impl Iterator<Item = &KernelModule> {
        self.modules
            .iter()
            .filter(|m| m.criticality == Criticality::BootCritical)
    }
}

/// Builds a synthetic catalog of `n` modules resembling a 2015 TV's 408
/// `.ko` set: sizes in the tens-to-hundreds of KiB, a small minority
/// boot-critical. Deterministic in `n`.
pub fn synthetic_catalog(n: usize) -> ModuleCatalog {
    let mut modules = Vec::with_capacity(n);
    for i in 0..n {
        // Sizes cycle deterministically between ~16 KiB and ~200 KiB.
        let image_bytes = 32 * 1024 + (i as u64 * 7919) % (288 * 1024);
        let init_cost = SimDuration::from_micros(800 + (i as u64 * 131) % 1600);
        let criticality = if i % 12 == 0 {
            Criticality::BootCritical
        } else {
            Criticality::Deferrable
        };
        modules.push(KernelModule {
            name: format!("mod{i:03}"),
            image_bytes,
            init_cost,
            criticality,
        });
    }
    ModuleCatalog::new(modules)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn external_path_costs_more_than_deferred_builtin() {
        let cat = synthetic_catalog(10);
        for m in &cat.modules {
            let ext = cat.external_overhead(m) + m.init_cost;
            assert!(ext > m.init_cost);
            let ops = cat.external_load_ops(m, DeviceId::from_raw(0));
            assert_eq!(ops.len(), 3);
            let builtin = cat.deferred_builtin_ops(m);
            assert_eq!(builtin.len(), 1);
        }
    }

    #[test]
    fn synthetic_catalog_is_deterministic_and_mostly_deferrable() {
        let a = synthetic_catalog(408);
        let b = synthetic_catalog(408);
        assert_eq!(a.len(), 408);
        assert_eq!(a.total_image_bytes(), b.total_image_bytes());
        let critical = a.boot_critical().count();
        let deferrable = a.deferrable().count();
        assert_eq!(critical + deferrable, 408);
        assert!(critical * 5 < deferrable, "{critical} vs {deferrable}");
    }

    #[test]
    fn cpu_cost_partitions_sum_to_total() {
        let cat = synthetic_catalog(50);
        let total = cat.external_cpu_cost(None);
        let crit = cat.external_cpu_cost(Some(Criticality::BootCritical));
        let defer = cat.external_cpu_cost(Some(Criticality::Deferrable));
        assert_eq!(total, crit + defer);
    }

    #[test]
    fn four_hundred_modules_cost_hundreds_of_ms() {
        // Sanity: the external path for a TV-scale catalog should be in
        // the hundreds-of-milliseconds range the paper attributes to it.
        let cat = synthetic_catalog(408);
        let cpu = cat.external_cpu_cost(None);
        assert!(
            (400..2500).contains(&cpu.as_millis()),
            "external CPU cost {cpu}"
        );
    }
}
