//! Suspend-to-RAM ("Instant On") and the EU standby-power constraint
//! (§2.1).
//!
//! Suspend-to-RAM resumes in well under two seconds — but only while
//! the device stays powered. The paper explains why TVs cannot rely on
//! it: users unplug TVs, and the workaround of booting silently at
//! plug-in and suspending until the power button "may violate a
//! regulation of the European Union… the power consumption of a TV in
//! standby cannot exceed 1 W. An active smart TV application processor
//! consumes well over 1 W."

use bb_sim::SimDuration;

/// Suspend-to-RAM resume model.
#[derive(Debug, Clone, Copy)]
pub struct SuspendToRam {
    /// Fixed SoC/firmware wake latency.
    pub wake_latency: SimDuration,
    /// Number of device drivers with resume hooks.
    pub devices: u32,
    /// Average resume cost per device.
    pub per_device_resume: SimDuration,
    /// Display pipeline restart (panel power + first frame).
    pub display_restart: SimDuration,
}

impl SuspendToRam {
    /// A 2015 smart-TV-class SoC.
    pub fn tv() -> Self {
        SuspendToRam {
            wake_latency: SimDuration::from_millis(120),
            devices: 60,
            per_device_resume: SimDuration::from_micros(9_000),
            display_restart: SimDuration::from_millis(350),
        }
    }

    /// Time from power-button press to a usable device.
    pub fn resume_time(&self) -> SimDuration {
        self.wake_latency + self.per_device_resume * u64::from(self.devices) + self.display_restart
    }
}

/// Standby-power policy check for the "boot silently at plug-in, then
/// suspend" idea.
#[derive(Debug, Clone, Copy)]
pub struct StandbyPolicy {
    /// Power drawn while suspended, in watts.
    pub standby_watts: f64,
    /// Regulatory limit (EU: 1 W for TVs).
    pub limit_watts: f64,
}

impl StandbyPolicy {
    /// EU Commission Regulation No 801/2013 limit.
    pub const EU_LIMIT_WATTS: f64 = 1.0;

    /// A TV keeping DRAM + always-on domain powered in suspend-to-RAM.
    pub fn tv_suspend_to_ram() -> Self {
        StandbyPolicy {
            // DRAM self-refresh + PMIC + wake sources: above the limit
            // for a 2015 TV AP ("well over 1 W" when the AP stays up).
            standby_watts: 1.8,
            limit_watts: Self::EU_LIMIT_WATTS,
        }
    }

    /// A true cold-off TV (only the power-button sense circuit).
    pub fn tv_cold_off() -> Self {
        StandbyPolicy {
            standby_watts: 0.3,
            limit_watts: Self::EU_LIMIT_WATTS,
        }
    }

    /// Whether the policy satisfies the regulation.
    pub fn compliant(&self) -> bool {
        self.standby_watts <= self.limit_watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_on_resumes_under_two_seconds() {
        // §2.1: suspend-to-RAM is "extremely effective; e.g., less than
        // 2 s with… 'Instant-On'".
        let t = SuspendToRam::tv().resume_time();
        assert!(t < SimDuration::from_secs(2), "resume {t}");
        assert!(t > SimDuration::from_millis(500), "suspiciously fast {t}");
    }

    #[test]
    fn silent_boot_then_suspend_violates_eu_regulation() {
        // The rejected design of §2.1.
        assert!(!StandbyPolicy::tv_suspend_to_ram().compliant());
        // A genuinely off TV is fine — which is why the cold boot must
        // be fast instead.
        assert!(StandbyPolicy::tv_cold_off().compliant());
    }

    #[test]
    fn resume_scales_with_device_count() {
        let small = SuspendToRam {
            devices: 10,
            ..SuspendToRam::tv()
        };
        let big = SuspendToRam {
            devices: 200,
            ..SuspendToRam::tv()
        };
        assert!(big.resume_time() > small.resume_time());
    }
}
