//! Suspend-to-RAM ("Instant On") and the EU standby-power constraint
//! (§2.1).
//!
//! Suspend-to-RAM resumes in well under two seconds — but only while
//! the device stays powered. The paper explains why TVs cannot rely on
//! it: users unplug TVs, and the workaround of booting silently at
//! plug-in and suspending until the power button "may violate a
//! regulation of the European Union… the power consumption of a TV in
//! standby cannot exceed 1 W. An active smart TV application processor
//! consumes well over 1 W."
//!
//! [`SuspendToRam::simulate_resume`] runs the resume *on a machine*:
//! take a fully-booted machine (typically round-tripped through
//! [`bb_sim::snapshot`] — RAM contents survive suspend, so the snapshot
//! *is* the suspended image), spawn the wake sequence on it, and run to
//! quiescence. `bbsim suspend` uses this to put real numbers behind the
//! §2.1 comparison: instant-on resume vs. the BB cold boot vs. the
//! conventional cold boot.

use bb_sim::{Machine, OpsBuilder, ProcessSpec, SimDuration, SimTime};

/// Suspend-to-RAM resume model.
#[derive(Debug, Clone, Copy)]
pub struct SuspendToRam {
    /// Fixed SoC/firmware wake latency.
    pub wake_latency: SimDuration,
    /// Number of device drivers with resume hooks.
    pub devices: u32,
    /// Average resume cost per device.
    pub per_device_resume: SimDuration,
    /// Display pipeline restart (panel power + first frame).
    pub display_restart: SimDuration,
}

impl SuspendToRam {
    /// A 2015 smart-TV-class SoC.
    pub fn tv() -> Self {
        SuspendToRam {
            wake_latency: SimDuration::from_millis(120),
            devices: 60,
            per_device_resume: SimDuration::from_micros(9_000),
            display_restart: SimDuration::from_millis(350),
        }
    }

    /// Time from power-button press to a usable device (the closed-form
    /// model; [`simulate_resume`](Self::simulate_resume) is the
    /// executed version and matches it on an idle machine).
    pub fn resume_time(&self) -> SimDuration {
        self.wake_latency + self.per_device_resume * u64::from(self.devices) + self.display_restart
    }

    /// Executes the resume sequence on `machine` — SoC wake, one resume
    /// hook per device driver (serial, exactly how the kernel walks the
    /// suspend order), then the display pipeline restart — and runs the
    /// machine to quiescence.
    ///
    /// `machine` should be a fully-booted, quiescent machine restored
    /// from a [`bb_sim::snapshot`]: suspend-to-RAM keeps DRAM powered,
    /// so the snapshot of the booted machine is a faithful stand-in for
    /// the suspended RAM image, and the resumed timeline continues from
    /// the machine's own clock.
    pub fn simulate_resume(&self, machine: &mut Machine) -> ResumeReport {
        let suspended_at = machine.now();
        let done = machine.flag("resume-complete");
        let mut ops = OpsBuilder::new().compute(self.wake_latency);
        for _ in 0..self.devices {
            ops = ops.compute(self.per_device_resume);
        }
        let ops = ops.compute(self.display_restart).set_flag(done).build();
        machine.spawn(ProcessSpec::new("suspend-resume", ops));
        let outcome = machine.run();
        ResumeReport {
            suspended_at,
            resumed_at: outcome.end_time,
        }
    }
}

/// Measured outcome of [`SuspendToRam::simulate_resume`].
#[derive(Debug, Clone, Copy)]
pub struct ResumeReport {
    /// Machine clock when the wake was requested (= when the booted
    /// machine went quiescent and was suspended).
    pub suspended_at: SimTime,
    /// Machine clock when the resume sequence finished.
    pub resumed_at: SimTime,
}

impl ResumeReport {
    /// Power-button press to usable device.
    pub fn resume_time(&self) -> SimDuration {
        self.resumed_at.since(self.suspended_at)
    }
}

/// Standby-power policy check for the "boot silently at plug-in, then
/// suspend" idea.
#[derive(Debug, Clone, Copy)]
pub struct StandbyPolicy {
    /// Power drawn while suspended, in watts.
    pub standby_watts: f64,
    /// Regulatory limit (EU: 1 W for TVs).
    pub limit_watts: f64,
}

impl StandbyPolicy {
    /// EU Commission Regulation No 801/2013 limit.
    pub const EU_LIMIT_WATTS: f64 = 1.0;

    /// A TV keeping DRAM + always-on domain powered in suspend-to-RAM.
    pub fn tv_suspend_to_ram() -> Self {
        StandbyPolicy {
            // DRAM self-refresh + PMIC + wake sources: above the limit
            // for a 2015 TV AP ("well over 1 W" when the AP stays up).
            standby_watts: 1.8,
            limit_watts: Self::EU_LIMIT_WATTS,
        }
    }

    /// A true cold-off TV (only the power-button sense circuit).
    pub fn tv_cold_off() -> Self {
        StandbyPolicy {
            standby_watts: 0.3,
            limit_watts: Self::EU_LIMIT_WATTS,
        }
    }

    /// Whether the policy satisfies the regulation.
    pub fn compliant(&self) -> bool {
        self.standby_watts <= self.limit_watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_on_resumes_under_two_seconds() {
        // §2.1: suspend-to-RAM is "extremely effective; e.g., less than
        // 2 s with… 'Instant-On'".
        let t = SuspendToRam::tv().resume_time();
        assert!(t < SimDuration::from_secs(2), "resume {t}");
        assert!(t > SimDuration::from_millis(500), "suspiciously fast {t}");
    }

    #[test]
    fn silent_boot_then_suspend_violates_eu_regulation() {
        // The rejected design of §2.1.
        assert!(!StandbyPolicy::tv_suspend_to_ram().compliant());
        // A genuinely off TV is fine — which is why the cold boot must
        // be fast instead.
        assert!(StandbyPolicy::tv_cold_off().compliant());
    }

    /// The executed resume matches the closed-form model on an idle
    /// single-purpose machine: nothing competes with the wake process.
    #[test]
    fn simulated_resume_matches_the_closed_form() {
        use bb_sim::MachineConfig;
        let model = SuspendToRam::tv();
        let mut m = Machine::new(MachineConfig::default());
        let report = model.simulate_resume(&mut m);
        assert_eq!(report.resume_time(), model.resume_time());
        assert_eq!(report.suspended_at, SimTime::ZERO);
    }

    /// Resume continues the machine's own clock — simulating it on a
    /// machine that has already run leaves history intact.
    #[test]
    fn resume_continues_a_used_machine() {
        use bb_sim::MachineConfig;
        let mut m = Machine::new(MachineConfig::default());
        m.spawn(ProcessSpec::new(
            "boot",
            OpsBuilder::new().compute_ms(5).build(),
        ));
        m.run();
        let report = SuspendToRam::tv().simulate_resume(&mut m);
        assert_eq!(
            report.suspended_at,
            SimTime::ZERO + SimDuration::from_millis(5)
        );
        assert_eq!(report.resume_time(), SuspendToRam::tv().resume_time());
    }

    #[test]
    fn resume_scales_with_device_count() {
        let small = SuspendToRam {
            devices: 10,
            ..SuspendToRam::tv()
        };
        let big = SuspendToRam {
            devices: 200,
            ..SuspendToRam::tv()
        };
        assert!(big.resume_time() > small.resume_time());
    }
}
