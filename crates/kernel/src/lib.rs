//! # bb-kernel — simulated Linux kernel boot
//!
//! The kernel-side substrate of the Booting Booster reproduction:
//! a cost-model of the serial kernel boot (bootloader, image load,
//! memory initialization, leveled initcalls, rootfs mount) executed on a
//! [`bb_sim::Machine`], plus catalogs of loadable kernel components and
//! the analytic background models of the paper's §2.
//!
//! The Core Engine knobs of the paper map onto [`boot::KernelPlan`]
//! fields: `defer_memory` (partial memory init), `defer_initcalls`
//! (On-demand Modularizer), and `defer_journal` (read-only rootfs mount
//! with a post-boot journal remount).

pub mod analysis;
pub mod boot;
pub mod initcall;
pub mod memory;
pub mod modules;
pub mod suspend;

pub use analysis::{CompressionModel, SnapshotModel};
pub use boot::{execute_kernel_boot, KernelPhase, KernelPlan, KernelReport, RootfsPlan};
pub use initcall::{Criticality, Initcall, InitcallLevel, InitcallRegistry};
pub use memory::MemoryPlan;
pub use modules::{synthetic_catalog, KernelModule, ModuleCatalog, ModuleLoadCosts};
pub use suspend::{ResumeReport, StandbyPolicy, SuspendToRam};
