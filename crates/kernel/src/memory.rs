//! Memory-initialization model.
//!
//! The kernel zeroes and registers physical memory (struct-page init,
//! zone setup) proportionally to DRAM size; "initializing only the
//! required size of memory and defer\[ring\] initializing the remaining
//! area … may take too much time with modern large-memory computing
//! devices" (§3.1). On the UE48H6200 (1 GiB) the paper reports 370 ms
//! conventional vs 110 ms with deferral.

use bb_sim::{OpsBuilder, ProcessSpec, SimDuration};

/// DRAM initialization plan.
#[derive(Debug, Clone, Copy)]
pub struct MemoryPlan {
    /// Total DRAM size in MiB.
    pub total_mib: u64,
    /// MiB initialized eagerly at kernel boot when deferral is on.
    pub required_mib: u64,
    /// Fixed setup cost independent of size.
    pub base_cost: SimDuration,
    /// Reference CPU cost per MiB initialized.
    pub per_mib_cost: SimDuration,
}

impl MemoryPlan {
    /// The UE48H6200 TV plan: 1 GiB total, calibrated so that full init
    /// costs ≈370 ms and deferred init ≈110 ms (paper Figure 6(a)).
    pub fn tv_1gib() -> Self {
        MemoryPlan {
            total_mib: 1024,
            required_mib: 296,
            base_cost: SimDuration::from_millis(4),
            per_mib_cost: SimDuration::from_micros(357),
        }
    }

    /// Cost of initializing all DRAM at boot (conventional).
    pub fn full_init_cost(&self) -> SimDuration {
        self.base_cost + self.per_mib_cost * self.total_mib
    }

    /// Cost of initializing only the required region at boot (deferred).
    ///
    /// # Panics
    ///
    /// Panics if `required_mib > total_mib`.
    pub fn eager_init_cost(&self) -> SimDuration {
        assert!(self.required_mib <= self.total_mib, "required > total");
        self.base_cost + self.per_mib_cost * self.required_mib
    }

    /// Cost of the deferred remainder (runs post-boot in background).
    pub fn deferred_init_cost(&self) -> SimDuration {
        self.per_mib_cost * (self.total_mib - self.required_mib)
    }

    /// The background process that initializes the deferred region after
    /// the given flag (boot completion) is set. Runs at low priority.
    pub fn deferred_init_process(&self, gate: bb_sim::FlagId) -> ProcessSpec {
        ProcessSpec::new(
            "kworker/mem-deferred-init",
            OpsBuilder::new()
                .wait_flag(gate)
                .compute(self.deferred_init_cost())
                .build(),
        )
        .with_nice(15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tv_plan_matches_paper_figures() {
        let p = MemoryPlan::tv_1gib();
        let full = p.full_init_cost().as_millis();
        let eager = p.eager_init_cost().as_millis();
        assert!((360..=380).contains(&full), "full {full} ms");
        assert!((100..=120).contains(&eager), "eager {eager} ms");
    }

    #[test]
    fn costs_partition() {
        let p = MemoryPlan::tv_1gib();
        let whole = p.eager_init_cost() + p.deferred_init_cost();
        // Eager + deferred covers all memory plus the base cost once.
        assert_eq!(whole, p.full_init_cost());
    }

    #[test]
    fn deferred_process_is_gated_and_low_priority() {
        let p = MemoryPlan::tv_1gib();
        let spec = p.deferred_init_process(bb_sim::FlagId::from_raw(0));
        assert_eq!(spec.nice, 15);
        assert_eq!(spec.ops.len(), 2);
    }

    #[test]
    #[should_panic(expected = "required > total")]
    fn eager_more_than_total_panics() {
        let p = MemoryPlan {
            total_mib: 100,
            required_mib: 200,
            base_cost: SimDuration::ZERO,
            per_mib_cost: SimDuration::from_micros(1),
        };
        p.eager_init_cost();
    }
}
