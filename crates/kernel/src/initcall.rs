//! Kernel initcalls: the ordered initialization hooks of built-in
//! kernel components.
//!
//! Linux runs built-in component initialization through leveled initcall
//! sections (`early_initcall` … `late_initcall`). The paper's On-demand
//! Modularizer (Core Engine, §3.1) tags non-boot-critical built-in
//! components and defers their initcalls until after boot completion,
//! avoiding both the serial kernel-boot cost *and* the user-space
//! alternative of loading external `.ko` modules (which pays open/read/
//! close syscalls and flash I/O per module — a 2015 Samsung TV has 408
//! of them).

use bb_sim::SimDuration;

/// Linux initcall levels, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InitcallLevel {
    /// `early_initcall`: before SMP bring-up.
    Early,
    /// `pure_initcall` / `core_initcall`.
    Core,
    /// `postcore_initcall`.
    PostCore,
    /// `arch_initcall`.
    Arch,
    /// `subsys_initcall`.
    Subsys,
    /// `fs_initcall`.
    Fs,
    /// `device_initcall` (plain `module_init` for built-ins).
    Device,
    /// `late_initcall`.
    Late,
}

impl InitcallLevel {
    /// All levels in execution order.
    pub const ALL: [InitcallLevel; 8] = [
        InitcallLevel::Early,
        InitcallLevel::Core,
        InitcallLevel::PostCore,
        InitcallLevel::Arch,
        InitcallLevel::Subsys,
        InitcallLevel::Fs,
        InitcallLevel::Device,
        InitcallLevel::Late,
    ];
}

/// Whether a component must initialize before user space can boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criticality {
    /// Required to reach the init process (storage, console, clocks…).
    BootCritical,
    /// Usable after boot completion (USB, bluetooth, debug, tracing…);
    /// a candidate for On-demand Modularizer deferral.
    Deferrable,
}

/// One built-in kernel component's initialization hook.
#[derive(Debug, Clone)]
pub struct Initcall {
    /// Component name (e.g. `usb-host`, `emmc-ctrl`).
    pub name: String,
    /// Execution level.
    pub level: InitcallLevel,
    /// Reference CPU cost of running the hook.
    pub cost: SimDuration,
    /// Boot-criticality classification.
    pub criticality: Criticality,
}

impl Initcall {
    /// Creates an initcall.
    pub fn new(
        name: impl Into<String>,
        level: InitcallLevel,
        cost: SimDuration,
        criticality: Criticality,
    ) -> Self {
        Initcall {
            name: name.into(),
            level,
            cost,
            criticality,
        }
    }
}

/// The kernel's registered initcalls, ordered by level.
#[derive(Debug, Clone, Default)]
pub struct InitcallRegistry {
    calls: Vec<Initcall>,
}

impl InitcallRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an initcall.
    pub fn register(&mut self, call: Initcall) {
        self.calls.push(call);
    }

    /// All calls in level order (stable within a level).
    pub fn in_order(&self) -> Vec<&Initcall> {
        let mut v: Vec<&Initcall> = self.calls.iter().collect();
        v.sort_by_key(|c| c.level);
        v
    }

    /// Number of registered calls.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// True if no calls are registered.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Total cost of calls matching `criticality`.
    pub fn total_cost(&self, criticality: Option<Criticality>) -> SimDuration {
        self.calls
            .iter()
            .filter(|c| criticality.is_none_or(|k| c.criticality == k))
            .map(|c| c.cost)
            .sum()
    }

    /// Splits into (run-at-boot, deferred) according to `defer_deferrable`:
    /// when true, every [`Criticality::Deferrable`] call is deferred
    /// (the On-demand Modularizer's partition); when false, everything
    /// runs at boot.
    pub fn partition(&self, defer_deferrable: bool) -> (Vec<&Initcall>, Vec<&Initcall>) {
        let ordered = self.in_order();
        if !defer_deferrable {
            return (ordered, Vec::new());
        }
        ordered
            .into_iter()
            .partition(|c| c.criticality == Criticality::BootCritical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> InitcallRegistry {
        let mut r = InitcallRegistry::new();
        r.register(Initcall::new(
            "usb-host",
            InitcallLevel::Device,
            SimDuration::from_millis(8),
            Criticality::Deferrable,
        ));
        r.register(Initcall::new(
            "emmc-ctrl",
            InitcallLevel::Subsys,
            SimDuration::from_millis(5),
            Criticality::BootCritical,
        ));
        r.register(Initcall::new(
            "clk-core",
            InitcallLevel::Core,
            SimDuration::from_millis(2),
            Criticality::BootCritical,
        ));
        r
    }

    #[test]
    fn ordering_by_level() {
        let r = registry();
        let names: Vec<&str> = r.in_order().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["clk-core", "emmc-ctrl", "usb-host"]);
    }

    #[test]
    fn totals_by_criticality() {
        let r = registry();
        assert_eq!(r.total_cost(None).as_millis(), 15);
        assert_eq!(r.total_cost(Some(Criticality::BootCritical)).as_millis(), 7);
        assert_eq!(r.total_cost(Some(Criticality::Deferrable)).as_millis(), 8);
    }

    #[test]
    fn partition_defers_only_deferrable() {
        let r = registry();
        let (now, deferred) = r.partition(true);
        assert_eq!(now.len(), 2);
        assert_eq!(deferred.len(), 1);
        assert_eq!(deferred[0].name, "usb-host");
        let (all, none) = r.partition(false);
        assert_eq!(all.len(), 3);
        assert!(none.is_empty());
    }

    #[test]
    fn level_order_is_kernel_order() {
        let mut sorted = InitcallLevel::ALL;
        sorted.sort();
        assert_eq!(sorted, InitcallLevel::ALL);
        assert!(InitcallLevel::Early < InitcallLevel::Late);
    }
}
