//! Kernel boot execution: bootloader → image load → memory init →
//! initcalls → rootfs mount, on the simulated machine.
//!
//! The kernel phase is serial on the boot CPU (matching Linux before the
//! init process starts), so it advances the machine clock directly.
//! Deferred pieces (remaining memory, deferrable initcalls, the journal
//! remount) are spawned as background processes gated on the
//! boot-completion flag — they then compete for cores like any other
//! post-boot work.

use bb_sim::{
    AccessPattern, DeviceId, FlagId, Machine, OpsBuilder, ProcessSpec, SimDuration, SimTime,
};

use crate::initcall::InitcallRegistry;
use crate::memory::MemoryPlan;

/// Root filesystem mount plan.
///
/// The Boot-up Engine defers enabling the EXT4 journal: "we virtually
/// are read-only while booting and we can remount the root file system
/// \[in\] writable journal mode later as a deferred task" (§3.2). The
/// paper reports 110 ms conventional vs 75 ms deferred.
#[derive(Debug, Clone, Copy)]
pub struct RootfsPlan {
    /// Superblock/metadata bytes read at mount.
    pub metadata_bytes: u64,
    /// CPU cost of a read-only mount.
    pub ro_mount_cost: SimDuration,
    /// Extra CPU cost of enabling the writable journal at mount time.
    pub journal_enable_cost: SimDuration,
}

impl RootfsPlan {
    /// The TV's eMMC rootfs, calibrated to Figure 6(a): ~110 ms full
    /// mount vs ~75 ms read-only (metadata I/O of ~2 MiB random at
    /// 37 MiB/s ≈ 54 ms is common to both).
    pub fn tv_emmc() -> Self {
        RootfsPlan {
            metadata_bytes: 2 * bb_sim::MIB,
            ro_mount_cost: SimDuration::from_millis(20),
            journal_enable_cost: SimDuration::from_millis(35),
        }
    }
}

/// Everything the kernel does before handing over to user space.
#[derive(Debug, Clone)]
pub struct KernelPlan {
    /// Boot ROM + bootloader latency (fixed, before the kernel).
    pub bootloader: SimDuration,
    /// Kernel image size read from flash by the bootloader.
    pub image_bytes: u64,
    /// DRAM initialization plan.
    pub memory: MemoryPlan,
    /// Built-in component initcalls.
    pub initcalls: InitcallRegistry,
    /// Root filesystem plan.
    pub rootfs: RootfsPlan,
    /// Residual serial kernel work not covered above (SMP bring-up,
    /// subsystem core init, driver model…).
    pub misc: SimDuration,
    /// Defer non-required memory initialization (Core Engine).
    pub defer_memory: bool,
    /// Defer deferrable initcalls (On-demand Modularizer).
    pub defer_initcalls: bool,
    /// Mount read-only now, enable the journal post-boot (Boot-up Engine).
    pub defer_journal: bool,
}

/// One named kernel boot phase and its duration.
#[derive(Debug, Clone)]
pub struct KernelPhase {
    /// Phase name.
    pub name: &'static str,
    /// Phase start time.
    pub start: SimTime,
    /// Phase duration.
    pub duration: SimDuration,
}

/// Result of executing the kernel plan.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Ordered phases with timing.
    pub phases: Vec<KernelPhase>,
    /// Time user space can start (end of the last serial phase).
    pub userspace_start: SimTime,
    /// Number of background processes spawned for deferred work.
    pub deferred_spawned: usize,
}

impl KernelReport {
    /// Duration of the named phase, if present.
    pub fn phase(&self, name: &str) -> Option<SimDuration> {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.duration)
    }

    /// Total serial kernel time (bootloader excluded).
    pub fn kernel_total(&self) -> SimDuration {
        self.phases
            .iter()
            .filter(|p| p.name != "bootloader")
            .map(|p| p.duration)
            .sum()
    }
}

/// Executes the kernel plan on `machine`, reading from `boot_device`.
///
/// Deferred work is gated on `boot_complete` (set later by the init
/// layer when the boot-completion definition is met). Returns a phase
/// report; on return, `machine.now()` is the instant the first user
/// process may start.
pub fn execute_kernel_boot(
    machine: &mut Machine,
    boot_device: DeviceId,
    plan: &KernelPlan,
    boot_complete: FlagId,
) -> KernelReport {
    let mut phases = Vec::new();
    let mut deferred_spawned = 0;
    let record = |machine: &Machine, name, start: SimTime| KernelPhase {
        name,
        start,
        duration: machine.now().since(start),
    };

    // Bootloader: ROM latency plus the kernel image read from flash.
    let start = machine.now();
    machine.advance_time(plan.bootloader);
    let image_read = machine
        .device(boot_device)
        .profile
        .service_time(plan.image_bytes, AccessPattern::Sequential);
    machine.advance_time(image_read);
    phases.push(record(machine, "bootloader", start));

    // Memory initialization.
    let start = machine.now();
    if plan.defer_memory {
        machine.advance_time(plan.memory.eager_init_cost());
        machine.spawn(plan.memory.deferred_init_process(boot_complete));
        deferred_spawned += 1;
    } else {
        machine.advance_time(plan.memory.full_init_cost());
    }
    phases.push(record(machine, "memory-init", start));

    // Initcalls, serial in level order; deferrable ones become gated
    // background processes when the On-demand Modularizer is active.
    let start = machine.now();
    let (now_calls, deferred_calls) = plan.initcalls.partition(plan.defer_initcalls);
    let serial: SimDuration = now_calls.iter().map(|c| c.cost).sum();
    machine.advance_time(serial);
    for call in deferred_calls {
        machine.spawn(
            ProcessSpec::new(
                format!("kworker/defer-init:{}", call.name),
                OpsBuilder::new()
                    .wait_flag(boot_complete)
                    .compute(call.cost)
                    .build(),
            )
            .with_nice(10),
        );
        deferred_spawned += 1;
    }
    phases.push(record(machine, "initcalls", start));

    // Residual serial kernel work.
    let start = machine.now();
    machine.advance_time(plan.misc);
    phases.push(record(machine, "kernel-misc", start));

    // Root filesystem mount.
    let start = machine.now();
    let meta_read = machine
        .device(boot_device)
        .profile
        .service_time(plan.rootfs.metadata_bytes, AccessPattern::Random);
    machine.advance_time(meta_read);
    machine.advance_time(plan.rootfs.ro_mount_cost);
    if plan.defer_journal {
        machine.spawn(
            ProcessSpec::new(
                "remount-rw-journal",
                OpsBuilder::new()
                    .wait_flag(boot_complete)
                    .compute(plan.rootfs.journal_enable_cost)
                    .build(),
            )
            .with_nice(10),
        );
        deferred_spawned += 1;
    } else {
        machine.advance_time(plan.rootfs.journal_enable_cost);
    }
    phases.push(record(machine, "rootfs-mount", start));

    KernelReport {
        phases,
        userspace_start: machine.now(),
        deferred_spawned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initcall::{Criticality, Initcall, InitcallLevel};
    use bb_sim::{DeviceProfile, MachineConfig};

    fn plan(defer: bool) -> KernelPlan {
        let mut initcalls = InitcallRegistry::new();
        initcalls.register(Initcall::new(
            "emmc",
            InitcallLevel::Subsys,
            SimDuration::from_millis(30),
            Criticality::BootCritical,
        ));
        initcalls.register(Initcall::new(
            "usb",
            InitcallLevel::Device,
            SimDuration::from_millis(40),
            Criticality::Deferrable,
        ));
        KernelPlan {
            bootloader: SimDuration::from_millis(100),
            image_bytes: 10 * bb_sim::MIB,
            memory: MemoryPlan::tv_1gib(),
            initcalls,
            rootfs: RootfsPlan::tv_emmc(),
            misc: SimDuration::from_millis(50),
            defer_memory: defer,
            defer_initcalls: defer,
            defer_journal: defer,
        }
    }

    fn run(defer: bool) -> (KernelReport, Machine) {
        let mut m = Machine::new(MachineConfig::default());
        let dev = m.add_device("emmc", DeviceProfile::tv_emmc());
        let flag = m.flag("boot-complete");
        let report = execute_kernel_boot(&mut m, dev, &plan(defer), flag);
        (report, m)
    }

    #[test]
    fn conventional_kernel_phases_sum() {
        let (report, m) = run(false);
        assert_eq!(report.phases.len(), 5);
        assert_eq!(report.userspace_start, m.now());
        // Memory full init ≈ 370 ms, both initcalls 70 ms, misc 50 ms.
        let mem = report.phase("memory-init").unwrap().as_millis();
        assert!((360..=380).contains(&mem), "mem {mem}");
        assert_eq!(report.phase("initcalls").unwrap().as_millis(), 70);
        assert_eq!(report.deferred_spawned, 0);
    }

    #[test]
    fn bb_kernel_is_faster_and_defers_work() {
        let (conv, _) = run(false);
        let (bb, _) = run(true);
        assert!(bb.userspace_start < conv.userspace_start);
        // Deferred: memory remainder + usb initcall + journal remount.
        assert_eq!(bb.deferred_spawned, 3);
        let mem = bb.phase("memory-init").unwrap().as_millis();
        assert!((100..=120).contains(&mem), "mem {mem}");
        assert_eq!(bb.phase("initcalls").unwrap().as_millis(), 30);
    }

    #[test]
    fn deferred_work_runs_after_boot_complete() {
        let mut m = Machine::new(MachineConfig::default());
        let dev = m.add_device("emmc", DeviceProfile::tv_emmc());
        let flag = m.flag("boot-complete");
        execute_kernel_boot(&mut m, dev, &plan(true), flag);
        let quiesced = m.run();
        // Deferred processes still blocked on the gate.
        assert_eq!(quiesced.blocked.len(), 3);
        m.set_flag_external(flag);
        let done = m.run();
        assert!(done.blocked.is_empty());
        // Deferred memory init (~256 MiB worth) dominates the tail.
        assert!(done.end_time > quiesced.end_time);
    }

    #[test]
    fn rootfs_costs_match_paper_band() {
        let (conv, _) = run(false);
        let (bb, _) = run(true);
        let full = conv.phase("rootfs-mount").unwrap().as_millis();
        let ro = bb.phase("rootfs-mount").unwrap().as_millis();
        assert!((100..=125).contains(&full), "full mount {full}");
        assert!((65..=85).contains(&ro), "ro mount {ro}");
    }

    #[test]
    fn kernel_total_excludes_bootloader() {
        let (report, _) = run(false);
        let with_bl: SimDuration = report.phases.iter().map(|p| p.duration).sum();
        assert!(report.kernel_total() < with_bl);
    }
}
