//! Analytic background models from the paper's §2: snapshot (hibernation)
//! boot and boot-image compression.
//!
//! These reproduce the quantitative arguments the paper uses to justify
//! cold-boot optimization over the alternatives:
//!
//! * §2.1 — restoring a hibernation snapshot reads the used DRAM image
//!   from flash: a 3 GiB image at the Galaxy S6's ~300 MiB/s UFS takes
//!   ~10 s, so snapshot booting stops scaling with DRAM size.
//! * §2.3 — compression only helps while decompression outruns flash:
//!   the S6 decompresses at ~35 MiB/s (all eight cores) but reads at
//!   ~300 MiB/s, so compressed images *slow* booting.

use bb_sim::{DeviceProfile, SimDuration, MIB};

/// Snapshot (hibernation) restore model.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotModel {
    /// DRAM image size to restore, in MiB.
    pub image_mib: u64,
    /// Storage the snapshot is read from.
    pub storage: DeviceProfile,
    /// Fixed firmware/bootloader overhead before the restore starts.
    pub fixed_overhead: SimDuration,
}

impl SnapshotModel {
    /// Time to restore the snapshot (sequential read + overhead).
    pub fn restore_time(&self) -> SimDuration {
        self.fixed_overhead
            + self
                .storage
                .service_time(self.image_mib * MIB, bb_sim::AccessPattern::Sequential)
    }

    /// Time to *create* the snapshot at shutdown, assuming write
    /// throughput is `write_fraction` of sequential read throughput.
    ///
    /// # Panics
    ///
    /// Panics if `write_fraction` is not in (0, 1].
    pub fn create_time(&self, write_fraction: f64) -> SimDuration {
        assert!(
            write_fraction > 0.0 && write_fraction <= 1.0,
            "write fraction out of range"
        );
        let bytes = self.image_mib * MIB;
        let secs = bytes as f64 / (self.storage.seq_read_bps as f64 * write_fraction);
        SimDuration::from_secs_f64(secs)
    }
}

/// Boot-image compression model (§2.3).
#[derive(Debug, Clone, Copy)]
pub struct CompressionModel {
    /// Uncompressed image size in MiB.
    pub image_mib: u64,
    /// Compression ratio (compressed = image / ratio), e.g. 2.0.
    pub ratio: f64,
    /// Decompression throughput in MiB/s (output bytes).
    pub decompress_mibs: u64,
    /// Storage the image is read from.
    pub storage: DeviceProfile,
}

impl CompressionModel {
    /// Load time *without* compression: plain sequential read.
    pub fn uncompressed_time(&self) -> SimDuration {
        self.storage
            .service_time(self.image_mib * MIB, bb_sim::AccessPattern::Sequential)
    }

    /// Load time *with* compression: read of the smaller image pipelined
    /// with decompression — the slower of the two stages dominates.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is not > 1.
    pub fn compressed_time(&self) -> SimDuration {
        assert!(self.ratio > 1.0, "compression ratio must exceed 1");
        let compressed_bytes = (self.image_mib as f64 / self.ratio * MIB as f64) as u64;
        let read = self
            .storage
            .service_time(compressed_bytes, bb_sim::AccessPattern::Sequential);
        let decompress =
            SimDuration::from_secs_f64(self.image_mib as f64 / self.decompress_mibs as f64);
        read.max(decompress)
    }

    /// True if compression speeds up loading on this hardware.
    pub fn compression_wins(&self) -> bool {
        self.compressed_time() < self.uncompressed_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn galaxy_s6_snapshot_takes_ten_seconds() {
        // §2.1: 3 GiB at ~300 MiB/s ⇒ ~10 s.
        let m = SnapshotModel {
            image_mib: 3 * 1024,
            storage: DeviceProfile::ufs20(),
            fixed_overhead: SimDuration::ZERO,
        };
        let t = m.restore_time().as_secs_f64();
        assert!((9.5..11.0).contains(&t), "restore {t} s");
    }

    #[test]
    fn small_snapshot_on_camera_is_fast() {
        // NX300-class: few hundred MiB, ~1 s restore (§2.1).
        let m = SnapshotModel {
            image_mib: 256,
            storage: DeviceProfile::tv_emmc(),
            fixed_overhead: SimDuration::from_millis(300),
        };
        let t = m.restore_time().as_secs_f64();
        assert!((1.0..3.5).contains(&t), "restore {t} s");
    }

    #[test]
    fn snapshot_create_slower_than_restore() {
        let m = SnapshotModel {
            image_mib: 1024,
            storage: DeviceProfile::tv_emmc(),
            fixed_overhead: SimDuration::ZERO,
        };
        assert!(m.create_time(0.5) > m.restore_time());
    }

    #[test]
    fn compression_loses_on_modern_flash() {
        // §2.3: S6 decompresses at 35 MiB/s vs 300 MiB/s flash.
        let m = CompressionModel {
            image_mib: 100,
            ratio: 2.0,
            decompress_mibs: 35,
            storage: DeviceProfile::ufs20(),
        };
        assert!(!m.compression_wins());
    }

    #[test]
    fn compression_wins_on_slow_flash() {
        // Historic case: slow NOR/NAND (say 10 MiB/s) with fast-enough
        // decompression made compression worthwhile.
        let m = CompressionModel {
            image_mib: 100,
            ratio: 2.0,
            decompress_mibs: 80,
            storage: DeviceProfile::from_mibs(10, 5, SimDuration::ZERO),
        };
        assert!(m.compression_wins());
    }

    #[test]
    #[should_panic(expected = "compression ratio")]
    fn bad_ratio_panics() {
        CompressionModel {
            image_mib: 1,
            ratio: 0.5,
            decompress_mibs: 10,
            storage: DeviceProfile::tv_emmc(),
        }
        .compressed_time();
    }
}
