//! # bb-fleet — boot-simulation sweep engine and fleet service
//!
//! The evaluation sections of the paper (and this repo's EXPERIMENTS.md)
//! are built from *sweeps*: thousands of independent boot simulations
//! across seeds, workload parameters, machine profiles, and
//! [`bb_core::BbConfig`] feature sets. Serially those dominate
//! experiment turnaround; bb-fleet executes them on a persistent
//! work-queue service while keeping the one property the experiments
//! depend on — **deterministic output**.
//!
//! * [`spec`] — [`SweepSpec`]: a grid of cells, each a scenario source
//!   × seed list × config list. One job boots every config of one
//!   `(cell, seed)` instance, sharing one generated scenario and one
//!   [`bb_core::PreParser`] measurement across the config axis.
//! * [`service`] — [`FleetService`]: the persistent executor. Long-lived
//!   workers, a central bounded work queue with per-client round-robin
//!   fairness, `submit`/`poll`/`wait`/`cancel` tickets, per-client
//!   quotas, and one service-wide [`FleetCache`] every ticket shares.
//!   This is what `bbsim serve` runs.
//! * [`pool`] — the one-shot entry point [`run_sweep`] (a thin client
//!   that runs a single ticket on a private service) plus the shared
//!   [`FleetCache`] — compiled boot plans ([`bb_core::PlanCache`]),
//!   memoized scenarios, deduplicated boot outcomes
//!   ([`SweepSpec::dedup`]), and service-wide kernel checkpoints
//!   ([`SweepSpec::fork`]). Per-job panic isolation, per-job wall-clock
//!   deadlines, a failed-job report path, and observability counters
//!   ([`PoolStats`]).
//! * [`aggregate`] — the streaming [`Aggregator`]: consumes results in
//!   arrival order into seed-addressed slots, finalizes in slot order.
//!   Count/mean/stddev/min/max and nearest-rank p50/p95/p99 per
//!   (cell, config), savings vs the cell's `"conventional"` config,
//!   baseline-comparison mode against a saved report (schema
//!   `bb-fleet-v1`), and — when [`SweepSpec::with_metrics`] is on —
//!   per-span telemetry percentiles as a [`MetricsReport`]
//!   (`bb-metrics-v1`).
//! * [`json`] — the hand-rolled JSON codec (same auditable-codec policy
//!   as `bb-init::preparse`; DESIGN.md §4 keeps serde out) plus the
//!   schema constants every emitter stamps its document with via
//!   [`json::open_document`].
//! * [`chaos`] — [`run_chaos`]: the fault-injection sweep, gridding
//!   `{seed × fault-plan × corruption × config}` through the supervised
//!   [`bb_core::run_with_fallback_recovering`] boot and aggregating
//!   recovery rate, restart counts, degraded-boot rate, artifact
//!   rejection rates, recovery-cost percentiles, and
//!   boot-time-under-fault percentiles (schema `bb-fleet-chaos-v2`).
//!   Chaos grids submit to the same service as plain sweeps
//!   ([`WorkItem::Chaos`]).
//!
//! The aggregated report — including its JSON serialization — is
//! byte-identical for any worker count, any cache state, and any
//! interleaving of concurrent clients: results land in slots addressed
//! by `(cell, seed_idx)`, statistics are computed in slot order at
//! finalize, and nothing host-time-dependent (worker timings, queue
//! depths) enters the report. Pool observability lives separately in
//! [`PoolStats`] and [`ServiceStats`].
//!
//! ```
//! use bb_fleet::{CellSpec, FleetCache, PoolConfig, SweepSpec, run_sweep};
//! use bb_workloads::{profiles, TizenParams};
//!
//! let spec = SweepSpec::new().cell(
//!     CellSpec::tizen(
//!         "open-source",
//!         profiles::ue48h6200(),
//!         TizenParams { services: 24, ..TizenParams::open_source() },
//!     )
//!     .seeds(0..4)
//!     .conventional_vs_bb(),
//! );
//! let outcome = run_sweep(&spec, &PoolConfig::with_workers(2), &FleetCache::fresh());
//! assert_eq!(outcome.report.total_boots, 8);
//! println!("{}", outcome.report.summary());
//! println!("{}", outcome.stats.summary());
//! ```

pub mod aggregate;
pub mod chaos;
pub mod json;
pub mod pool;
pub mod service;
pub mod spec;

pub use aggregate::{
    diff_baseline_json, Aggregator, CellMetrics, CellReport, ConfigMetrics, ConfigStats, DiffEntry,
    DiffVerdict, FailureReport, MetricsReport, SpanStats, SweepReport,
};
pub use chaos::{
    run_chaos, ChaosCellSpec, ChaosConfigStats, ChaosEvent, ChaosFailure, ChaosJob, ChaosOutcome,
    ChaosReport, ChaosSpec, Supervision,
};
pub use json::{parse as parse_json, Json, JsonError};
pub use pool::{
    run_sweep, BootSample, FailureKind, FleetCache, JobFailure, JobOutput, PoolConfig, PoolStats,
    SweepOutcome, WorkerStats,
};
pub use service::{
    ClientId, FleetService, ServiceConfig, ServiceReport, ServiceStats, SubmitError, TicketId,
    TicketStatus, WaitError, WorkItem,
};
pub use spec::{CellSpec, Job, ScenarioSource, SweepSpec};
