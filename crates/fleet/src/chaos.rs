//! Chaos sweeps: the `{seed × fault-plan × corruption × config}` grid.
//!
//! A chaos sweep measures the *failure envelope* the paper's deployment
//! story depends on: with faults injected into every boot, how often
//! does supervision (`Restart=`, start limits) recover the fast path,
//! how often does the BB→conventional fallback fire, and what does boot
//! time under fault look like? Each cell extends the plain sweep grid
//! with a **fault-plan axis**: plan slot `None` is the fault-free
//! control, plan slot `Some(seed)` derives a [`FaultPlan`] from that
//! seed and the scenario's own fault targets (see
//! [`bb_core::fault_targets`]), so the same plan seed means the same
//! faults for every config — the ablation comparison stays paired.
//!
//! A second failure axis targets the *artifacts*: corruption slot
//! `None` is the pristine control (no artifact read is staged, so the
//! integrity chain never runs and the boot matches the plain chaos
//! grid), slot `Some(seed)` derives a [`CorruptionPlan`] from that
//! seed, damages the scenario's encoded pre-parse blob with it, and
//! marks the read transiently flaky (both derived from the same seed),
//! driving the boot through [`bb_core::recovery`]. Per-config statistics then carry recovery
//! counts, artifact rejection rates, and recovery-cost percentiles;
//! degraded boots surface their [`bb_core::FallbackReason`].
//!
//! Determinism matches [`crate::pool::run_sweep`]: results land in
//! slots addressed by `(cell, plan, corruption, seed)`, statistics and
//! notable events are derived in slot order at finalize, and the JSON
//! report (schema `bb-fleet-chaos-v2`) is byte-identical for any worker
//! count.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::json;
use crate::pool::{panic_message, FailureKind, FleetCache, PoolConfig, PoolStats};
use crate::service::{FleetService, ServiceConfig, ServiceReport, WorkItem};
use crate::spec::ScenarioSource;
use bb_core::booster::Scenario;
use bb_core::{
    fault_targets, run_with_fallback_recovering, with_supervision, ArtifactRead, BbConfig,
    BootOutcome, FallbackPolicy, PreParser,
};
use bb_init::{encode_units, RestartPolicy};
use bb_sim::{CorruptionPlan, FaultPlan, SimDuration};
use bb_workloads::{tv_scenario_with, TizenParams};

/// Supervision overlay a chaos cell arms on every service unit.
#[derive(Debug, Clone, Copy)]
pub struct Supervision {
    /// Restart policy to apply.
    pub restart: RestartPolicy,
    /// `RestartSec=` backoff, milliseconds.
    pub restart_sec_ms: u64,
    /// `StartLimitBurst=` respawn bound.
    pub start_limit_burst: u32,
}

impl Default for Supervision {
    fn default() -> Self {
        Supervision {
            restart: RestartPolicy::OnFailure,
            restart_sec_ms: 100,
            start_limit_burst: 3,
        }
    }
}

/// One cell of the chaos grid.
#[derive(Debug, Clone)]
pub struct ChaosCellSpec {
    /// Cell label; appears in reports and JSON.
    pub label: String,
    /// Scenario source (shared with the plain sweep grid).
    pub source: ScenarioSource,
    /// Scenario seeds; one result slot per `(plan, seed)`.
    pub seeds: Vec<u64>,
    /// Fault-plan axis: `None` is the fault-free control, `Some(seed)`
    /// a seeded plan over the scenario's fault targets.
    pub plan_seeds: Vec<Option<u64>>,
    /// Corruption axis: `None` is the pristine control (no artifact
    /// read staged, so the integrity chain never runs), `Some(seed)`
    /// damages the scenario's encoded pre-parse blob with
    /// [`CorruptionPlan::seeded`] and derives the read's
    /// transient-failure count from the same seed.
    pub corruption_seeds: Vec<Option<u64>>,
    /// Supervision overlay; `None` boots the units as authored.
    pub supervision: Option<Supervision>,
    /// `(label, config)` pairs each instance boots under.
    pub configs: Vec<(String, BbConfig)>,
    /// Boot-supervisor deadline, milliseconds.
    pub deadline_ms: u64,
}

impl ChaosCellSpec {
    /// A chaos cell generating Tizen TV workloads, with the default
    /// supervision overlay, the fault-free control plan, and the
    /// default fallback deadline.
    pub fn tizen(
        label: impl Into<String>,
        profile: bb_workloads::MachineProfile,
        params: TizenParams,
    ) -> Self {
        let seed = params.seed;
        ChaosCellSpec {
            label: label.into(),
            source: ScenarioSource::Tizen { profile, params },
            seeds: vec![seed],
            plan_seeds: vec![None],
            corruption_seeds: vec![None],
            supervision: Some(Supervision::default()),
            configs: Vec::new(),
            deadline_ms: FallbackPolicy::default().deadline.as_millis(),
        }
    }

    /// A chaos cell booting one fixed scenario.
    pub fn fixed(label: impl Into<String>, scenario: Scenario) -> Self {
        ChaosCellSpec {
            label: label.into(),
            source: ScenarioSource::Fixed(std::sync::Arc::new(scenario)),
            seeds: vec![0],
            plan_seeds: vec![None],
            corruption_seeds: vec![None],
            supervision: Some(Supervision::default()),
            configs: Vec::new(),
            deadline_ms: FallbackPolicy::default().deadline.as_millis(),
        }
    }

    /// Replaces the scenario seed list.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the fault-plan axis to the control plan plus `n` seeded
    /// plans starting at `base`.
    pub fn fault_plans(mut self, n: u64, base: u64) -> Self {
        self.plan_seeds = std::iter::once(None)
            .chain((0..n).map(|i| Some(base + i)))
            .collect();
        self
    }

    /// Sets the corruption axis to the pristine control plus `n` seeded
    /// corruption plans starting at `base`.
    pub fn corruption_plans(mut self, n: u64, base: u64) -> Self {
        self.corruption_seeds = std::iter::once(None)
            .chain((0..n).map(|i| Some(base + i)))
            .collect();
        self
    }

    /// Replaces the supervision overlay.
    pub fn supervision(mut self, s: Option<Supervision>) -> Self {
        self.supervision = s;
        self
    }

    /// Sets the boot-supervisor deadline.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = ms;
        self
    }

    /// Adds one config to boot under.
    pub fn config(mut self, label: impl Into<String>, cfg: BbConfig) -> Self {
        self.configs.push((label.into(), cfg));
        self
    }

    /// Adds the standard `"conventional"` and `"bb"` configs.
    pub fn conventional_vs_bb(self) -> Self {
        self.config("conventional", BbConfig::conventional())
            .config("bb", BbConfig::full())
    }

    /// Boots this cell contributes.
    pub fn boots(&self) -> usize {
        self.seeds.len() * self.plan_seeds.len() * self.corruption_seeds.len() * self.configs.len()
    }

    fn plan_label(plan_seed: Option<u64>) -> String {
        match plan_seed {
            None => "none".to_owned(),
            Some(s) => format!("plan-{s}"),
        }
    }

    fn corr_label(corr_seed: Option<u64>) -> String {
        match corr_seed {
            None => "pristine".to_owned(),
            Some(s) => format!("corrupt-{s}"),
        }
    }
}

/// The chaos grid.
#[derive(Debug, Clone, Default)]
pub struct ChaosSpec {
    /// The cells.
    pub cells: Vec<ChaosCellSpec>,
}

impl ChaosSpec {
    /// An empty chaos sweep.
    pub fn new() -> Self {
        ChaosSpec::default()
    }

    /// Adds a cell.
    pub fn cell(mut self, cell: ChaosCellSpec) -> Self {
        self.cells.push(cell);
        self
    }

    /// Total boots across the grid.
    pub fn total_boots(&self) -> usize {
        self.cells.iter().map(ChaosCellSpec::boots).sum()
    }

    /// Expands the grid into jobs in deterministic (cell, plan,
    /// corruption, seed) order.
    pub fn jobs(&self) -> Vec<ChaosJob> {
        let mut jobs = Vec::new();
        for (cell, c) in self.cells.iter().enumerate() {
            for plan_idx in 0..c.plan_seeds.len() {
                for corr_idx in 0..c.corruption_seeds.len() {
                    for seed_idx in 0..c.seeds.len() {
                        jobs.push(ChaosJob {
                            cell,
                            plan_idx,
                            corr_idx,
                            seed_idx,
                        });
                    }
                }
            }
        }
        jobs
    }
}

/// One unit of chaos work: all configs of one `(cell, plan, corruption,
/// seed)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosJob {
    /// Index into [`ChaosSpec::cells`].
    pub cell: usize,
    /// Index into that cell's plan list.
    pub plan_idx: usize,
    /// Index into that cell's corruption list.
    pub corr_idx: usize,
    /// Index into that cell's seed list.
    pub seed_idx: usize,
}

/// One boot measurement under fault.
#[derive(Debug, Clone)]
struct ChaosSample {
    /// User-visible boot time (fallback detection + reboot included for
    /// degraded boots), simulated nanoseconds.
    boot_ns: u64,
    /// Supervised respawns the boot took.
    restarts: u32,
    /// True if the BB→conventional fallback fired.
    degraded: bool,
    /// Why the supervisor fell back, rendered; `None` for clean boots.
    fallback_reason: Option<String>,
    /// Artifact recoveries the boot went through (retried reads
    /// included).
    recoveries: u32,
    /// Artifacts the integrity chain rejected (subset of `recoveries`).
    artifacts_rejected: u32,
    /// Total priced recovery cost (retry backoff + degraded-path
    /// delta), simulated nanoseconds.
    recovery_cost_ns: u64,
    /// Stable description of the first rejection, for the event stream.
    artifact_detail: Option<String>,
}

/// One cell's result slots, addressed `[plan][corruption][seed]`; each
/// filled slot holds one sample per config, in config order.
type CellSlots = Vec<Vec<Vec<Option<Vec<ChaosSample>>>>>;

pub(crate) struct ChaosJobOutput {
    job: ChaosJob,
    samples: Vec<ChaosSample>, // one per config, in config order
}

pub(crate) struct ChaosJobFailure {
    job: ChaosJob,
    seed: u64,
    kind: FailureKind,
}

/// Aggregated statistics for one `(cell, plan, corruption, config)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfigStats {
    /// Config label.
    pub label: String,
    /// Completed boots (degraded ones included — they completed via the
    /// fallback).
    pub count: usize,
    /// Mean user-visible boot time, simulated ns.
    pub mean_ns: f64,
    /// Median (nearest-rank), simulated ns.
    pub p50_ns: u64,
    /// 95th percentile, simulated ns.
    pub p95_ns: u64,
    /// 99th percentile, simulated ns.
    pub p99_ns: u64,
    /// Boots that fell back to the conventional shape.
    pub degraded: usize,
    /// Boots that crashed but recovered on the fast path (restarts > 0,
    /// no fallback).
    pub recovered: usize,
    /// Total supervised respawns.
    pub restarts: u64,
    /// Artifact recovery events across these boots (retried reads
    /// included; see [`bb_core::recovery`]).
    pub recoveries: u64,
    /// Artifacts the integrity chain rejected outright.
    pub artifacts_rejected: u64,
    /// Median priced recovery cost over recovering boots, simulated ns
    /// (0 when no boot recovered).
    pub recovery_cost_p50_ns: u64,
    /// 95th percentile priced recovery cost over recovering boots.
    pub recovery_cost_p95_ns: u64,
}

impl ChaosConfigStats {
    /// Degraded-boot rate over completed boots.
    pub fn degraded_rate(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.degraded as f64 / self.count as f64
        }
    }

    /// Of the boots a fault actually hit (recovered or degraded), the
    /// fraction supervision rescued without a fallback.
    pub fn recovery_rate(&self) -> f64 {
        let hit = self.recovered + self.degraded;
        if hit == 0 {
            1.0
        } else {
            self.recovered as f64 / hit as f64
        }
    }

    /// Fraction of boots whose artifact the integrity chain rejected
    /// (every one of them still completed, via re-parse or cold boot).
    pub fn artifact_rejection_rate(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.artifacts_rejected as f64 / self.count as f64
        }
    }
}

/// Aggregated results for one corruption slot within one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCorruptionReport {
    /// Corruption label (`pristine` or `corrupt-<seed>`).
    pub label: String,
    /// Per-config statistics, in config order.
    pub configs: Vec<ChaosConfigStats>,
}

/// Aggregated results for one fault plan within one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlanReport {
    /// Plan label (`none` or `plan-<seed>`).
    pub label: String,
    /// Per-corruption results, in corruption-slot order.
    pub corruptions: Vec<ChaosCorruptionReport>,
}

/// Aggregated results for one chaos cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCellReport {
    /// Cell label.
    pub label: String,
    /// Per-plan results, in plan order.
    pub plans: Vec<ChaosPlanReport>,
}

/// One notable per-boot event (degraded, fault-recovered, or
/// artifact-rejected), in slot order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Cell label.
    pub cell: String,
    /// Plan label.
    pub plan: String,
    /// Corruption label.
    pub corruption: String,
    /// Scenario seed.
    pub seed: u64,
    /// Stable reason line (a [`FailureKind`] rendering; degraded boots
    /// append their [`bb_core::FallbackReason`]).
    pub reason: String,
}

/// One failed chaos job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosFailure {
    /// Cell label.
    pub cell: String,
    /// Plan label.
    pub plan: String,
    /// Corruption label.
    pub corruption: String,
    /// Scenario seed.
    pub seed: u64,
    /// Stable reason line.
    pub reason: String,
}

/// The deterministic output of a chaos sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Per-cell results, in spec order.
    pub cells: Vec<ChaosCellReport>,
    /// Notable events (degraded / recovered boots), in slot order.
    pub events: Vec<ChaosEvent>,
    /// Failed jobs, sorted by (cell, plan, seed).
    pub failures: Vec<ChaosFailure>,
    /// Completed boots across all cells.
    pub total_boots: usize,
}

impl ChaosReport {
    /// Deterministic JSON: fixed key order, `{:.3}` ms floats, no
    /// host-time fields. Byte-identical for any worker count.
    pub fn to_json(&self) -> String {
        let mut out = json::open_document(json::SCHEMA_CHAOS);
        out.push_str("  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"label\": \"");
            out.push_str(&json::escape(&cell.label));
            out.push_str("\", \"plans\": [");
            for (j, plan) in cell.plans.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n      {\"label\": \"");
                out.push_str(&json::escape(&plan.label));
                out.push_str("\", \"corruptions\": [");
                for (q, corr) in plan.corruptions.iter().enumerate() {
                    if q > 0 {
                        out.push(',');
                    }
                    out.push_str("\n        {\"label\": \"");
                    out.push_str(&json::escape(&corr.label));
                    out.push_str("\", \"configs\": [");
                    for (k, c) in corr.configs.iter().enumerate() {
                        if k > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!(
                            "\n          {{\"label\": \"{}\", \"count\": {}, \"mean_ms\": {}, \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, \"degraded\": {}, \"degraded_pct\": {:.3}, \"recovered\": {}, \"recovery_pct\": {:.3}, \"restarts\": {}, \"recoveries\": {}, \"artifacts_rejected\": {}, \"rejected_pct\": {:.3}, \"recovery_cost_p50_ms\": {}, \"recovery_cost_p95_ms\": {}}}",
                            json::escape(&c.label),
                            c.count,
                            json::ms(c.mean_ns),
                            json::ms(c.p50_ns as f64),
                            json::ms(c.p95_ns as f64),
                            json::ms(c.p99_ns as f64),
                            c.degraded,
                            100.0 * c.degraded_rate(),
                            c.recovered,
                            100.0 * c.recovery_rate(),
                            c.restarts,
                            c.recoveries,
                            c.artifacts_rejected,
                            100.0 * c.artifact_rejection_rate(),
                            json::ms(c.recovery_cost_p50_ns as f64),
                            json::ms(c.recovery_cost_p95_ns as f64),
                        ));
                    }
                    if !corr.configs.is_empty() {
                        out.push_str("\n        ");
                    }
                    out.push_str("]}");
                }
                if !plan.corruptions.is_empty() {
                    out.push_str("\n      ");
                }
                out.push_str("]}");
            }
            if !cell.plans.is_empty() {
                out.push_str("\n    ");
            }
            out.push_str("]}");
        }
        if !self.cells.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"cell\": \"{}\", \"plan\": \"{}\", \"corruption\": \"{}\", \"seed\": {}, \"reason\": \"{}\"}}",
                json::escape(&e.cell),
                json::escape(&e.plan),
                json::escape(&e.corruption),
                e.seed,
                json::escape(&e.reason)
            ));
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"failures\": [");
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"cell\": \"{}\", \"plan\": \"{}\", \"corruption\": \"{}\", \"seed\": {}, \"reason\": \"{}\"}}",
                json::escape(&f.cell),
                json::escape(&f.plan),
                json::escape(&f.corruption),
                f.seed,
                json::escape(&f.reason)
            ));
        }
        if !self.failures.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"total_boots\": {}\n}}\n",
            self.total_boots
        ));
        out
    }

    /// Human-readable table for terminals.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for cell in &self.cells {
            let _ = writeln!(out, "{}", cell.label);
            for plan in &cell.plans {
                for corr in &plan.corruptions {
                    let _ = writeln!(out, "  plan {} × {}", plan.label, corr.label);
                    let _ = writeln!(
                        out,
                        "    {:<16} {:>6} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>11}",
                        "config",
                        "boots",
                        "mean",
                        "p95",
                        "p99",
                        "degraded",
                        "recovered",
                        "restarts",
                        "rejected",
                        "recov p95"
                    );
                    for c in &corr.configs {
                        let _ = writeln!(
                            out,
                            "    {:<16} {:>6} {:>8.0}ms {:>8.0}ms {:>8.0}ms {:>8.1}% {:>8.1}% {:>9} {:>8.1}% {:>9.1}ms",
                            c.label,
                            c.count,
                            c.mean_ns / 1e6,
                            c.p95_ns as f64 / 1e6,
                            c.p99_ns as f64 / 1e6,
                            100.0 * c.degraded_rate(),
                            100.0 * c.recovery_rate(),
                            c.restarts,
                            100.0 * c.artifact_rejection_rate(),
                            c.recovery_cost_p95_ns as f64 / 1e6,
                        );
                    }
                }
            }
        }
        if !self.failures.is_empty() {
            let _ = writeln!(out, "failures ({}):", self.failures.len());
            for f in &self.failures {
                let _ = writeln!(
                    out,
                    "  {} {} {} seed {}: {}",
                    f.cell, f.plan, f.corruption, f.seed, f.reason
                );
            }
        }
        let _ = writeln!(out, "total boots aggregated: {}", self.total_boots);
        out
    }
}

/// Everything a chaos sweep returns.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// Aggregated, deterministic results (JSON-stable).
    pub report: ChaosReport,
    /// Pool observability (host-time, nondeterministic) — plus the
    /// deterministic total restart count.
    pub stats: PoolStats,
}

/// Runs the chaos grid to completion on a private one-shot
/// [`FleetService`] of `pool.workers` threads. Output is byte-identical
/// for any worker count. Long-lived callers wanting `submit`/`poll`/
/// `cancel` should hold a [`FleetService`] and submit
/// [`WorkItem::Chaos`] tickets instead.
pub fn run_chaos(spec: &ChaosSpec, pool: &PoolConfig) -> ChaosOutcome {
    let service =
        FleetService::with_cache(ServiceConfig::one_shot(pool.workers), FleetCache::fresh());
    let ticket = service
        .submit(0, WorkItem::Chaos(spec.clone()))
        .expect("a one-shot service accepts a single chaos sweep");
    match service.wait(ticket) {
        Ok(ServiceReport::Chaos(outcome)) => outcome,
        _ => unreachable!("chaos tickets finalize into chaos reports"),
    }
}

/// Deterministic totals finalize derives alongside the report. These
/// are aggregate-level facts (not host observability), replayed into
/// `PoolStats` by the service.
#[derive(Default)]
pub(crate) struct ChaosTotals {
    pub(crate) restarts: usize,
    pub(crate) recoveries: usize,
    pub(crate) artifacts_rejected: usize,
}

/// Accumulates chaos job results into `[plan][corruption][seed]` slots —
/// the chaos counterpart of [`crate::Aggregator`], driven by the
/// service's accept loop.
pub(crate) struct ChaosAggregator {
    slots: Vec<CellSlots>,
    raw_failures: Vec<(usize, usize, usize, usize, u64, String)>,
}

impl ChaosAggregator {
    /// Allocates slots for every `(cell, plan, corruption, seed)` of
    /// `spec`.
    pub(crate) fn new(spec: &ChaosSpec) -> Self {
        ChaosAggregator {
            slots: spec
                .cells
                .iter()
                .map(|c| {
                    vec![
                        vec![vec![None; c.seeds.len()]; c.corruption_seeds.len()];
                        c.plan_seeds.len()
                    ]
                })
                .collect(),
            raw_failures: Vec::new(),
        }
    }

    /// Accepts one result, in arrival (nondeterministic) order.
    pub(crate) fn accept(&mut self, msg: Result<ChaosJobOutput, ChaosJobFailure>) {
        match msg {
            Ok(out) => {
                let slot = &mut self.slots[out.job.cell][out.job.plan_idx][out.job.corr_idx]
                    [out.job.seed_idx];
                debug_assert!(slot.is_none(), "chaos slot filled twice");
                *slot = Some(out.samples);
            }
            Err(fail) => self.raw_failures.push((
                fail.job.cell,
                fail.job.plan_idx,
                fail.job.corr_idx,
                fail.job.seed_idx,
                fail.seed,
                fail.kind.reason(),
            )),
        }
    }

    /// Results accepted so far (filled slots plus failures) — the
    /// service's progress signal.
    pub(crate) fn accepted(&self) -> usize {
        let filled: usize = self
            .slots
            .iter()
            .flatten()
            .flatten()
            .flatten()
            .filter(|s| s.is_some())
            .count();
        filled + self.raw_failures.len()
    }

    /// Computes the final report and totals, walking slots in
    /// deterministic order.
    pub(crate) fn finalize(self, spec: &ChaosSpec) -> (ChaosReport, ChaosTotals) {
        finalize(spec, &self.slots, self.raw_failures)
    }
}

/// Walks the slots in deterministic order, deriving stats and events.
fn finalize(
    spec: &ChaosSpec,
    slots: &[CellSlots],
    mut raw_failures: Vec<(usize, usize, usize, usize, u64, String)>,
) -> (ChaosReport, ChaosTotals) {
    let mut total_boots = 0;
    let mut totals = ChaosTotals::default();
    let mut events = Vec::new();
    let mut cells = Vec::new();
    for (ci, cell) in spec.cells.iter().enumerate() {
        let mut plans = Vec::new();
        for (pi, &plan_seed) in cell.plan_seeds.iter().enumerate() {
            let plan_label = ChaosCellSpec::plan_label(plan_seed);
            let mut corruptions = Vec::new();
            for (qi, &corr_seed) in cell.corruption_seeds.iter().enumerate() {
                let corr_label = ChaosCellSpec::corr_label(corr_seed);
                let mut configs = Vec::new();
                for (ki, (label, _)) in cell.configs.iter().enumerate() {
                    let samples: Vec<&ChaosSample> = slots[ci][pi][qi]
                        .iter()
                        .flatten()
                        .map(|by_config| &by_config[ki])
                        .collect();
                    let mut sorted: Vec<u64> = samples.iter().map(|s| s.boot_ns).collect();
                    sorted.sort_unstable();
                    let count = samples.len();
                    total_boots += count;
                    let restarts: u64 = samples.iter().map(|s| u64::from(s.restarts)).sum();
                    totals.restarts += restarts as usize;
                    let recoveries: u64 = samples.iter().map(|s| u64::from(s.recoveries)).sum();
                    totals.recoveries += recoveries as usize;
                    let rejected: u64 = samples
                        .iter()
                        .map(|s| u64::from(s.artifacts_rejected))
                        .sum();
                    totals.artifacts_rejected += rejected as usize;
                    // Recovery-cost percentiles over the boots that
                    // actually recovered something.
                    let mut costs: Vec<u64> = samples
                        .iter()
                        .filter(|s| s.recoveries > 0)
                        .map(|s| s.recovery_cost_ns)
                        .collect();
                    costs.sort_unstable();
                    configs.push(ChaosConfigStats {
                        label: label.clone(),
                        count,
                        mean_ns: if count == 0 {
                            0.0
                        } else {
                            sorted.iter().map(|&n| n as f64).sum::<f64>() / count as f64
                        },
                        p50_ns: pct(&sorted, 50),
                        p95_ns: pct(&sorted, 95),
                        p99_ns: pct(&sorted, 99),
                        degraded: samples.iter().filter(|s| s.degraded).count(),
                        recovered: samples
                            .iter()
                            .filter(|s| !s.degraded && s.restarts > 0)
                            .count(),
                        restarts,
                        recoveries,
                        artifacts_rejected: rejected,
                        recovery_cost_p50_ns: pct(&costs, 50),
                        recovery_cost_p95_ns: pct(&costs, 95),
                    });
                }
                // Notable per-boot events, in (seed, config) slot order.
                for (si, slot) in slots[ci][pi][qi].iter().enumerate() {
                    let Some(by_config) = slot else { continue };
                    for (ki, s) in by_config.iter().enumerate() {
                        let mut push = |reason: String| {
                            events.push(ChaosEvent {
                                cell: cell.label.clone(),
                                plan: plan_label.clone(),
                                corruption: corr_label.clone(),
                                seed: cell.seeds[si],
                                reason,
                            });
                        };
                        if s.artifacts_rejected > 0 {
                            let kind = FailureKind::ArtifactRejected {
                                config: cell.configs[ki].0.clone(),
                                detail: s.artifact_detail.clone().unwrap_or_default(),
                            };
                            push(kind.reason());
                        }
                        if s.degraded {
                            let kind = FailureKind::Degraded {
                                config: cell.configs[ki].0.clone(),
                            };
                            // Satellite: surface the supervisor's
                            // FallbackReason alongside the event.
                            push(match &s.fallback_reason {
                                Some(fb) => format!("{} ({fb})", kind.reason()),
                                None => kind.reason(),
                            });
                        } else if s.restarts > 0 {
                            let kind = FailureKind::FaultRecovered {
                                config: cell.configs[ki].0.clone(),
                                restarts: s.restarts,
                            };
                            push(kind.reason());
                        }
                    }
                }
                corruptions.push(ChaosCorruptionReport {
                    label: corr_label,
                    configs,
                });
            }
            plans.push(ChaosPlanReport {
                label: plan_label,
                corruptions,
            });
        }
        cells.push(ChaosCellReport {
            label: cell.label.clone(),
            plans,
        });
    }
    raw_failures.sort();
    let failures = raw_failures
        .into_iter()
        .map(|(ci, pi, qi, _, seed, reason)| ChaosFailure {
            cell: spec.cells[ci].label.clone(),
            plan: ChaosCellSpec::plan_label(spec.cells[ci].plan_seeds[pi]),
            corruption: ChaosCellSpec::corr_label(spec.cells[ci].corruption_seeds[qi]),
            seed,
            reason,
        })
        .collect();
    (
        ChaosReport {
            cells,
            events,
            failures,
            total_boots,
        },
        totals,
    )
}

fn pct(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len()).div_ceil(100);
    sorted[rank.max(1) - 1]
}

/// Transient read failures derived from a corruption seed (splitmix64
/// finalizer, `% 6`): values above [`bb_core::MAX_ARTIFACT_RETRIES`]
/// exhaust the retry budget and reject the artifact on flakiness alone.
fn transient_reads(seed: u64) -> u32 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % 6) as u32
}

/// Executes one chaos job with panic isolation.
pub(crate) fn run_chaos_job(
    spec: &ChaosSpec,
    job: ChaosJob,
) -> Result<ChaosJobOutput, ChaosJobFailure> {
    let cell = &spec.cells[job.cell];
    let seed = cell.seeds[job.seed_idx];
    let plan_seed = cell.plan_seeds[job.plan_idx];
    let corr_seed = cell.corruption_seeds[job.corr_idx];

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let scenario = match &cell.source {
            ScenarioSource::Fixed(s) => (**s).clone(),
            ScenarioSource::Tizen { profile, params } => {
                tv_scenario_with(*profile, TizenParams { seed, ..*params })
            }
        };
        let scenario = match cell.supervision {
            Some(s) => {
                with_supervision(&scenario, s.restart, s.restart_sec_ms, s.start_limit_burst)
            }
            None => scenario,
        };
        let pre = PreParser::build(&scenario.units);
        let plan = match plan_seed {
            None => FaultPlan::none(),
            Some(ps) => FaultPlan::seeded(ps, &fault_targets(&scenario)),
        };
        // Corruption slot `None` supplies no artifact (the pristine
        // control: identical to a boot that never had a cache). A
        // seeded slot damages the scenario's own encoded blob and makes
        // the read transiently flaky, both derived from the seed.
        let artifact = corr_seed.map(|cs| {
            ArtifactRead::corrupted(encode_units(&scenario.units), &CorruptionPlan::seeded(cs))
                .flaky(transient_reads(cs))
        });
        let policy = FallbackPolicy {
            deadline: SimDuration::from_millis(cell.deadline_ms),
        };
        let mut samples = Vec::with_capacity(cell.configs.len());
        for (_, cfg) in &cell.configs {
            let (boot, recoveries) = run_with_fallback_recovering(
                &scenario,
                cfg,
                Some(&pre),
                artifact.as_ref(),
                &plan,
                &policy,
            )
            .map_err(|e| FailureKind::Boost(e.to_string()))?;
            samples.push(ChaosSample {
                boot_ns: boot.user_boot_time().as_nanos(),
                restarts: boot.restarts(),
                degraded: matches!(boot, BootOutcome::Degraded(_)),
                fallback_reason: match &boot {
                    BootOutcome::Degraded(d) => Some(d.reason.to_string()),
                    BootOutcome::Completed(_) => None,
                },
                recoveries: recoveries.len() as u32,
                artifacts_rejected: recoveries.iter().filter(|e| e.rejected()).count() as u32,
                recovery_cost_ns: recoveries.iter().map(|e| e.total_cost().as_nanos()).sum(),
                artifact_detail: recoveries
                    .iter()
                    .find(|e| e.rejected())
                    .map(bb_core::RecoveryEvent::describe),
            });
        }
        Ok::<_, FailureKind>(samples)
    }));

    let fail = |kind| Err(ChaosJobFailure { job, seed, kind });
    match outcome {
        Err(payload) => fail(FailureKind::Panic(panic_message(payload))),
        Ok(Err(kind)) => fail(kind),
        Ok(Ok(samples)) => Ok(ChaosJobOutput { job, samples }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_workloads::profiles;

    fn tiny_chaos(plans: u64) -> ChaosSpec {
        ChaosSpec::new().cell(
            ChaosCellSpec::tizen(
                "tiny",
                profiles::ue48h6200(),
                TizenParams {
                    services: 24,
                    ..TizenParams::open_source()
                },
            )
            .seeds([1, 2])
            .fault_plans(plans, 100)
            .conventional_vs_bb(),
        )
    }

    fn tiny_corruption(corruptions: u64) -> ChaosSpec {
        ChaosSpec::new().cell(
            ChaosCellSpec::tizen(
                "tiny",
                profiles::ue48h6200(),
                TizenParams {
                    services: 24,
                    ..TizenParams::open_source()
                },
            )
            .seeds([1, 2])
            .corruption_plans(corruptions, 500)
            .conventional_vs_bb(),
        )
    }

    #[test]
    fn chaos_sweep_completes_the_grid() {
        let spec = tiny_chaos(2);
        assert_eq!(spec.total_boots(), 2 * 3 * 2);
        let outcome = run_chaos(&spec, &PoolConfig::with_workers(2));
        assert!(outcome.report.failures.is_empty(), "no job should fail");
        assert_eq!(outcome.report.total_boots, 12);
        let cell = &outcome.report.cells[0];
        assert_eq!(cell.plans.len(), 3);
        assert_eq!(cell.plans[0].label, "none");
        assert_eq!(cell.plans[0].corruptions.len(), 1);
        assert_eq!(cell.plans[0].corruptions[0].label, "pristine");
        // The control plan is fault-free and the control corruption
        // slot supplies no artifact: nothing degrades, restarts, or
        // recovers.
        for c in &cell.plans[0].corruptions[0].configs {
            assert_eq!(c.degraded, 0);
            assert_eq!(c.restarts, 0);
            assert_eq!(c.recovery_rate(), 1.0);
            assert_eq!(c.recoveries, 0);
            assert_eq!(c.artifacts_rejected, 0);
        }
    }

    #[test]
    fn chaos_json_is_identical_across_worker_counts() {
        let spec = tiny_chaos(2);
        let one = run_chaos(&spec, &PoolConfig::with_workers(1));
        let three = run_chaos(&spec, &PoolConfig::with_workers(3));
        assert_eq!(one.report, three.report);
        assert_eq!(one.report.to_json(), three.report.to_json());
        assert_eq!(one.stats.restarts, three.stats.restarts);
    }

    #[test]
    fn corruption_sweep_json_is_identical_across_worker_counts() {
        let spec = tiny_corruption(3);
        let one = run_chaos(&spec, &PoolConfig::with_workers(1));
        let four = run_chaos(&spec, &PoolConfig::with_workers(4));
        assert_eq!(one.report, four.report);
        assert_eq!(one.report.to_json(), four.report.to_json());
        assert_eq!(one.stats.recoveries, four.stats.recoveries);
        assert_eq!(one.stats.artifacts_rejected, four.stats.artifacts_rejected);
    }

    #[test]
    fn chaos_json_parses_and_carries_the_schema() {
        let spec = tiny_chaos(1);
        let outcome = run_chaos(&spec, &PoolConfig::with_workers(2));
        let parsed = crate::json::parse(&outcome.report.to_json()).expect("chaos JSON parses");
        assert_eq!(
            parsed.get("schema").and_then(crate::json::Json::as_str),
            Some("bb-fleet-chaos-v2")
        );
        assert_eq!(
            parsed
                .get("total_boots")
                .and_then(crate::json::Json::as_f64),
            Some(8.0)
        );
    }

    #[test]
    fn seeded_plans_inject_observable_faults() {
        // Across a handful of plan seeds, at least one boot must show a
        // fault symptom (a restart, a degraded boot, or a slower boot
        // than the control) — otherwise the injection axis is dead.
        let spec = tiny_chaos(4);
        let outcome = run_chaos(&spec, &PoolConfig::with_workers(2));
        let cell = &outcome.report.cells[0];
        let control_mean: f64 = cell.plans[0].corruptions[0]
            .configs
            .iter()
            .map(|c| c.mean_ns)
            .sum();
        let symptom = cell.plans[1..].iter().any(|p| {
            p.corruptions[0]
                .configs
                .iter()
                .any(|c| c.restarts > 0 || c.degraded > 0 || c.mean_ns > control_mean)
        });
        assert!(symptom, "no fault plan produced any observable symptom");
    }

    #[test]
    fn corruption_axis_never_fails_a_boot_and_prices_recoveries() {
        // Seeded corruption must never lose a sample: every damaged
        // artifact either survives validation, is retried, or is
        // rejected and the boot re-parses — no panics, no failures.
        let spec = tiny_corruption(4);
        assert_eq!(spec.total_boots(), 2 * 5 * 2);
        let outcome = run_chaos(&spec, &PoolConfig::with_workers(2));
        assert!(outcome.report.failures.is_empty(), "no job should fail");
        assert_eq!(outcome.report.total_boots, 20);

        let plan = &outcome.report.cells[0].plans[0];
        assert_eq!(plan.corruptions.len(), 5);
        // Conventional boots never consult the artifact, so the
        // integrity chain must never bill them a recovery.
        for corr in &plan.corruptions {
            let conv = &corr.configs[0];
            assert_eq!(conv.label, "conventional");
            assert_eq!(conv.recoveries, 0);
            assert_eq!(conv.artifacts_rejected, 0);
        }
        // Across the seeded slots, at least one BB boot must hit the
        // recovery chain — otherwise the corruption axis is dead.
        let bb_recoveries: u64 = plan.corruptions[1..]
            .iter()
            .map(|corr| corr.configs[1].recoveries)
            .sum();
        assert!(bb_recoveries > 0, "no corruption plan triggered recovery");
        // Every rejection is priced: the p95 recovery cost over slots
        // with a rejection must be nonzero.
        for corr in &plan.corruptions[1..] {
            let bb = &corr.configs[1];
            if bb.artifacts_rejected > 0 {
                assert!(
                    bb.recovery_cost_p95_ns > 0,
                    "rejected artifact recoveries must carry a cost"
                );
            }
        }
    }

    #[test]
    fn rejected_artifacts_land_on_the_reparse_timeline() {
        // The acceptance property at sweep scale: a boot whose artifact
        // the chain rejects re-parses and lands on the *same simulated
        // timeline* as a BB boot that never had the cache (the artifact
        // read and its retries are host-side ledger items, not
        // simulated events).
        let spec = ChaosSpec::new().cell(
            ChaosCellSpec::tizen(
                "tiny",
                profiles::ue48h6200(),
                TizenParams {
                    services: 24,
                    ..TizenParams::open_source()
                },
            )
            .seeds([1, 2])
            .corruption_plans(4, 500)
            .config("bb", BbConfig::full())
            .config(
                "bb-sans-preparse",
                BbConfig {
                    preparser: false,
                    ..BbConfig::full()
                },
            ),
        );
        let outcome = run_chaos(&spec, &PoolConfig::with_workers(2));
        assert!(outcome.report.failures.is_empty());
        let plan = &outcome.report.cells[0].plans[0];
        let mut checked = 0;
        for corr in &plan.corruptions[1..] {
            let bb = &corr.configs[0];
            let baseline = &corr.configs[1];
            // The no-preparse config never consults the artifact.
            assert_eq!(baseline.recoveries, 0);
            if bb.artifacts_rejected as usize == bb.count {
                assert_eq!(
                    bb.p50_ns, baseline.p50_ns,
                    "rejected-artifact boots must match the re-parse timeline"
                );
                assert_eq!(bb.p95_ns, baseline.p95_ns);
                checked += 1;
            }
        }
        assert!(checked > 0, "no corruption slot rejected every artifact");
    }

    #[test]
    fn transient_reads_spread_across_the_retry_budget() {
        // The derived flakiness must exercise both sides of the retry
        // bound over a small seed range, or the retry path never runs.
        let counts: Vec<u32> = (0..32).map(transient_reads).collect();
        assert!(counts
            .iter()
            .any(|&c| c > 0 && c <= bb_core::MAX_ARTIFACT_RETRIES));
        assert!(counts.iter().any(|&c| c > bb_core::MAX_ARTIFACT_RETRIES));
    }
}
